//! # mkse — Efficient and Secure Ranked Multi-Keyword Search on Encrypted Cloud Data
//!
//! This crate is the facade of the `mkse` workspace, a full reproduction of
//! Örencik & Savaş, *"Efficient and Secure Ranked Multi-Keyword Search on Encrypted Cloud
//! Data"* (PAIS @ EDBT 2012).
//!
//! It re-exports every sub-crate so downstream users (and the examples and integration tests
//! of this repository) can depend on a single crate:
//!
//! * [`crypto`] — from-scratch SHA-2, HMAC, big integers, RSA (with blinding) and AES-CTR.
//! * [`linalg`] — dense matrices and LU inversion (used by the Cao et al. MRSE baseline).
//! * [`textproc`] — tokenization, stemming, term frequencies and synthetic corpora.
//! * [`core`] — the paper's scheme: bit indices, trapdoors, ranked oblivious search,
//!   query randomization and its analytic model.
//! * [`baselines`] — Cao et al. MRSE (secure kNN), Wang et al. common secure indices, and the
//!   plaintext relevance-score ranking of Eq. (4).
//! * [`protocol`] — the three-party protocol (data owner / user / cloud server) with
//!   communication- and computation-cost accounting.
//!
//! ## Quickstart
//!
//! ```
//! use mkse::core::{SystemParams, SchemeKeys, DocumentIndexer, QueryBuilder, CloudIndex};
//! use rand::SeedableRng;
//!
//! let params = SystemParams::default();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let keys = SchemeKeys::generate(&params, &mut rng);
//! let indexer = DocumentIndexer::new(&params, &keys);
//!
//! // Index two documents.
//! let idx_a = indexer.index_keywords(0, &["cloud", "privacy", "search"]);
//! let idx_b = indexer.index_keywords(1, &["weather", "forecast"]);
//! let mut cloud = CloudIndex::new(params.clone());
//! cloud.insert(idx_a);
//! cloud.insert(idx_b);
//!
//! // Query for "privacy" AND "search", with query randomization enabled.
//! let trapdoors = keys.trapdoors_for(&params, &["privacy", "search"]);
//! let pool = keys.random_pool_trapdoors(&params);
//! let query = QueryBuilder::new(&params)
//!     .add_trapdoors(&trapdoors)
//!     .with_randomization(&pool)
//!     .build(&mut rng);
//! let hits = cloud.search(&query);
//! assert_eq!(hits.len(), 1);
//! assert_eq!(hits[0].document_id, 0);
//! ```

pub use mkse_baselines as baselines;
pub use mkse_core as core;
pub use mkse_crypto as crypto;
pub use mkse_linalg as linalg;
pub use mkse_protocol as protocol;
pub use mkse_textproc as textproc;

/// Semantic version of the workspace facade.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
