//! # mkse — Efficient and Secure Ranked Multi-Keyword Search on Encrypted Cloud Data
//!
//! This crate is the facade of the `mkse` workspace, a full reproduction of
//! Örencik & Savaş, *"Efficient and Secure Ranked Multi-Keyword Search on Encrypted Cloud
//! Data"* (PAIS @ EDBT 2012).
//!
//! It re-exports every sub-crate so downstream users (and the examples and integration tests
//! of this repository) can depend on a single crate:
//!
//! * [`crypto`] — from-scratch SHA-2, HMAC, big integers, RSA (with blinding) and AES-CTR.
//! * [`linalg`] — dense matrices and LU inversion (used by the Cao et al. MRSE baseline).
//! * [`textproc`] — tokenization, stemming, term frequencies and synthetic corpora.
//! * [`core`] — the paper's scheme: bit indices, trapdoors, ranked oblivious search,
//!   query randomization and its analytic model.
//! * [`baselines`] — Cao et al. MRSE (secure kNN), Wang et al. common secure indices, and the
//!   plaintext relevance-score ranking of Eq. (4).
//! * [`protocol`] — the three-party protocol (data owner / user / cloud server) with
//!   communication- and computation-cost accounting.
//!
//! ## Architecture: the layered server read path
//!
//! The paper describes the server as a single linear scan of r-bit comparisons over
//! all σ document indices (Eq. 3). This reproduction keeps that scan **bit-for-bit**
//! as its semantics, but splits the server into three layers so the hottest path in
//! the system can use all available cores:
//!
//! ```text
//!  mkse-protocol   CloudServer / SearchSession      actors, messages, cost ledger
//!        │                                          (incl. the batched-query message)
//!        ▼
//!  mkse-core       engine::SearchEngine<S>          single / batched / top-k ranked
//!        │                                          search, one scan thread per shard
//!        ▼                                          (std::thread::scope), merge by
//!        │                                          (rank desc, doc id asc)
//!  mkse-core       storage::IndexStore (trait)      geometry-validated inserts,
//!                  ├─ storage::VecStore             O(1) id lookup, shard slices,
//!                  └─ storage::ShardedStore         insertion-ordinal bookkeeping
//! ```
//!
//! * **Storage** ([`core::storage`]): [`core::storage::VecStore`] is the single-shard
//!   contiguous layout (the sequential reference); [`core::storage::ShardedStore`]
//!   partitions documents round-robin across N shards and keeps an
//!   id → (shard, slot) map so metadata lookup is O(1) instead of the old O(σ) scan.
//! * **Engine** ([`core::engine`]): executes queries shard-by-shard in parallel and
//!   merges per-shard matches and [`core::SearchStats`]. Merged output is provably
//!   identical to the sequential scan: the (rank, id) sort key is a total order, the
//!   stats are sums, and unranked results are re-ordered by insertion ordinal
//!   (`tests/sharded_engine_equivalence.rs` asserts all of this for shard counts
//!   1, 2, 7 and 16 on randomized corpora).
//! * **Protocol** ([`protocol`]): `CloudServer` runs on a sharded engine (shard count
//!   defaults to the host's cores, capped at 8; `CloudServer::with_shards` pins it —
//!   1 reproduces the paper's sequential timings). The `BatchQueryMessage` /
//!   `BatchSearchReply` pair carries many queries per round trip at exactly `b·r`
//!   bits; the server answers the batch in one pass over each shard.
//!
//! **Picking a shard count**: shards parallelize a memory-bandwidth-light linear scan,
//! so physical cores is the right default; past ~8 shards the per-query spawn+merge
//! overhead dominates for stores under ~10⁵ documents (see the `fig4b_search` bench's
//! shard sweep). Sharding never changes results, only wall-clock time, so tuning it
//! is purely an operational decision.
//!
//! ## Quickstart
//!
//! ```
//! use mkse::core::{SystemParams, SchemeKeys, DocumentIndexer, QueryBuilder, SearchEngine};
//! use rand::SeedableRng;
//!
//! let params = SystemParams::default();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let keys = SchemeKeys::generate(&params, &mut rng);
//! let indexer = DocumentIndexer::new(&params, &keys);
//!
//! // Index two documents into a 2-shard parallel engine.
//! let mut cloud = SearchEngine::sharded(params.clone(), 2);
//! cloud.insert(indexer.index_keywords(0, &["cloud", "privacy", "search"])).unwrap();
//! cloud.insert(indexer.index_keywords(1, &["weather", "forecast"])).unwrap();
//!
//! // Query for "privacy" AND "search", with query randomization enabled.
//! let trapdoors = keys.trapdoors_for(&params, &["privacy", "search"]);
//! let pool = keys.random_pool_trapdoors(&params);
//! let query = QueryBuilder::new(&params)
//!     .add_trapdoors(&trapdoors)
//!     .with_randomization(&pool)
//!     .build(&mut rng);
//! let hits = cloud.search(&query);
//! assert_eq!(hits.len(), 1);
//! assert_eq!(hits[0].document_id, 0);
//! ```

pub use mkse_baselines as baselines;
pub use mkse_core as core;
pub use mkse_crypto as crypto;
pub use mkse_linalg as linalg;
pub use mkse_protocol as protocol;
pub use mkse_textproc as textproc;

/// Semantic version of the workspace facade.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
