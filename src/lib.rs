//! # mkse — Efficient and Secure Ranked Multi-Keyword Search on Encrypted Cloud Data
//!
//! This crate is the facade of the `mkse` workspace, a full reproduction of
//! Örencik & Savaş, *"Efficient and Secure Ranked Multi-Keyword Search on Encrypted Cloud
//! Data"* (PAIS @ EDBT 2012).
//!
//! It re-exports every sub-crate so downstream users (and the examples and integration tests
//! of this repository) can depend on a single crate:
//!
//! * [`crypto`] — from-scratch SHA-2, HMAC, big integers, RSA (with blinding) and AES-CTR.
//! * [`linalg`] — dense matrices and LU inversion (used by the Cao et al. MRSE baseline).
//! * [`textproc`] — tokenization, stemming, term frequencies and synthetic corpora.
//! * [`core`] — the paper's scheme: bit indices, trapdoors, ranked oblivious search,
//!   query randomization and its analytic model.
//! * [`baselines`] — Cao et al. MRSE (secure kNN), Wang et al. common secure indices, and the
//!   plaintext relevance-score ranking of Eq. (4).
//! * [`protocol`] — the three-party protocol (data owner / user / cloud server) with
//!   communication- and computation-cost accounting.
//! * [`net`] — the concurrent socket transport: a thread-per-connection TCP hub
//!   (plus an in-process `MemoryLink` twin for deterministic tests) that pumps
//!   length-prefixed frames into `Service::call`, with an adaptive cross-client
//!   batcher that coalesces concurrent single queries into one fused pass, and
//!   a resilience layer on top — deterministic seeded fault injection
//!   (`FaultyLink`), a retrying/reconnecting `ResilientClient`, and hub
//!   overload shedding with typed `Overloaded` pushback — and, above both, the
//!   shard fleet: a `Coordinator` that shard-server nodes (`NodeRunner`)
//!   register with over the framed codec, which scatter-gathers queries across
//!   live nodes and fails a dead node's shards over to survivors from
//!   snapshot + journal replay.
//!
//! ## Architecture: the layered server read path
//!
//! The paper describes the server as a single linear scan of r-bit comparisons over
//! all σ document indices (Eq. 3). This reproduction keeps that scan **bit-for-bit**
//! as its semantics, but splits the server into layers so the hottest path in
//! the system can use all available cores — and skip work it has already done:
//!
//! ```text
//!  mkse-net        Coordinator (a Service) ─▶    the shard fleet: nodes register
//!        │         per-node ResilientClients     over the framed codec (capabilities
//!        ▼         ─▶ node Hubs ─▶ CloudServers  in, shard assignment out; heartbeats
//!        │                                       carry each node's MetricsSnapshot;
//!        ▼                                       silence past the failure deadline
//!        │                                       marks a node dead); queries scatter
//!        ▼                                       to live shard-holders and merge by
//!        │                                       (rank desc, id asc); a dead node's
//!        ▼                                       shards re-ship to survivors from the
//!        │                                       coordinator mirror's per-shard
//!        ▼                                       snapshots + insert-journal replay —
//!        │                                       N nodes == 1 node, byte for byte
//!  mkse-net        ResilientClient ─▶ NetClient  the resilience layer: capped-
//!        │         ─▶ FaultyLink ─▶ any link     backoff retries with reconnect
//!        ▼                                       and resubmission of idempotent
//!        │                                       requests only (typed RetryUnsafe
//!        ▼                                       refusal otherwise); the hub sheds
//!        │                                       load past its in-flight budget
//!        ▼                                       with Overloaded { retry_after_ms };
//!        │                                       FaultyLink replays seeded fault
//!        ▼                                       plans (kills / tears / corruption)
//!  mkse-net        Hub: TCP acceptor +           thread-per-connection readers
//!        │         MemoryLink twin               reassemble length-prefixed frames
//!        ▼         (NetClient speaks both)       (torn reads, size/idle hygiene)
//!        │                                       and feed ONE dispatcher thread;
//!        ▼                                       the adaptive cross-client batcher
//!        │                                       coalesces concurrent Query frames
//!        ▼                                       (window / depth / barrier flushes)
//!        │                                       into one fused batch pass and
//!        ▼                                       de-muxes replies by request id
//!  mkse-protocol   Client  ──▶  wire codec  ──▶  Service::call   the ONE front door:
//!        │         (pipelined,  (length-prefixed (CloudServer,   every operation is a
//!        ▼          correlates   frames, version  DataOwner)     Request/Response
//!        │          replies by   byte + request                  envelope; measured
//!        ▼          id)          id)                             framed wire bytes
//!  mkse-protocol   CloudServer / SearchSession      actors, messages, cost ledger
//!        │                                          (incl. the batched-query message,
//!        ▼                                          CacheReport reply diagnostics)
//!  mkse-core       engine::SearchEngine<S>          single / batched / top-k ranked
//!        │    ├──  cache::ResultCache (optional)    search; scan lanes ≤ cores, decoupled
//!        ▼    │                                     from shard count; a work-stealing
//!        │    │                                     scheduler deals chunk-range units to
//!        │    │                                     per-lane deques (idle lanes steal),
//!        ▼    │                                     stitches results in unit order; merge
//!        │    │                                     by (rank desc, doc id asc); batches
//!        │    │                                     dedup repeated fingerprints and run
//!        │    │                                     ONE fused plane pass per shard
//!        ▼    └──  per-shard LRU keyed by           repeated query fingerprints skip
//!        │         QueryFingerprint, write-         the shard scan entirely
//!        ▼         generation invalidation
//!  mkse-core       storage::IndexStore (trait)      geometry-validated inserts,
//!        │         ├─ storage::VecStore             O(1) id lookup, shard slices,
//!        ▼         └─ storage::ShardedStore         insertion-ordinal bookkeeping,
//!        │                                          shard_of() for cache invalidation
//!  mkse-core       scanplane::ScanPlane (per shard) block-major (bit-sliced) arena the
//!        │                                          stores maintain on insert: level-1
//!        ▼                                          blocks in contiguous columns, upper
//!        │                                          levels doc-major (walked on match);
//!        ▼                                          query-aware block pruning + unrolled
//!        │                                          column sweep — the hot r-bit scan
//!        ▼                                          streams instead of pointer-chasing
//!  mkse-core       telemetry::Telemetry             the observability plane: lock-free
//!                  (one registry per engine,        relaxed-atomic counters/gauges +
//!                  observing every layer above)     log₂-bucket latency histograms,
//!                                                   runtime Off/Counters/Spans knob;
//!                                                   spans time Service::call, engine
//!                                                   dispatch, per-lane unit scans,
//!                                                   cache lookups and frame encode/
//!                                                   decode; surfaced over the wire as
//!                                                   Request::MetricsSnapshot, rendered
//!                                                   as Prometheus text or JSON
//! ```
//!
//! * **Storage** ([`core::storage`]): [`core::storage::VecStore`] is the single-shard
//!   contiguous layout (the sequential reference); [`core::storage::ShardedStore`]
//!   partitions documents round-robin across N shards and keeps an
//!   id → (shard, slot) map so metadata lookup is O(1) instead of the old O(σ) scan.
//! * **Scan plane** ([`core::scanplane`]): each shard's hot loop — the σ r-bit
//!   comparisons of Eq. (3) that dominate Figure 4(b) — runs on a bit-sliced
//!   [`core::ScanPlane`]: level-1 blocks of all documents packed into one
//!   contiguous arena (column = 64-bit block position, rows = slot order, chunked
//!   so appends never re-layout), upper levels packed document-major and walked
//!   only on match. Before sweeping, the query's **active block list** is
//!   computed once per query: any block where the query word is all-ones can
//!   never reject a document under `doc AND NOT query ≠ 0`, so it is skipped for
//!   the whole shard. The remaining columns stream through an unrolled,
//!   autovectorizer-friendly kernel into a per-shard match bitmap. All of this is
//!   a layout change only — matches, ranks, order, `SearchStats` (block skipping
//!   happens *inside* one r-bit comparison, so comparison counts are unchanged)
//!   and cache counters are byte-identical to the AoS reference, enforced in
//!   release mode by `mkse-core/tests/scanplane_equivalence.rs`. Pruning leaks
//!   nothing beyond §6's search-pattern observation: it is a function of the
//!   query bytes the server already sees plus the public geometry `r`, and the
//!   skipped work is the same for every document in the shard. The
//!   `fig4b_search` bench's layout sweep writes `BENCH_scan.json` tracking
//!   ns/query across layouts and shard counts.
//! * **Fused batch sweep** ([`core::ScanPlane::scan_ranked_batch`]): a b-query
//!   batch executed query-at-a-time would stream the whole arena b times; the
//!   fused kernel sweeps each 1024-document chunk **once** for the entire batch,
//!   testing every query's active blocks against the cache-hot columns into a
//!   query-major reject-accumulator matrix (queries grouped four to a register
//!   tile, with runtime-dispatched AVX2/AVX-512 variants over the same portable
//!   body). The arena crosses the memory bus once per batch instead of once per
//!   query (`BENCH_batch.json` records the depth sweep — ≥3× per-query
//!   throughput at depth 16 on the 64k-document workload), and the result is
//!   byte-identical to b independent single-query scans: same matches, ranks,
//!   order and per-query stats, enforced by the release-mode batch proptest in
//!   `scanplane_equivalence.rs`. Batching changes the *order* of memory
//!   accesses, never what the server observes — the §6 leakage story of the
//!   single sweep carries over verbatim.
//! * **Engine** ([`core::engine`]): executes queries shard-by-shard in parallel and
//!   merges per-shard matches and [`core::SearchStats`]. Merged output is provably
//!   identical to the sequential scan: the (rank, id) sort key is a total order, the
//!   stats are sums, and unranked results are re-ordered by insertion ordinal
//!   (`tests/sharded_engine_equivalence.rs` asserts all of this for shard counts
//!   1, 2, 7 and 16 on randomized corpora). Scan lanes are clamped to the host's
//!   available parallelism and fully decoupled from the shard count: the
//!   `set_scan_lanes(n)` runtime knob resizes the persistent worker pool, and a
//!   **work-stealing scheduler** ([`core::ScanScheduler`], the default) carves
//!   every shard's plane into chunk-range units (`set_steal_granularity` chunks
//!   each), deals them to per-lane lock-free deques, and lets idle lanes steal
//!   from victims' tails — an oversharded store no longer serializes whole
//!   shards onto lanes, and a wide host keeps every lane busy regardless of the
//!   shard geometry. Each unit's partial result counts exactly the documents of
//!   its range, and results are stitched in unit order before the (rank, id)
//!   merge, so replies, per-query stats and cache counters are byte-identical
//!   to the static fan-out (`ScanScheduler::Static` stays selectable; the
//!   steal-heavy sweeps in both equivalence suites enforce this at every
//!   shards × lanes × granularity point, and `BENCH_sched.json` records the
//!   static-vs-stealing trajectory). Batched execution deduplicates repeated
//!   query fingerprints inside one batch (hot Zipf keywords scan once and fan
//!   out, with the duplicates accounted as the cache hits sequential execution
//!   would report) and hands the scheduler the whole remaining query set for
//!   fused plane passes over the missed shards.
//! * **Cache** ([`core::cache`]): an optional per-shard LRU of shard-scan results,
//!   keyed by a collision-checked [`core::QueryFingerprint`] of the query bits.
//!   Per-shard **write generations** invalidate exactly the shard an insert landed
//!   in; snapshots exclude the cache, and restoring bumps every generation so no
//!   stale entry survives a reload. Cached and uncached execution are byte-identical
//!   (the equivalence suite runs cold, warm, interleaved-insert and snapshot/restore
//!   cycles); only wall-clock time and *performed* comparisons change.
//! * **Protocol** ([`protocol`]): `CloudServer` runs on a sharded engine (shard count
//!   defaults to the host's cores, capped at 8; `CloudServer::with_shards` pins it —
//!   1 reproduces the paper's sequential timings). The `BatchQueryMessage` /
//!   `BatchSearchReply` pair carries many queries per round trip at exactly `b·r`
//!   bits; the server answers the batch in one pass over each shard, scanning only
//!   the (query, shard) pairs the cache missed. `CloudServer::enable_result_cache`
//!   turns caching on; replies carry a `CacheReport` and the `OperationCounters`
//!   split comparisons into performed vs saved-by-cache.
//! * **Envelope / wire / client** ([`protocol::envelope`], [`protocol::wire`],
//!   [`protocol::client`]): every server operation — queries, retrieval, upload,
//!   cache admin, snapshot/restore, counters — is one variant of a versioned
//!   `Request` enum answered by a `Response`, behind a single `Service::call`
//!   entry point (`CloudServer` serves search-side requests, `DataOwner` the
//!   trapdoor/blind-decryption side). The wire codec frames envelopes as
//!   length-prefixed bytes with a version byte and a request id, so the
//!   `Client` — the front door every session, test and example speaks through —
//!   can **pipeline**: submit a window of requests, flush once, and correlate
//!   replies by id out of order. Because every exchange crosses the codec, the
//!   `CostLedger` records measured framed wire bytes next to the analytic
//!   Table 1 bits, and the legacy `handle_*` methods survive only as deprecated
//!   shims over `Service::call` with byte-identical replies.
//! * **Transport / batcher** ([`net`]): the [`net::Hub`] owns a `Service` on a
//!   single dispatcher thread and accepts any number of concurrent connections
//!   (TCP via `bind_tcp`, or deterministic in-process [`net::MemoryLink`]s via
//!   `connect_memory`). Per-connection reader threads reassemble frames across
//!   arbitrary fragmentation, enforce a max frame size and an idle timeout
//!   (violations answer with a typed `ProtocolError::Transport` and poison only
//!   that connection), and apply a max-in-flight backpressure window. The
//!   **adaptive cross-client batcher** holds single `Request::Query` frames for
//!   a sub-millisecond collection window (immediate dispatch when only one
//!   connection is active or the batch hits depth `b`; any non-query flushes as
//!   a barrier first) and executes the group through the engine's fused batch
//!   path — so N chatty clients get the amortized memory traffic of PR 5's
//!   `BatchQueryMessage` without coordinating with each other. Both layers are
//!   invisible: replies, `SearchStats` and cache counters are byte-identical
//!   to the same requests issued sequentially in-process, enforced by the
//!   journal-replay oracle in `tests/net_equivalence.rs`, and graceful
//!   shutdown drains every accepted frame before the dispatcher exits.
//! * **Resilience** ([`net::ResilientClient`], [`net::FaultyLink`]): links
//!   die, and a loaded hub must degrade gracefully rather than queue without
//!   bound. [`net::FaultyLink`] wraps any `LinkReader`/`LinkWriter` pair in a
//!   deterministic seeded fault plan — byte-budget kills, torn writes, bit
//!   corruption, injected delays — so every chaos schedule is replayable from
//!   its seed. [`net::ResilientClient`] wraps the pipelined `NetClient` with a
//!   [`net::RetryPolicy`] (attempt budget, capped exponential backoff,
//!   per-request deadline): it reconnects across link deaths and resubmits
//!   in-flight *idempotent* requests, while non-idempotent operations
//!   (upload, cache admin, restore, counter reset) fail with a typed
//!   `ClientError::RetryUnsafe` unless the caller opts in — at-most-once
//!   execution is the default, never silently violated. The hub enforces a
//!   hub-wide in-flight budget and answers excess queries *before execution*
//!   with a wire-codec'd `TransportError::Overloaded { retry_after_ms }`,
//!   which the client honors as a backoff floor (and, because the shed
//!   request never executed, may safely retry regardless of idempotency).
//!   The oracle is conservation plus equivalence: every attempt lands in
//!   exactly one bucket (`attempts == successes + sheds + link_faults`), and
//!   every *completed* reply is byte-identical to the hub journal's
//!   sequential twin replay (`tests/net_chaos.rs`, release mode in CI;
//!   `fig4b_resil` re-asserts it before timing and `BENCH_resil.json`
//!   records that retries buy 100% completion under fault levels that cost a
//!   retry-less client about a quarter of its answers).
//! * **Fleet** ([`net::Coordinator`], [`net::NodeRunner`]): one machine is a
//!   ceiling, so the shard seam distributes. A [`net::NodeRunner`] is a
//!   `CloudServer` behind its own hub plus a control-plane client; it joins
//!   the fleet with `Request::RegisterNode` (capabilities in, shard
//!   assignment out) and stays in it with `Request::NodeHeartbeat` beats
//!   carrying its own `MetricsSnapshot` — the health refresh *is* the
//!   existing metrics envelope. The [`net::Coordinator`] (itself a `Service`,
//!   servable by a hub) grants global shards up to each node's capacity,
//!   sweeps heartbeat deadlines on every call, scatter-gathers queries across
//!   live shard-holders through per-node `ResilientClient`s and merges by
//!   (rank desc, id asc) exactly as the engine's merge point does. It keeps a
//!   full mirror `ShardedStore` fed by the same insert path (same errors,
//!   same partial-upload semantics), so when a node dies — deadline missed or
//!   retries exhausted — its shards re-ship to the fewest-loaded survivors as
//!   a layout-independent per-shard checkpoint (`serialize_shard` →
//!   `RestoreIndex`) plus the insert journal since (`Upload`), cascading
//!   recursively if a survivor dies mid-shipment. Node clients never retry
//!   non-idempotent forwards: an ambiguous write fails the node over and
//!   re-ships authoritative state, so writes are fleet-wide at-most-once.
//!   The oracle is the house invariant distributed: N nodes == 1 node == the
//!   sequential scan, byte for byte, proven by `tests/fleet_chaos.rs` (nodes
//!   killed mid-query, mid-failover and during registration on exact seeded
//!   byte budgets, twin-replay equality, corpus re-pinned after every
//!   failover, same-seed reproducibility; release mode in CI) and priced by
//!   `fig4b_fleet` in `BENCH_fleet.json`.
//!
//! **Picking a shard count**: shards parallelize a memory-bandwidth-light linear scan,
//! so physical cores is the right default; past ~8 shards the per-query spawn+merge
//! overhead dominates for stores under ~10⁵ documents (see the `fig4b_search` bench's
//! shard sweep). Sharding never changes results, only wall-clock time, so tuning it
//! is purely an operational decision.
//!
//! **Search-pattern note (cache privacy)**: the fingerprint is a function of the
//! query index bytes the server receives anyway, so recognizing a repeat is exactly
//! the search pattern the server already observes (§6 builds its attack model on
//! it) — caching reveals nothing new. Symmetrically, query randomization (§6) makes
//! repeated keyword searches arrive as *different* bytes, which correctly miss the
//! cache: the privacy knob and the performance knob are the same dial, and the
//! `cached_session` example shows both positions.
//!
//! The same argument covers the work-stealing scheduler: which lane scans which
//! chunk range reorders only the server's *own* memory accesses across its own
//! threads. The work performed is identical (same comparisons, same per-range
//! arithmetic, same replies, stats and counters), and the access pattern remains
//! a function of the query bytes the server already observes plus the public
//! geometry — scheduling, like batching, decides *when and where* the server
//! computes, never *what* can be observed (§6's leakage model is untouched).
//!
//! The cross-client batcher extends the same argument across connections:
//! coalescing queries that arrived within one collection window reorders only
//! the server's *own* memory accesses over requests it has already observed.
//! Each request's bytes, its reply, its `SearchStats` and its cache counters
//! are unchanged (the fused group is byte-identical to sequential execution),
//! and which requests share a window is a function of arrival timing the
//! server observes anyway — batching is scheduling, not a new channel, and no
//! client learns anything about another client's queries from it (§6's
//! per-query leakage profile is untouched).
//!
//! The resilience layer keeps the model intact from the other side of the
//! wire: a retry retransmits bytes the adversary has *already observed* — a
//! resubmission is exactly the repeated-query observation §6's search-pattern
//! leakage already grants, carrying no new information. Shedding is a
//! function of server-side load (the hub's in-flight count), which the
//! timing channel already exposes to any client measuring its own latency,
//! and `retry_after_ms` is a server-chosen constant rather than a
//! data-dependent quantity. Fault injection itself lives strictly on the
//! client side of the wire. Resilience changes *when and how often* bytes
//! cross the wire, never *what* can be computed from them — no new
//! observation channel opens (§6's leakage model is untouched once more).
//!
//! The fleet extends it across machines: registration and heartbeat traffic
//! is server-side topology exchange — capabilities, shard assignments and
//! each node's own `MetricsSnapshot` (already argued above) — a function of
//! fleet membership and self-observation, never of any query's bytes, so it
//! is not query-dependent and opens no new channel. Scatter frames forward
//! exactly the query bytes the coordinator already observed to the nodes
//! holding the relevant shards, and shard re-shipment moves index bytes the
//! cloud side already holds between cloud-side processes. Which node holds
//! which shard is — like lane scheduling and cross-client batching — a
//! where-to-compute decision: no node learns anything about a query beyond
//! the §6 observations the single server already made.
//!
//! And it covers the telemetry plane ([`core::telemetry`]) once more: every
//! recorded quantity — stage durations, lane steal counts, per-shard cache
//! hit/miss tallies, framed byte totals — is a function of bytes the server
//! already observes (its own requests, replies and memory accesses) plus the
//! public geometry. Recording is invisible by construction: at every
//! [`core::TelemetryLevel`], replies, `SearchStats`, cache counters and wire
//! bytes (the metrics op itself aside) are byte-identical to `Off`, enforced
//! by the Off-vs-Spans twin sweep in `scanplane_equivalence.rs`. The registry
//! observes the computation; it never participates in it, so the metrics
//! plane opens no channel §6 does not already grant the adversary.
//!
//! ## Quickstart
//!
//! The [`protocol::Client`] is the front door: upload and query both travel as
//! framed `Request`/`Response` envelopes, and the client measures the real
//! framed wire bytes of every exchange.
//!
//! ```
//! use mkse::core::{SystemParams, SchemeKeys, DocumentIndexer, QueryBuilder};
//! use mkse::protocol::{Client, CloudServer, QueryMessage};
//! use rand::SeedableRng;
//!
//! let params = SystemParams::default();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let keys = SchemeKeys::generate(&params, &mut rng);
//! let indexer = DocumentIndexer::new(&params, &keys);
//!
//! // A 2-shard cloud server behind the envelope client; the upload is a
//! // framed Request::Upload (index-only here — no encrypted bodies needed).
//! let mut server = Client::new(CloudServer::with_shards(params.clone(), 2));
//! server.upload(vec![
//!     indexer.index_keywords(0, &["cloud", "privacy", "search"]),
//!     indexer.index_keywords(1, &["weather", "forecast"]),
//! ], vec![]).unwrap();
//!
//! // Query for "privacy" AND "search", with query randomization enabled.
//! let trapdoors = keys.trapdoors_for(&params, &["privacy", "search"]);
//! let pool = keys.random_pool_trapdoors(&params);
//! let query = QueryBuilder::new(&params)
//!     .add_trapdoors(&trapdoors)
//!     .with_randomization(&pool)
//!     .build(&mut rng);
//! let reply = server.query(&QueryMessage { query: query.bits().clone(), top: None }).unwrap();
//! assert_eq!(reply.matches.len(), 1);
//! assert_eq!(reply.matches[0].document_id, 0);
//! // Every exchange crossed the framed codec — the measured cost is known.
//! assert!(server.wire_stats().bytes_sent > 0);
//! ```

pub use mkse_baselines as baselines;
pub use mkse_core as core;
pub use mkse_crypto as crypto;
pub use mkse_linalg as linalg;
pub use mkse_net as net;
pub use mkse_protocol as protocol;
pub use mkse_textproc as textproc;

/// Semantic version of the workspace facade.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
