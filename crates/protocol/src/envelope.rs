//! The versioned service envelope: one [`Request`] / [`Response`] pair covering
//! **every** operation a party can ask of another, and the [`Service`] trait that
//! turns an actor into a uniform `Request → Response` endpoint.
//!
//! The paper defines the protocol as messages exchanged between user, data owner
//! and cloud server; this module gives those messages a single seam. Instead of a
//! dozen unrelated Rust methods (`handle_query`, `handle_document_request`,
//! trapdoor serving, cache/snapshot admin, …) there is exactly one entry point —
//! [`Service::call`] — so transports, async serving, multi-tenant dispatch and
//! measurement can all be layered *around* an actor without knowing which
//! operation travels inside the envelope.
//!
//! * [`crate::CloudServer`] serves the search-side requests (query, batch query,
//!   document retrieval, upload, cache admin, snapshot/restore, counters, info)
//!   and rejects owner-side ones with [`crate::ProtocolError::Unsupported`].
//! * [`crate::DataOwner`] serves the owner-side requests (trapdoor issuance,
//!   blinded decryption) and rejects the rest symmetrically.
//!
//! The [`crate::wire`] module gives every envelope a length-prefixed framed byte
//! encoding (version byte + request id for correlation), and [`crate::Client`]
//! speaks envelopes exclusively — including pipelined, out-of-order-correlated
//! exchanges.

use crate::counters::OperationCounters;
use crate::messages::{
    BatchQueryMessage, BatchSearchReply, BlindDecryptReply, BlindDecryptRequest, DocumentReply,
    DocumentRequest, QueryMessage, SearchReply, TrapdoorReply, TrapdoorRequest, UploadMessage,
};
use crate::ProtocolError;
use mkse_core::cache::CacheStats;
use mkse_core::telemetry::{MetricsSnapshot, Telemetry};

/// Version of the envelope vocabulary (and of the wire encoding in
/// [`crate::wire`]). Frames carrying any other version are rejected with a typed
/// [`crate::wire::CodecError::UnknownVersion`].
pub const PROTOCOL_VERSION: u8 = 1;

/// Every operation a party can request from a [`Service`], as one closed enum.
///
/// The first five variants are the paper's online protocol (Figure 1); the rest
/// are the operational surface a long-lived deployment needs (upload, cache
/// admin, persistence, measurement). Every variant has a framed wire encoding in
/// [`crate::wire`].
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// User → data owner: signed request for bin keys (§4.2, step 1 of Figure 1).
    Trapdoor(TrapdoorRequest),
    /// User → server: one r-bit query index (§4.3).
    Query(QueryMessage),
    /// User → server: many query indices in one round trip.
    BatchQuery(BatchQueryMessage),
    /// User → server: retrieve these documents (step 3 of Figure 1).
    Documents(DocumentRequest),
    /// User → data owner: blinded key decryption (§4.4, step 4 of Figure 1).
    BlindDecrypt(BlindDecryptRequest),
    /// Data owner → server: the offline-phase upload of indices + ciphertexts.
    Upload(UploadMessage),
    /// Admin → server: enable the per-shard result cache.
    EnableCache {
        /// LRU entries kept per index shard.
        capacity_per_shard: u64,
    },
    /// Admin → server: disable the result cache, dropping every entry.
    DisableCache,
    /// Admin → server: read the cumulative cache effectiveness counters.
    CacheStats,
    /// Admin → server: snapshot the searchable index (versioned binary format).
    SnapshotIndex,
    /// Admin → server: restore an index snapshot, appending its documents.
    RestoreIndex(Vec<u8>),
    /// Admin → any party: read the Table 2 operation counters.
    Counters,
    /// Admin → any party: reset the operation counters.
    ResetCounters,
    /// Admin → server: static deployment facts (shards, documents, geometry).
    ServerInfo,
    /// Admin → server: snapshot the telemetry registry (counters, gauges,
    /// stage-latency histograms, per-lane scheduler stats, per-shard cache
    /// stats). Read-only and side-effect-free: serving it changes nothing the
    /// search path can observe.
    MetricsSnapshot,
    /// Shard node → coordinator: join the fleet, advertising capabilities.
    /// Answered with a [`Response::ShardAssignment`] naming the shards the
    /// node now serves.
    RegisterNode(NodeRegistration),
    /// Shard node → coordinator: periodic liveness refresh carrying the
    /// node's [`MetricsSnapshot`] (the heartbeat *is* the metrics envelope —
    /// no new observable channel). Answered with the node's current
    /// [`Response::ShardAssignment`], so re-assignments propagate on the
    /// next beat.
    NodeHeartbeat(NodeHeartbeat),
}

impl Request {
    /// Stable human-readable name of the operation (diagnostics, error messages).
    pub fn name(&self) -> &'static str {
        match self {
            Request::Trapdoor(_) => "Trapdoor",
            Request::Query(_) => "Query",
            Request::BatchQuery(_) => "BatchQuery",
            Request::Documents(_) => "Documents",
            Request::BlindDecrypt(_) => "BlindDecrypt",
            Request::Upload(_) => "Upload",
            Request::EnableCache { .. } => "EnableCache",
            Request::DisableCache => "DisableCache",
            Request::CacheStats => "CacheStats",
            Request::SnapshotIndex => "SnapshotIndex",
            Request::RestoreIndex(_) => "RestoreIndex",
            Request::Counters => "Counters",
            Request::ResetCounters => "ResetCounters",
            Request::ServerInfo => "ServerInfo",
            Request::MetricsSnapshot => "MetricsSnapshot",
            Request::RegisterNode(_) => "RegisterNode",
            Request::NodeHeartbeat(_) => "NodeHeartbeat",
        }
    }
}

/// Capabilities a shard-server node advertises when registering with the
/// fleet coordinator. The coordinator uses them to bound how many shards it
/// assigns; they are static facts about the node process, not query state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCapabilities {
    /// Maximum number of index shards the node is willing to serve.
    pub shard_slots: u32,
    /// Scan lanes (worker threads) the node's engine runs.
    pub scan_lanes: u32,
    /// Result-cache entries per shard the node can hold (0 = cache off).
    pub cache_capacity: u64,
}

/// Body of [`Request::RegisterNode`]: a node joining the fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeRegistration {
    /// The node's stable identity (survives reconnects).
    pub node_id: u64,
    /// What the node can serve.
    pub capabilities: NodeCapabilities,
}

/// Body of [`Request::NodeHeartbeat`]: a periodic liveness refresh. The
/// payload is the node's existing telemetry snapshot — heartbeat traffic is
/// server-side topology maintenance and carries nothing query-dependent.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeHeartbeat {
    /// The beating node's identity.
    pub node_id: u64,
    /// Point-in-time copy of the node's telemetry registry.
    pub metrics: MetricsSnapshot,
}

/// Body of [`Response::ShardAssignment`]: the coordinator's answer to both
/// [`Request::RegisterNode`] and [`Request::NodeHeartbeat`] — which global
/// shards the node serves, under which failover epoch, and the health
/// contract (beat every `heartbeat_interval_ms`, declared dead after
/// `failure_deadline_ms` of silence).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardAssignment {
    /// The node this assignment addresses.
    pub node_id: u64,
    /// Global shard indices the node now serves.
    pub shards: Vec<u32>,
    /// Failover epoch: bumped every time the fleet layout changes.
    pub epoch: u64,
    /// How often the node must refresh its registration.
    pub heartbeat_interval_ms: u64,
    /// Silence longer than this marks the node dead.
    pub failure_deadline_ms: u64,
}

/// The reply to a [`Request`]. Success variants mirror the request vocabulary;
/// every fallible operation answers errors uniformly as [`Response::Error`].
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Matches + cache diagnostics for a [`Request::Query`].
    Search(SearchReply),
    /// Per-query replies for a [`Request::BatchQuery`], in request order.
    BatchSearch(BatchSearchReply),
    /// Ciphertexts + encrypted keys for a [`Request::Documents`].
    Documents(DocumentReply),
    /// Encrypted bin keys for a [`Request::Trapdoor`].
    Trapdoor(TrapdoorReply),
    /// The blinded plaintext for a [`Request::BlindDecrypt`].
    BlindDecrypt(BlindDecryptReply),
    /// Upload accepted; number of documents now stored.
    Uploaded {
        /// Documents stored after the upload.
        documents: u64,
    },
    /// Generic acknowledgement (cache admin, counter reset).
    Ack,
    /// Cumulative cache counters; `None` when the cache is disabled.
    CacheStats(Option<CacheStats>),
    /// A versioned binary index snapshot.
    Snapshot(Vec<u8>),
    /// Restore accepted; number of documents appended.
    Restored {
        /// Documents appended by the restore.
        documents: u64,
    },
    /// The party's Table 2 operation counters.
    Counters(OperationCounters),
    /// Static deployment facts.
    Info(ServerInfo),
    /// The telemetry registry's point-in-time state, answered to
    /// [`Request::MetricsSnapshot`].
    MetricsReport(MetricsSnapshot),
    /// The node's current shard assignment, answered to
    /// [`Request::RegisterNode`] and [`Request::NodeHeartbeat`].
    ShardAssignment(ShardAssignment),
    /// The operation failed; the exact [`ProtocolError`] travels in the envelope.
    Error(ProtocolError),
}

impl Response {
    /// Stable human-readable name of the reply kind (diagnostics, mismatch errors).
    pub fn name(&self) -> &'static str {
        match self {
            Response::Search(_) => "Search",
            Response::BatchSearch(_) => "BatchSearch",
            Response::Documents(_) => "Documents",
            Response::Trapdoor(_) => "Trapdoor",
            Response::BlindDecrypt(_) => "BlindDecrypt",
            Response::Uploaded { .. } => "Uploaded",
            Response::Ack => "Ack",
            Response::CacheStats(_) => "CacheStats",
            Response::Snapshot(_) => "Snapshot",
            Response::Restored { .. } => "Restored",
            Response::Counters(_) => "Counters",
            Response::Info(_) => "Info",
            Response::MetricsReport(_) => "MetricsReport",
            Response::ShardAssignment(_) => "ShardAssignment",
            Response::Error(_) => "Error",
        }
    }
}

/// Static facts about a serving deployment, answered to [`Request::ServerInfo`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerInfo {
    /// Index shards scanned in parallel.
    pub shards: u64,
    /// Documents currently stored (σ).
    pub documents: u64,
    /// Index size in bits (r).
    pub index_bits: u64,
    /// Ranking levels (η).
    pub rank_levels: u64,
    /// Whether the result cache is currently enabled.
    pub cache_enabled: bool,
}

/// A party reachable through the uniform envelope: exactly one entry point for
/// every operation it serves.
///
/// Implementations must answer *every* request — operations outside a party's
/// role are answered with `Response::Error(ProtocolError::Unsupported(_))`, never
/// ignored. This totality is what lets transports and dispatchers stay oblivious
/// to the operation inside the envelope.
pub trait Service {
    /// Execute one request and produce its reply.
    fn call(&mut self, request: Request) -> Response;

    /// The service's telemetry registry, when it keeps one. Transports (see
    /// [`crate::serve`]) use this to record framed wire traffic and
    /// encode/decode durations against the same registry the engine writes,
    /// so one [`Request::MetricsSnapshot`] covers the whole stack. The
    /// default — for parties without a registry — opts out.
    fn telemetry(&self) -> Option<&Telemetry> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkse_core::bitindex::BitIndex;

    #[test]
    fn names_are_stable_and_distinct() {
        let requests = [
            Request::Query(QueryMessage {
                query: BitIndex::all_ones(8),
                top: None,
            }),
            Request::DisableCache,
            Request::CacheStats,
            Request::SnapshotIndex,
            Request::Counters,
            Request::ResetCounters,
            Request::ServerInfo,
            Request::EnableCache {
                capacity_per_shard: 4,
            },
            Request::RestoreIndex(vec![1, 2]),
            Request::MetricsSnapshot,
            Request::RegisterNode(NodeRegistration {
                node_id: 7,
                capabilities: NodeCapabilities::default(),
            }),
            Request::NodeHeartbeat(NodeHeartbeat {
                node_id: 7,
                metrics: MetricsSnapshot::default(),
            }),
        ];
        let mut names: Vec<&str> = requests.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), requests.len());

        assert_eq!(Response::Ack.name(), "Ack");
        assert_eq!(Response::Error(ProtocolError::BadSignature).name(), "Error");
        assert_eq!(
            Response::ShardAssignment(ShardAssignment::default()).name(),
            "ShardAssignment"
        );
    }
}
