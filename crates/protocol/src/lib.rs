//! # mkse-protocol — the three-party protocol with cost accounting
//!
//! The paper's system model (§3, Figure 1) has three roles:
//!
//! * the **data owner**, who holds the secret keys, builds the searchable indices, encrypts
//!   the documents, and stays online only to answer trapdoor requests and blind-decryption
//!   requests;
//! * **users**, who obtain trapdoors, build query indices, search, and retrieve documents;
//! * the **cloud server**, which stores encrypted documents plus their searchable indices and
//!   answers queries with pure bit-comparisons, learning nothing about keywords or contents.
//!
//! This crate implements all three as in-process actors ([`DataOwner`], [`User`],
//! [`CloudServer`]) connected by an explicit message layer ([`messages`]) whose sizes are
//! tracked in a [`CostLedger`]. Running a full round through [`session::SearchSession`]
//! therefore reproduces both Table 1 (communication bits per party and phase) and Table 2
//! (operation counts per party), and the end-to-end examples of this repository are built on
//! the same actors.
//!
//! ## The envelope API
//!
//! Every operation a party serves is expressible as one [`envelope::Request`] and
//! answered as one [`envelope::Response`]; [`CloudServer`] and [`DataOwner`] both
//! implement [`envelope::Service`] (`fn call(&mut self, Request) -> Response`) as
//! their single entry point. The [`wire`] module frames envelopes as
//! length-prefixed bytes (version byte + request id), and [`Client`] is the
//! pipelined front door every session and example speaks through: submit many
//! requests, flush once, correlate replies by id out of order. The legacy
//! `handle_*` methods survive as thin deprecated shims over `Service::call` with
//! byte-identical replies (`tests/envelope_equivalence.rs` proves it).

pub mod channel;
pub mod client;
pub mod counters;
pub mod data_owner;
pub mod envelope;
pub mod messages;
pub mod metrics;
pub mod server;
pub mod session;
pub mod user;
pub mod wire;

pub use channel::{CostLedger, Party, Phase};
pub use client::{serve, Client, WireStats};
pub use counters::OperationCounters;
pub use data_owner::{DataOwner, OwnerConfig};
pub use envelope::{
    NodeCapabilities, NodeHeartbeat, NodeRegistration, Request, Response, ServerInfo, Service,
    ShardAssignment, PROTOCOL_VERSION,
};
pub use messages::*;
pub use metrics::{render_json, render_prometheus};
pub use server::CloudServer;
pub use session::{SearchSession, SessionReport, WireReport};
pub use user::User;
pub use wire::CodecError;

/// Transport-layer faults a server enforces on a connection (surfaced as
/// [`ProtocolError::Transport`]). These are connection-hygiene rejections,
/// not codec failures: the frame stream itself may be well-formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// A frame's length prefix declared more bytes than the server accepts;
    /// the frame is refused before any payload is buffered and the
    /// connection is closed.
    FrameTooLarge {
        /// Bytes the length prefix declared.
        declared: u64,
        /// The server's configured maximum frame size.
        max: u64,
    },
    /// The connection sat idle (no bytes received) longer than the server's
    /// configured idle timeout and was closed instead of pinning a reader
    /// thread forever.
    IdleTimeout {
        /// The configured idle limit, in milliseconds.
        idle_ms: u64,
    },
    /// The server's hub-wide in-flight budget was exhausted and this request
    /// was shed *before execution*: the server did no work for it, wrote this
    /// typed reply instead of stalling the reader, and kept the connection
    /// open. Because a shed request was never executed, it is safe to retry
    /// even non-idempotent operations after the advisory backoff.
    Overloaded {
        /// Advisory backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::FrameTooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte limit")
            }
            TransportError::IdleTimeout { idle_ms } => {
                write!(f, "connection idle for more than {idle_ms} ms")
            }
            TransportError::Overloaded { retry_after_ms } => {
                write!(
                    f,
                    "server overloaded, request shed before execution; retry after {retry_after_ms} ms"
                )
            }
        }
    }
}

/// Errors surfaced by the protocol actors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A signature did not verify; the request is rejected (non-impersonation, Theorem 4).
    BadSignature,
    /// The requested document does not exist on the server.
    UnknownDocument(u64),
    /// A cryptographic operation failed (wraps the crypto layer's error).
    Crypto(String),
    /// The user asked for more documents than matched.
    NotEnoughMatches { requested: usize, available: usize },
    /// An uploaded index was rejected by the server's store (wraps the storage
    /// layer's error: geometry mismatch or duplicate document id).
    Store(mkse_core::storage::StoreError),
    /// An index snapshot could not be decoded or restored (wraps the persistence
    /// layer's error).
    Persistence(mkse_core::persistence::PersistenceError),
    /// A wire frame could not be encoded/decoded, or a reply did not match its
    /// request (wraps the framed codec's error).
    Codec(wire::CodecError),
    /// The request reached a party that does not serve this operation (e.g. a
    /// trapdoor request sent to the cloud server).
    Unsupported(String),
    /// A transport enforced connection hygiene (frame-size limit, idle
    /// timeout) and rejected the connection.
    Transport(TransportError),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadSignature => write!(f, "signature verification failed"),
            ProtocolError::UnknownDocument(id) => write!(f, "unknown document {id}"),
            ProtocolError::Crypto(e) => write!(f, "cryptographic failure: {e}"),
            ProtocolError::NotEnoughMatches {
                requested,
                available,
            } => {
                write!(
                    f,
                    "requested {requested} documents but only {available} matched"
                )
            }
            ProtocolError::Store(e) => write!(f, "upload rejected: {e}"),
            ProtocolError::Persistence(e) => write!(f, "snapshot restore failed: {e}"),
            ProtocolError::Codec(e) => write!(f, "wire codec failure: {e}"),
            ProtocolError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            ProtocolError::Transport(e) => write!(f, "transport rejected the connection: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<TransportError> for ProtocolError {
    fn from(e: TransportError) -> Self {
        ProtocolError::Transport(e)
    }
}

impl From<mkse_crypto::CryptoError> for ProtocolError {
    fn from(e: mkse_crypto::CryptoError) -> Self {
        ProtocolError::Crypto(e.to_string())
    }
}

impl From<mkse_core::storage::StoreError> for ProtocolError {
    fn from(e: mkse_core::storage::StoreError) -> Self {
        ProtocolError::Store(e)
    }
}

impl From<mkse_core::persistence::PersistenceError> for ProtocolError {
    fn from(e: mkse_core::persistence::PersistenceError) -> Self {
        ProtocolError::Persistence(e)
    }
}

impl From<wire::CodecError> for ProtocolError {
    fn from(e: wire::CodecError) -> Self {
        ProtocolError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(!format!("{}", ProtocolError::BadSignature).is_empty());
        assert!(format!("{}", ProtocolError::UnknownDocument(9)).contains('9'));
        assert!(format!("{}", ProtocolError::Crypto("x".into())).contains('x'));
        assert!(format!(
            "{}",
            ProtocolError::NotEnoughMatches {
                requested: 5,
                available: 2
            }
        )
        .contains('5'));
    }

    #[test]
    fn crypto_error_converts() {
        let e: ProtocolError = mkse_crypto::CryptoError::MessageTooLarge.into();
        assert!(matches!(e, ProtocolError::Crypto(_)));
    }

    #[test]
    fn transport_error_converts_and_displays() {
        let e: ProtocolError = TransportError::FrameTooLarge {
            declared: 1 << 30,
            max: 1 << 20,
        }
        .into();
        assert!(matches!(e, ProtocolError::Transport(_)));
        assert!(format!("{e}").contains("limit"));
        let idle = ProtocolError::Transport(TransportError::IdleTimeout { idle_ms: 250 });
        assert!(format!("{idle}").contains("250"));
        let shed = ProtocolError::Transport(TransportError::Overloaded { retry_after_ms: 7 });
        assert!(format!("{shed}").contains("overloaded"));
        assert!(format!("{shed}").contains('7'));
    }

    #[test]
    fn codec_error_converts_and_displays() {
        let e: ProtocolError = wire::CodecError::UnknownVersion(3).into();
        assert!(matches!(e, ProtocolError::Codec(_)));
        assert!(format!("{e}").contains("codec"));
        let u = ProtocolError::Unsupported("Trapdoor at the server".into());
        assert!(format!("{u}").contains("unsupported"));
    }

    #[test]
    fn persistence_error_converts_and_displays() {
        let e: ProtocolError = mkse_core::persistence::PersistenceError::BadMagic.into();
        assert!(matches!(e, ProtocolError::Persistence(_)));
        assert!(format!("{e}").contains("restore"));
    }

    #[test]
    fn store_error_converts_and_displays() {
        let e: ProtocolError = mkse_core::storage::StoreError::DuplicateDocument(3).into();
        assert!(matches!(e, ProtocolError::Store(_)));
        assert!(format!("{e}").contains('3'));
    }
}
