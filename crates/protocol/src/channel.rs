//! Communication-cost accounting (Table 1) — analytic **and** measured.
//!
//! Every message an actor sends is recorded in a [`CostLedger`] as `(sender, receiver, phase,
//! bits)`. The ledger can then be summarized exactly the way Table 1 presents the costs: bits
//! *sent by* each party, per protocol phase (trapdoor / search / decrypt).
//!
//! Since the envelope redesign the ledger additionally tracks **measured framed
//! wire traffic**: every exchange that travels through [`crate::Client`] crosses
//! the [`crate::wire`] codec, and the observed frame counts and framed byte sizes
//! are recorded as [`WireTransmission`]s next to the analytic records. The
//! analytic bits reproduce the paper's Table 1 formulas; the wire bits are what
//! the same exchange actually costs on a real transport (length prefix, version
//! byte, request id, byte-aligned bodies included).

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The three protocol roles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Party {
    /// A querying user.
    User,
    /// The data owner (or its active delegate).
    DataOwner,
    /// The cloud server.
    Server,
}

impl std::fmt::Display for Party {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Party::User => write!(f, "user"),
            Party::DataOwner => write!(f, "data owner"),
            Party::Server => write!(f, "server"),
        }
    }
}

/// The three phases Table 1 breaks the communication down into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Learning the trapdoor (user ↔ data owner).
    Trapdoor,
    /// Sending the query and receiving results/documents (user ↔ server).
    Search,
    /// Learning the decryption key through blinding (user ↔ data owner).
    Decrypt,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::Trapdoor => write!(f, "trapdoor"),
            Phase::Search => write!(f, "search"),
            Phase::Decrypt => write!(f, "decrypt"),
        }
    }
}

/// One recorded transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transmission {
    /// Sending party (the one Table 1 charges the bits to).
    pub from: Party,
    /// Receiving party.
    pub to: Party,
    /// Protocol phase.
    pub phase: Phase,
    /// Message size in bits.
    pub bits: u64,
}

/// One measured framed exchange: frames and framed bytes that actually crossed
/// the [`crate::wire`] codec, attributed like a [`Transmission`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireTransmission {
    /// Sending party (the one the framed bytes are charged to).
    pub from: Party,
    /// Receiving party.
    pub to: Party,
    /// Protocol phase.
    pub phase: Phase,
    /// Frames shipped in this exchange direction.
    pub frames: u64,
    /// Framed bytes shipped (length prefix + header + body).
    pub bytes: u64,
}

#[derive(Default, Debug)]
struct LedgerInner {
    transmissions: Vec<Transmission>,
    wire: Vec<WireTransmission>,
}

/// A shared, thread-safe ledger of every transmission in a protocol run.
///
/// Cloning the ledger clones the handle, not the data, so every actor can hold one.
#[derive(Clone, Default, Debug)]
pub struct CostLedger {
    inner: Arc<Mutex<LedgerInner>>,
}

impl CostLedger {
    /// Create an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one transmission (analytic Table 1 bits).
    pub fn record(&self, from: Party, to: Party, phase: Phase, bits: u64) {
        self.inner.lock().transmissions.push(Transmission {
            from,
            to,
            phase,
            bits,
        });
    }

    /// Record one measured framed exchange (frames + framed bytes observed at
    /// the [`crate::wire`] codec).
    pub fn record_wire(&self, from: Party, to: Party, phase: Phase, frames: u64, bytes: u64) {
        if frames == 0 && bytes == 0 {
            return;
        }
        self.inner.lock().wire.push(WireTransmission {
            from,
            to,
            phase,
            frames,
            bytes,
        });
    }

    /// All transmissions recorded so far.
    pub fn transmissions(&self) -> Vec<Transmission> {
        self.inner.lock().transmissions.clone()
    }

    /// All measured framed exchanges recorded so far.
    pub fn wire_transmissions(&self) -> Vec<WireTransmission> {
        self.inner.lock().wire.clone()
    }

    /// Fold another ledger's records (both analytic and measured) into this one.
    /// Merging a ledger into itself (same handle or a clone of it) is a no-op —
    /// clones share data, so there is nothing to fold and locking twice would
    /// deadlock.
    pub fn merge_from(&self, other: &CostLedger) {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return;
        }
        let other = other.inner.lock();
        let mut inner = self.inner.lock();
        inner.transmissions.extend_from_slice(&other.transmissions);
        inner.wire.extend_from_slice(&other.wire);
    }

    /// Total bits *sent* by `party` in `phase` — one cell of Table 1.
    pub fn bits_sent(&self, party: Party, phase: Phase) -> u64 {
        self.inner
            .lock()
            .transmissions
            .iter()
            .filter(|t| t.from == party && t.phase == phase)
            .map(|t| t.bits)
            .sum()
    }

    /// Total bits sent by `party` across all phases.
    pub fn total_bits_sent(&self, party: Party) -> u64 {
        self.inner
            .lock()
            .transmissions
            .iter()
            .filter(|t| t.from == party)
            .map(|t| t.bits)
            .sum()
    }

    /// Total traffic in the run.
    pub fn total_bits(&self) -> u64 {
        self.inner.lock().transmissions.iter().map(|t| t.bits).sum()
    }

    /// Measured framed bits *sent* by `party` in `phase` (8 × framed bytes) —
    /// the measured counterpart of [`CostLedger::bits_sent`].
    pub fn wire_bits_sent(&self, party: Party, phase: Phase) -> u64 {
        8 * self
            .inner
            .lock()
            .wire
            .iter()
            .filter(|t| t.from == party && t.phase == phase)
            .map(|t| t.bytes)
            .sum::<u64>()
    }

    /// Measured frames sent by `party` in `phase`.
    pub fn wire_frames_sent(&self, party: Party, phase: Phase) -> u64 {
        self.inner
            .lock()
            .wire
            .iter()
            .filter(|t| t.from == party && t.phase == phase)
            .map(|t| t.frames)
            .sum()
    }

    /// Total measured framed bits in the run.
    pub fn total_wire_bits(&self) -> u64 {
        8 * self.inner.lock().wire.iter().map(|t| t.bytes).sum::<u64>()
    }

    /// A `(party, phase) → bits` table — the full Table 1 grid.
    pub fn table(&self) -> BTreeMap<(Party, Phase), u64> {
        let mut out = BTreeMap::new();
        for t in self.inner.lock().transmissions.iter() {
            *out.entry((t.from, t.phase)).or_insert(0) += t.bits;
        }
        out
    }

    /// Render the grid as alignment-friendly text rows (used by the experiment binaries).
    /// When measured framed traffic was recorded, a second grid with the wire
    /// measurements follows the analytic one.
    pub fn render_table(&self) -> String {
        let table = self.table();
        let mut out =
            String::from("party        | trapdoor (bits) | search (bits) | decrypt (bits)\n");
        for party in [Party::User, Party::DataOwner, Party::Server] {
            let cell = |phase| table.get(&(party, phase)).copied().unwrap_or(0);
            out.push_str(&format!(
                "{:<12} | {:>15} | {:>13} | {:>14}\n",
                party.to_string(),
                cell(Phase::Trapdoor),
                cell(Phase::Search),
                cell(Phase::Decrypt)
            ));
        }
        if !self.inner.lock().wire.is_empty() {
            out.push_str(
                "measured framed wire (sent):\n\
                 party        | trapdoor (bits) | search (bits) | decrypt (bits) | frames\n",
            );
            for party in [Party::User, Party::DataOwner, Party::Server] {
                let frames: u64 = [Phase::Trapdoor, Phase::Search, Phase::Decrypt]
                    .iter()
                    .map(|&p| self.wire_frames_sent(party, p))
                    .sum();
                out.push_str(&format!(
                    "{:<12} | {:>15} | {:>13} | {:>14} | {:>6}\n",
                    party.to_string(),
                    self.wire_bits_sent(party, Phase::Trapdoor),
                    self.wire_bits_sent(party, Phase::Search),
                    self.wire_bits_sent(party, Phase::Decrypt),
                    frames
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sums_by_party_and_phase() {
        let ledger = CostLedger::new();
        ledger.record(Party::User, Party::DataOwner, Phase::Trapdoor, 96);
        ledger.record(Party::DataOwner, Party::User, Phase::Trapdoor, 1024);
        ledger.record(Party::User, Party::Server, Phase::Search, 448);
        ledger.record(Party::Server, Party::User, Phase::Search, 10_000);
        ledger.record(Party::User, Party::DataOwner, Phase::Decrypt, 1024);
        ledger.record(Party::DataOwner, Party::User, Phase::Decrypt, 1024);

        assert_eq!(ledger.bits_sent(Party::User, Phase::Trapdoor), 96);
        assert_eq!(ledger.bits_sent(Party::User, Phase::Search), 448);
        assert_eq!(ledger.bits_sent(Party::Server, Phase::Search), 10_000);
        assert_eq!(ledger.bits_sent(Party::Server, Phase::Trapdoor), 0);
        assert_eq!(ledger.total_bits_sent(Party::User), 96 + 448 + 1024);
        assert_eq!(ledger.total_bits(), 96 + 1024 + 448 + 10_000 + 1024 + 1024);
        assert_eq!(ledger.transmissions().len(), 6);
    }

    #[test]
    fn table_and_render() {
        let ledger = CostLedger::new();
        ledger.record(Party::User, Party::Server, Phase::Search, 448);
        let table = ledger.table();
        assert_eq!(table.get(&(Party::User, Phase::Search)), Some(&448));
        let rendered = ledger.render_table();
        assert!(rendered.contains("user"));
        assert!(rendered.contains("448"));
        assert!(rendered.contains("server"));
    }

    #[test]
    fn wire_records_are_tracked_separately_from_analytic_bits() {
        let ledger = CostLedger::new();
        ledger.record(Party::User, Party::Server, Phase::Search, 448);
        ledger.record_wire(Party::User, Party::Server, Phase::Search, 2, 130);
        ledger.record_wire(Party::Server, Party::User, Phase::Search, 2, 4000);
        // Zero-size wire records are dropped, not stored.
        ledger.record_wire(Party::User, Party::Server, Phase::Decrypt, 0, 0);

        assert_eq!(ledger.bits_sent(Party::User, Phase::Search), 448);
        assert_eq!(ledger.wire_bits_sent(Party::User, Phase::Search), 8 * 130);
        assert_eq!(ledger.wire_frames_sent(Party::User, Phase::Search), 2);
        assert_eq!(
            ledger.wire_bits_sent(Party::Server, Phase::Search),
            8 * 4000
        );
        assert_eq!(ledger.total_wire_bits(), 8 * (130 + 4000));
        assert_eq!(ledger.wire_transmissions().len(), 2);
        // The render gains the measured grid only when wire records exist.
        assert!(ledger.render_table().contains("measured framed wire"));

        let merged = CostLedger::new();
        merged.merge_from(&ledger);
        assert_eq!(merged.total_wire_bits(), ledger.total_wire_bits());
        assert_eq!(merged.total_bits(), ledger.total_bits());

        // Merging a ledger into itself (directly or via a shared clone) must be
        // a no-op, not a deadlock or a duplication.
        let clone = merged.clone();
        merged.merge_from(&clone);
        merged.merge_from(&merged);
        assert_eq!(merged.total_bits(), ledger.total_bits());
        assert_eq!(merged.wire_transmissions().len(), 2);
    }

    #[test]
    fn ledger_handles_are_shared() {
        let a = CostLedger::new();
        let b = a.clone();
        a.record(Party::User, Party::Server, Phase::Search, 10);
        assert_eq!(b.total_bits(), 10);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Party::User.to_string(), "user");
        assert_eq!(Party::DataOwner.to_string(), "data owner");
        assert_eq!(Party::Server.to_string(), "server");
        assert_eq!(Phase::Trapdoor.to_string(), "trapdoor");
        assert_eq!(Phase::Search.to_string(), "search");
        assert_eq!(Phase::Decrypt.to_string(), "decrypt");
    }
}
