//! Communication-cost accounting (Table 1).
//!
//! Every message an actor sends is recorded in a [`CostLedger`] as `(sender, receiver, phase,
//! bits)`. The ledger can then be summarized exactly the way Table 1 presents the costs: bits
//! *sent by* each party, per protocol phase (trapdoor / search / decrypt).

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The three protocol roles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Party {
    /// A querying user.
    User,
    /// The data owner (or its active delegate).
    DataOwner,
    /// The cloud server.
    Server,
}

impl std::fmt::Display for Party {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Party::User => write!(f, "user"),
            Party::DataOwner => write!(f, "data owner"),
            Party::Server => write!(f, "server"),
        }
    }
}

/// The three phases Table 1 breaks the communication down into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Learning the trapdoor (user ↔ data owner).
    Trapdoor,
    /// Sending the query and receiving results/documents (user ↔ server).
    Search,
    /// Learning the decryption key through blinding (user ↔ data owner).
    Decrypt,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::Trapdoor => write!(f, "trapdoor"),
            Phase::Search => write!(f, "search"),
            Phase::Decrypt => write!(f, "decrypt"),
        }
    }
}

/// One recorded transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transmission {
    /// Sending party (the one Table 1 charges the bits to).
    pub from: Party,
    /// Receiving party.
    pub to: Party,
    /// Protocol phase.
    pub phase: Phase,
    /// Message size in bits.
    pub bits: u64,
}

/// A shared, thread-safe ledger of every transmission in a protocol run.
///
/// Cloning the ledger clones the handle, not the data, so every actor can hold one.
#[derive(Clone, Default, Debug)]
pub struct CostLedger {
    inner: Arc<Mutex<Vec<Transmission>>>,
}

impl CostLedger {
    /// Create an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one transmission.
    pub fn record(&self, from: Party, to: Party, phase: Phase, bits: u64) {
        self.inner.lock().push(Transmission {
            from,
            to,
            phase,
            bits,
        });
    }

    /// All transmissions recorded so far.
    pub fn transmissions(&self) -> Vec<Transmission> {
        self.inner.lock().clone()
    }

    /// Total bits *sent* by `party` in `phase` — one cell of Table 1.
    pub fn bits_sent(&self, party: Party, phase: Phase) -> u64 {
        self.inner
            .lock()
            .iter()
            .filter(|t| t.from == party && t.phase == phase)
            .map(|t| t.bits)
            .sum()
    }

    /// Total bits sent by `party` across all phases.
    pub fn total_bits_sent(&self, party: Party) -> u64 {
        self.inner
            .lock()
            .iter()
            .filter(|t| t.from == party)
            .map(|t| t.bits)
            .sum()
    }

    /// Total traffic in the run.
    pub fn total_bits(&self) -> u64 {
        self.inner.lock().iter().map(|t| t.bits).sum()
    }

    /// A `(party, phase) → bits` table — the full Table 1 grid.
    pub fn table(&self) -> BTreeMap<(Party, Phase), u64> {
        let mut out = BTreeMap::new();
        for t in self.inner.lock().iter() {
            *out.entry((t.from, t.phase)).or_insert(0) += t.bits;
        }
        out
    }

    /// Render the grid as alignment-friendly text rows (used by the experiment binaries).
    pub fn render_table(&self) -> String {
        let table = self.table();
        let mut out =
            String::from("party        | trapdoor (bits) | search (bits) | decrypt (bits)\n");
        for party in [Party::User, Party::DataOwner, Party::Server] {
            let cell = |phase| table.get(&(party, phase)).copied().unwrap_or(0);
            out.push_str(&format!(
                "{:<12} | {:>15} | {:>13} | {:>14}\n",
                party.to_string(),
                cell(Phase::Trapdoor),
                cell(Phase::Search),
                cell(Phase::Decrypt)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sums_by_party_and_phase() {
        let ledger = CostLedger::new();
        ledger.record(Party::User, Party::DataOwner, Phase::Trapdoor, 96);
        ledger.record(Party::DataOwner, Party::User, Phase::Trapdoor, 1024);
        ledger.record(Party::User, Party::Server, Phase::Search, 448);
        ledger.record(Party::Server, Party::User, Phase::Search, 10_000);
        ledger.record(Party::User, Party::DataOwner, Phase::Decrypt, 1024);
        ledger.record(Party::DataOwner, Party::User, Phase::Decrypt, 1024);

        assert_eq!(ledger.bits_sent(Party::User, Phase::Trapdoor), 96);
        assert_eq!(ledger.bits_sent(Party::User, Phase::Search), 448);
        assert_eq!(ledger.bits_sent(Party::Server, Phase::Search), 10_000);
        assert_eq!(ledger.bits_sent(Party::Server, Phase::Trapdoor), 0);
        assert_eq!(ledger.total_bits_sent(Party::User), 96 + 448 + 1024);
        assert_eq!(ledger.total_bits(), 96 + 1024 + 448 + 10_000 + 1024 + 1024);
        assert_eq!(ledger.transmissions().len(), 6);
    }

    #[test]
    fn table_and_render() {
        let ledger = CostLedger::new();
        ledger.record(Party::User, Party::Server, Phase::Search, 448);
        let table = ledger.table();
        assert_eq!(table.get(&(Party::User, Phase::Search)), Some(&448));
        let rendered = ledger.render_table();
        assert!(rendered.contains("user"));
        assert!(rendered.contains("448"));
        assert!(rendered.contains("server"));
    }

    #[test]
    fn ledger_handles_are_shared() {
        let a = CostLedger::new();
        let b = a.clone();
        a.record(Party::User, Party::Server, Phase::Search, 10);
        assert_eq!(b.total_bits(), 10);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Party::User.to_string(), "user");
        assert_eq!(Party::DataOwner.to_string(), "data owner");
        assert_eq!(Party::Server.to_string(), "server");
        assert_eq!(Phase::Trapdoor.to_string(), "trapdoor");
        assert_eq!(Phase::Search.to_string(), "search");
        assert_eq!(Phase::Decrypt.to_string(), "decrypt");
    }
}
