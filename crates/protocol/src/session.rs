//! End-to-end protocol sessions (Figure 1) with full cost accounting.
//!
//! [`SearchSession::setup`] plays the offline phase: the data owner generates keys, indexes
//! and encrypts the corpus, and uploads everything to the cloud server; a user is registered
//! and receives the randomization pool. [`SearchSession::run_query`] then plays the four
//! online steps of Figure 1 — trapdoor exchange, query, retrieval, blinded key decryption —
//! recording every transmission in a [`CostLedger`] and every operation in the per-party
//! counters, which is exactly the data Tables 1 and 2 present.

use crate::channel::{CostLedger, Party, Phase};
use crate::counters::OperationCounters;
use crate::data_owner::{DataOwner, OwnerConfig};
use crate::messages::CacheReport;
use crate::server::CloudServer;
use crate::user::User;
use crate::ProtocolError;
use mkse_textproc::document::Document;
use rand::Rng;

/// A complete three-party deployment plus the communication ledger.
pub struct SearchSession {
    /// The data owner actor.
    pub owner: DataOwner,
    /// The cloud server actor.
    pub server: CloudServer,
    /// The (single) user actor; multi-user scenarios construct extra users by hand.
    pub user: User,
    /// Ledger of every transmission.
    pub ledger: CostLedger,
}

/// What one full query round produced.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// `(document id, rank)` of every match the server returned, best first.
    pub matches: Vec<(u64, u32)>,
    /// Decrypted plaintexts of the retrieved documents.
    pub retrieved: Vec<(u64, Vec<u8>)>,
    /// Communication costs of this round (Table 1).
    pub communication: CostLedger,
    /// The user's operation counts (Table 2, user row).
    pub user_ops: OperationCounters,
    /// The data owner's operation counts (Table 2, data-owner row).
    pub owner_ops: OperationCounters,
    /// The server's operation counts (Table 2, server row).
    pub server_ops: OperationCounters,
    /// What the server's result cache contributed to this round's search reply
    /// (all zeros when caching is off — the default).
    pub cache: CacheReport,
}

impl SessionReport {
    /// Render a compact human-readable summary (used by the examples and experiments).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "matches: {} (top rank {})\n",
            self.matches.len(),
            self.matches.first().map(|m| m.1).unwrap_or(0)
        ));
        out.push_str(&format!("retrieved documents: {}\n", self.retrieved.len()));
        if self.cache.shard_hits > 0 || self.cache.served_from_cache {
            out.push_str(&format!(
                "result cache: {} shard hits / {} misses, {} comparisons saved{}\n",
                self.cache.shard_hits,
                self.cache.shard_misses,
                self.cache.saved_comparisons,
                if self.cache.served_from_cache {
                    " (reply served entirely from cache)"
                } else {
                    ""
                }
            ));
        }
        out.push_str("\ncommunication (bits sent, per party and phase):\n");
        out.push_str(&self.communication.render_table());
        out.push_str("\nuser operations:\n");
        out.push_str(&self.user_ops.render());
        out.push_str("data owner operations:\n");
        out.push_str(&self.owner_ops.render());
        out.push_str("server operations:\n");
        out.push_str(&self.server_ops.render());
        out
    }
}

impl SearchSession {
    /// Offline phase: create the three actors, index and encrypt `documents`, upload to the
    /// server, register the user and hand it the randomization pool.
    pub fn setup<R: Rng + ?Sized>(
        config: OwnerConfig,
        documents: &[Document],
        rng: &mut R,
    ) -> Result<Self, ProtocolError> {
        let rsa_bits = config.rsa_modulus_bits;
        let mut owner = DataOwner::new(config, rng);
        let (indices, encrypted) = owner.prepare_documents(documents, rng);
        let mut server = CloudServer::new(owner.params().clone());
        server.upload(indices, encrypted)?;

        let mut user = User::new(
            1,
            owner.params().clone(),
            owner.public_key().clone(),
            rsa_bits,
            rng,
        );
        owner.register_user(user.id(), user.public_key().clone());
        user.set_random_pool(owner.random_pool_trapdoors());

        Ok(SearchSession {
            owner,
            server,
            user,
            ledger: CostLedger::new(),
        })
    }

    /// Online phase: run one complete query for `keywords`, retrieving and decrypting the top
    /// `theta` matching documents. Counters are reset at the start so the report reflects this
    /// round only.
    pub fn run_query<R: Rng + ?Sized>(
        &mut self,
        keywords: &[&str],
        theta: usize,
        rng: &mut R,
    ) -> Result<SessionReport, ProtocolError> {
        self.owner.reset_counters();
        self.server.reset_counters();
        self.user.reset_counters();
        let ledger = CostLedger::new();
        let modulus_bits = self.owner.public_key().modulus_bits();

        // Step 1 (Figure 1): trapdoor exchange.
        if let Some(request) = self.user.make_trapdoor_request(keywords) {
            ledger.record(
                Party::User,
                Party::DataOwner,
                Phase::Trapdoor,
                request.bits(modulus_bits),
            );
            let reply = self.owner.handle_trapdoor_request(&request)?;
            ledger.record(
                Party::DataOwner,
                Party::User,
                Phase::Trapdoor,
                reply.bits(modulus_bits),
            );
            self.user.ingest_trapdoor_reply(&reply)?;
        }

        // Step 2: query the server.
        let query = self.user.build_query(keywords, None, rng)?;
        ledger.record(Party::User, Party::Server, Phase::Search, query.bits());
        let search_reply = self.server.handle_query(&query);
        ledger.record(
            Party::Server,
            Party::User,
            Phase::Search,
            search_reply.bits(),
        );

        // Step 3: retrieve the top θ documents.
        let theta = theta.min(search_reply.matches.len());
        let mut retrieved = Vec::with_capacity(theta);
        if theta > 0 {
            let doc_request = self.user.choose_documents(&search_reply, theta)?;
            ledger.record(
                Party::User,
                Party::Server,
                Phase::Search,
                doc_request.bits(),
            );
            let doc_reply = self.server.handle_document_request(&doc_request)?;
            ledger.record(
                Party::Server,
                Party::User,
                Phase::Search,
                doc_reply.bits(modulus_bits),
            );

            // Step 4: blinded key decryption, one round per retrieved document.
            for transfer in &doc_reply.documents {
                let (blind_request, state) = self
                    .user
                    .begin_blind_decrypt(&transfer.encrypted_key, rng)?;
                ledger.record(
                    Party::User,
                    Party::DataOwner,
                    Phase::Decrypt,
                    blind_request.bits(modulus_bits),
                );
                let blind_reply = self.owner.handle_blind_decrypt(&blind_request)?;
                ledger.record(
                    Party::DataOwner,
                    Party::User,
                    Phase::Decrypt,
                    blind_reply.bits(modulus_bits),
                );
                let key = self.user.finish_blind_decrypt(&blind_reply, state)?;
                let plaintext = self.user.decrypt_document(transfer, &key)?;
                retrieved.push((transfer.document_id, plaintext));
            }
        }

        for t in ledger.transmissions() {
            self.ledger.record(t.from, t.to, t.phase, t.bits);
        }

        Ok(SessionReport {
            matches: search_reply
                .matches
                .iter()
                .map(|m| (m.document_id, m.rank))
                .collect(),
            retrieved,
            communication: ledger,
            user_ops: *self.user.counters(),
            owner_ops: *self.owner.counters(),
            server_ops: *self.server.counters(),
            cache: search_reply.cache,
        })
    }

    /// Run many searches in **one round trip** (the batched-query message): the
    /// trapdoor exchange covers the union of all keyword sets, then a single
    /// [`crate::messages::BatchQueryMessage`] carries every query and a single
    /// [`crate::messages::BatchSearchReply`] carries every answer. Returns the
    /// `(document id, rank)` matches per keyword set, in request order.
    ///
    /// Compared to calling [`SearchSession::run_query`] per set, the results and
    /// the ledger's Table 1 bit counts are identical — batching changes round
    /// trips, not bits — while the server evaluates the whole batch in one pass
    /// over each index shard.
    pub fn run_batch<R: Rng + ?Sized>(
        &mut self,
        keyword_sets: &[Vec<&str>],
        rng: &mut R,
    ) -> Result<Vec<Vec<(u64, u32)>>, ProtocolError> {
        let modulus_bits = self.owner.public_key().modulus_bits();

        // Step 1 (Figure 1): one trapdoor exchange for the union of all keywords.
        let union: Vec<&str> = keyword_sets.iter().flatten().copied().collect();
        if let Some(request) = self.user.make_trapdoor_request(&union) {
            self.ledger.record(
                Party::User,
                Party::DataOwner,
                Phase::Trapdoor,
                request.bits(modulus_bits),
            );
            let reply = self.owner.handle_trapdoor_request(&request)?;
            self.ledger.record(
                Party::DataOwner,
                Party::User,
                Phase::Trapdoor,
                reply.bits(modulus_bits),
            );
            self.user.ingest_trapdoor_reply(&reply)?;
        }

        // Step 2: every query in one batched round trip.
        let batch = self.user.build_batch_query(keyword_sets, None, rng)?;
        self.ledger
            .record(Party::User, Party::Server, Phase::Search, batch.bits());
        let reply = self.server.handle_batch_query(&batch);
        self.ledger
            .record(Party::Server, Party::User, Phase::Search, reply.bits());

        Ok(reply
            .replies
            .iter()
            .map(|r| r.matches.iter().map(|m| (m.document_id, m.rank)).collect())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn corpus() -> Vec<Document> {
        vec![
            Document::from_text(0, "cloud privacy search over encrypted cloud data"),
            Document::from_text(1, "weather forecast for tomorrow"),
            Document::from_text(2, "private cloud storage encryption pricing"),
            Document::from_text(3, "holiday photos from the beach"),
        ]
    }

    fn session() -> (SearchSession, StdRng) {
        let mut rng = StdRng::seed_from_u64(2718);
        let session = SearchSession::setup(OwnerConfig::fast_for_tests(), &corpus(), &mut rng)
            .expect("setup succeeds");
        (session, rng)
    }

    #[test]
    fn full_round_retrieves_and_decrypts_matching_documents() {
        let (mut session, mut rng) = session();
        // Query keywords must be normalized (stemmed) the same way document terms were.
        let cloud = mkse_textproc::normalize_keyword("cloud");
        let privacy = mkse_textproc::normalize_keyword("privacy");
        let report = session
            .run_query(&[cloud.as_str(), privacy.as_str()], 1, &mut rng)
            .unwrap();

        // Document 0 contains both stems; the retrieved top document decrypts to its
        // original text.
        assert!(!report.matches.is_empty());
        assert_eq!(report.retrieved.len(), 1);
        let (id, plaintext) = &report.retrieved[0];
        let original = corpus().iter().find(|d| d.id == *id).unwrap().body.clone();
        assert_eq!(plaintext, &original);
    }

    #[test]
    fn communication_costs_follow_table1_shapes() {
        let (mut session, mut rng) = session();
        let report = session.run_query(&["cloud"], 1, &mut rng).unwrap();
        let ledger = &report.communication;
        let modulus_bits = session.owner.public_key().modulus_bits();

        // User → server search traffic includes the r-bit query (plus the 64-bit doc request).
        let user_search = ledger.bits_sent(Party::User, Phase::Search);
        assert!((448..=448 + 64).contains(&user_search));
        // User → owner trapdoor request is 32·γ + log N bits.
        let user_trapdoor = ledger.bits_sent(Party::User, Phase::Trapdoor);
        assert_eq!(user_trapdoor, 32 + modulus_bits as u64);
        // Decrypt phase: user sends 2·log N per retrieved document, owner replies with log N.
        assert_eq!(
            ledger.bits_sent(Party::User, Phase::Decrypt),
            2 * modulus_bits as u64
        );
        assert_eq!(
            ledger.bits_sent(Party::DataOwner, Phase::Decrypt),
            modulus_bits as u64
        );
        // The server never talks to the data owner.
        assert_eq!(ledger.bits_sent(Party::Server, Phase::Trapdoor), 0);
        assert_eq!(ledger.bits_sent(Party::Server, Phase::Decrypt), 0);
    }

    #[test]
    fn computation_costs_follow_table2_shapes() {
        let (mut session, mut rng) = session();
        let report = session.run_query(&["cloud"], 1, &mut rng).unwrap();

        // Server: only binary comparisons, no cryptography at all.
        assert!(report.server_ops.binary_comparisons >= 4);
        assert_eq!(report.server_ops.public_key_operations(), 0);
        assert_eq!(report.server_ops.hashes, 0);

        // User: hash for the trapdoor, a handful of modular exponentiations (sign, decrypt
        // bin key, blind, sign) and multiplications (blind/unblind), one symmetric decryption.
        assert!(report.user_ops.hashes >= 1);
        assert!(report.user_ops.modular_exponentiations >= 3);
        assert!(report.user_ops.modular_multiplications >= 2);
        assert_eq!(report.user_ops.symmetric_decryptions, 1);

        // Data owner: about 4 modular exponentiations per search (2 for the trapdoor step,
        // 2 for the decryption step), as Table 2 states.
        assert!(report.owner_ops.modular_exponentiations >= 4);
        assert_eq!(report.owner_ops.symmetric_encryptions, 0);
    }

    #[test]
    fn repeated_queries_reuse_cached_trapdoors() {
        let (mut session, mut rng) = session();
        let first = session.run_query(&["cloud"], 0, &mut rng).unwrap();
        assert!(first.communication.bits_sent(Party::User, Phase::Trapdoor) > 0);
        // Second query for the same keyword: no trapdoor traffic at all (§3: the same trapdoor
        // serves many queries).
        let second = session.run_query(&["cloud"], 0, &mut rng).unwrap();
        assert_eq!(
            second.communication.bits_sent(Party::User, Phase::Trapdoor),
            0
        );
        // The global ledger accumulated both rounds.
        assert!(session.ledger.total_bits() > second.communication.total_bits());
    }

    #[test]
    fn theta_is_clamped_to_available_matches() {
        let (mut session, mut rng) = session();
        let report = session.run_query(&["weather"], 10, &mut rng).unwrap();
        assert!(report.retrieved.len() <= report.matches.len());
        for (id, body) in &report.retrieved {
            let original = corpus().iter().find(|d| d.id == *id).unwrap().body.clone();
            assert_eq!(body, &original);
        }
    }

    #[test]
    fn nonexistent_keyword_matches_nothing_or_only_false_accepts() {
        let (mut session, mut rng) = session();
        let report = session
            .run_query(&["zzzznonexistent", "qqqqalsonot"], 0, &mut rng)
            .unwrap();
        // With two absent keywords the probability of a false accept is ≈ (279/448)^14 < 0.2%,
        // so under this fixed seed nothing matches.
        assert!(report.matches.is_empty());
        assert!(report.retrieved.is_empty());
    }

    #[test]
    fn batched_round_matches_individual_rounds() {
        let cloud = mkse_textproc::normalize_keyword("cloud");
        let weather = mkse_textproc::normalize_keyword("weather");
        let sets: Vec<Vec<&str>> = vec![vec![cloud.as_str()], vec![weather.as_str()]];

        let (mut batched_session, mut rng1) = session();
        let batched = batched_session.run_batch(&sets, &mut rng1).unwrap();

        let (mut single_session, mut rng2) = session();
        let individual: Vec<Vec<(u64, u32)>> = sets
            .iter()
            .map(|kws| single_session.run_query(kws, 0, &mut rng2).unwrap().matches)
            .collect();

        // Same matches per keyword set (randomization never changes results), and
        // the same search-phase bit totals — batching saves round trips, not bits.
        assert_eq!(batched, individual);
        assert!(batched[0].iter().any(|(id, _)| *id == 0 || *id == 2));
        assert_eq!(
            batched_session.ledger.bits_sent(Party::User, Phase::Search),
            single_session.ledger.bits_sent(Party::User, Phase::Search),
        );
        // One trapdoor exchange covered both keyword sets.
        assert!(
            batched_session
                .ledger
                .bits_sent(Party::User, Phase::Trapdoor)
                > 0
        );
    }

    #[test]
    fn session_reports_cache_effects_when_enabled() {
        let (mut session, mut rng) = session();
        session.server.enable_result_cache(32);
        let shards = session.server.num_shards() as u64;

        // run_query builds a fresh randomized query each round (§6), so repeated
        // *keyword* searches produce different query indices and — correctly —
        // miss the cache: randomization hides the search pattern from the server,
        // and the fingerprint sees only what the server sees.
        let first = session.run_query(&["cloud"], 0, &mut rng).unwrap();
        assert_eq!(first.cache.shard_misses, shards);
        assert!(!first.cache.served_from_cache);
        let second = session.run_query(&["cloud"], 0, &mut rng).unwrap();
        assert_eq!(second.matches, first.matches);
        assert!(!second.cache.served_from_cache);

        // A render with hits mentions the cache line.
        let mut report = second;
        report.cache.shard_hits = shards;
        report.cache.served_from_cache = true;
        assert!(report.render().contains("result cache"));
    }

    #[test]
    fn report_renders_summary() {
        let (mut session, mut rng) = session();
        let report = session.run_query(&["cloud"], 1, &mut rng).unwrap();
        let text = report.render();
        assert!(text.contains("matches:"));
        assert!(text.contains("communication"));
        assert!(text.contains("server operations"));
    }
}
