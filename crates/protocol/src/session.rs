//! End-to-end protocol sessions (Figure 1) with full cost accounting.
//!
//! [`SearchSession::setup`] plays the offline phase: the data owner generates keys, indexes
//! and encrypts the corpus, and uploads everything to the cloud server; a user is registered
//! and receives the randomization pool. [`SearchSession::run_query`] then plays the four
//! online steps of Figure 1 — trapdoor exchange, query, retrieval, blinded key decryption —
//! recording every transmission in a [`CostLedger`] and every operation in the per-party
//! counters, which is exactly the data Tables 1 and 2 present.
//!
//! Since the envelope redesign the session speaks to **both** remote parties
//! exclusively through [`Client`]s: every exchange is a framed
//! [`crate::Request`] / [`crate::Response`] envelope crossing the
//! [`crate::wire`] codec, so next to the analytic Table 1 bits the session also
//! measures the real framed wire traffic ([`WireReport`]). The per-document
//! blinded key decryptions of step 4 are **pipelined**: all requests are
//! submitted to the owner in one flush and the replies correlated back by
//! request id.

use crate::channel::{CostLedger, Party, Phase};
use crate::client::{Client, WireStats};
use crate::counters::OperationCounters;
use crate::data_owner::{DataOwner, OwnerConfig};
use crate::envelope::{Request, Response};
use crate::messages::{CacheReport, UploadMessage};
use crate::server::CloudServer;
use crate::user::User;
use crate::ProtocolError;
use mkse_core::telemetry::{MetricsSnapshot, TelemetryLevel};
use mkse_textproc::document::Document;
use rand::Rng;

/// A complete three-party deployment plus the communication ledger.
///
/// Both remote parties sit behind a [`Client`]; local admin/introspection
/// (`session.server.num_shards()`, `session.owner.params()`, …) keeps working
/// through the client's `Deref` to the wrapped actor.
pub struct SearchSession {
    /// The data owner actor, behind its envelope client.
    pub owner: Client<DataOwner>,
    /// The cloud server actor, behind its envelope client.
    pub server: Client<CloudServer>,
    /// The (single) user actor; multi-user scenarios construct extra users by hand.
    pub user: User,
    /// Ledger of every transmission.
    pub ledger: CostLedger,
}

/// Measured framed wire traffic of one round: what the exchanges actually cost
/// on the byte level (the analytic Table 1 bits live in the [`CostLedger`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireReport {
    /// Request frames the user shipped (to the server and the data owner).
    pub frames_sent: u64,
    /// Response frames the user received.
    pub frames_received: u64,
    /// Framed request bytes shipped (length prefix + version + request id + body).
    pub bytes_sent: u64,
    /// Framed response bytes received.
    pub bytes_received: u64,
    /// Request ids this round used on the server connection (half-open range —
    /// the client assigns ids consecutively per connection).
    pub server_request_ids: std::ops::Range<u64>,
    /// Request ids this round used on the data-owner connection (half-open range).
    pub owner_request_ids: std::ops::Range<u64>,
}

/// What one full query round produced.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// `(document id, rank)` of every match the server returned, best first.
    pub matches: Vec<(u64, u32)>,
    /// Decrypted plaintexts of the retrieved documents.
    pub retrieved: Vec<(u64, Vec<u8>)>,
    /// Communication costs of this round (Table 1).
    pub communication: CostLedger,
    /// The user's operation counts (Table 2, user row).
    pub user_ops: OperationCounters,
    /// The data owner's operation counts (Table 2, data-owner row).
    pub owner_ops: OperationCounters,
    /// The server's operation counts (Table 2, server row).
    pub server_ops: OperationCounters,
    /// What the server's result cache contributed to this round's search reply
    /// (all zeros when caching is off — the default).
    pub cache: CacheReport,
    /// Index shards the server scanned in parallel for this round.
    pub shards: usize,
    /// Measured framed wire traffic of this round.
    pub wire: WireReport,
    /// The server's telemetry registry at the end of the round, when its
    /// recording level is not `Off` (cumulative, not per-round: the registry
    /// is monotonic by design).
    pub server_metrics: Option<MetricsSnapshot>,
}

impl SessionReport {
    /// Render a compact human-readable summary (used by the examples and experiments).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "matches: {} (top rank {})\n",
            self.matches.len(),
            self.matches.first().map(|m| m.1).unwrap_or(0)
        ));
        out.push_str(&format!("retrieved documents: {}\n", self.retrieved.len()));
        out.push_str(&format!("server shards: {}\n", self.shards));
        out.push_str(&format!(
            "wire: {} frames / {} bytes sent, {} frames / {} bytes received{}\n",
            self.wire.frames_sent,
            self.wire.bytes_sent,
            self.wire.frames_received,
            self.wire.bytes_received,
            render_id_ranges(&self.wire.server_request_ids, &self.wire.owner_request_ids),
        ));
        if self.cache.shard_hits > 0 || self.cache.served_from_cache {
            out.push_str(&format!(
                "result cache: {} shard hits / {} misses, {} comparisons saved{}\n",
                self.cache.shard_hits,
                self.cache.shard_misses,
                self.cache.saved_comparisons,
                if self.cache.served_from_cache {
                    " (reply served entirely from cache)"
                } else {
                    ""
                }
            ));
        }
        out.push_str("\ncommunication (bits sent, per party and phase):\n");
        out.push_str(&self.communication.render_table());
        out.push_str("\nuser operations:\n");
        out.push_str(&self.user_ops.render());
        out.push_str("data owner operations:\n");
        out.push_str(&self.owner_ops.render());
        out.push_str("server operations:\n");
        out.push_str(&self.server_ops.render());
        if let Some(metrics) = &self.server_metrics {
            out.push_str(&format!(
                "\nserver telemetry (level {}, cumulative):\n",
                metrics.level.name()
            ));
            for (name, value) in &metrics.counters {
                if *value > 0 {
                    out.push_str(&format!("  {name:<24} {value}\n"));
                }
            }
            for (name, value) in &metrics.gauges {
                if *value > 0 {
                    out.push_str(&format!("  {name:<24} {value} (gauge)\n"));
                }
            }
            for lane in &metrics.lanes {
                out.push_str(&format!(
                    "  lane {}: executed {} (stolen {}), failed steals {}, idle polls {}\n",
                    lane.lane, lane.executed, lane.stolen, lane.failed_steals, lane.idle_polls
                ));
            }
            for shard in &metrics.shard_caches {
                out.push_str(&format!(
                    "  shard {} cache: {} hits / {} misses, {} invalidations\n",
                    shard.shard, shard.hits, shard.misses, shard.invalidations
                ));
            }
            for conn in &metrics.connections {
                out.push_str(&format!(
                    "  connection {}: {} frames / {} bytes in, {} frames / {} bytes out\n",
                    conn.connection, conn.frames_in, conn.bytes_in, conn.frames_out, conn.bytes_out
                ));
            }
            for v in &metrics.values {
                out.push_str(&format!(
                    "  {:<24} {} samples, avg {}\n",
                    v.series,
                    v.count,
                    v.sum / v.count.max(1)
                ));
            }
            for h in &metrics.histograms {
                out.push_str(&format!(
                    "  {:<24} {} samples, avg {} ns\n",
                    h.stage,
                    h.count,
                    h.sum_ns / h.count.max(1)
                ));
            }
        }
        out
    }
}

fn render_id_ranges(server_ids: &std::ops::Range<u64>, owner_ids: &std::ops::Range<u64>) -> String {
    let range = |ids: &std::ops::Range<u64>, party: &str| {
        if ids.is_empty() {
            String::new()
        } else if ids.end - ids.start == 1 {
            format!("#{} {party}", ids.start)
        } else {
            format!("#{}–#{} {party}", ids.start, ids.end - 1)
        }
    };
    let parts: Vec<String> = [range(server_ids, "server"), range(owner_ids, "owner")]
        .into_iter()
        .filter(|s| !s.is_empty())
        .collect();
    if parts.is_empty() {
        String::new()
    } else {
        format!(" (request ids {})", parts.join(", "))
    }
}

/// Snapshot of both clients' wire counters + next request ids, for per-round deltas.
struct WireMark {
    server: WireStats,
    owner: WireStats,
    server_next_id: u64,
    owner_next_id: u64,
}

/// Record one request/reply exchange: analytic Table 1 `(request, reply)` bits
/// both ways, plus the measured framed wire delta `moved` observed at the
/// requester's client. Frame counts come from the measured delta itself — not
/// a caller-maintained literal — so the ledger's Table 1 frame totals read the
/// same source as everything else the codec observed and cannot drift from the
/// registry-backed served-request count.
fn record_exchange(
    ledger: &CostLedger,
    requester: Party,
    responder: Party,
    phase: Phase,
    (request_bits, reply_bits): (u64, u64),
    moved: WireStats,
) {
    ledger.record(requester, responder, phase, request_bits);
    ledger.record_wire(
        requester,
        responder,
        phase,
        moved.frames_sent,
        moved.bytes_sent,
    );
    ledger.record(responder, requester, phase, reply_bits);
    ledger.record_wire(
        responder,
        requester,
        phase,
        moved.frames_received,
        moved.bytes_received,
    );
}

impl SearchSession {
    /// Maximum documents per [`Request::Upload`] frame during
    /// [`SearchSession::setup`].
    pub const UPLOAD_CHUNK_DOCUMENTS: usize = 256;

    /// Approximate payload-byte budget per upload frame: a chunk closes as soon
    /// as its estimated encoded size passes this, so a frame stays far from the
    /// codec's `u32::MAX` cap even when individual documents are huge.
    pub const UPLOAD_CHUNK_BYTES: usize = 64 << 20;

    fn wire_mark(&self) -> WireMark {
        WireMark {
            server: self.server.wire_stats(),
            owner: self.owner.wire_stats(),
            server_next_id: self.server.next_request_id(),
            owner_next_id: self.owner.next_request_id(),
        }
    }

    fn wire_report_since(&self, mark: &WireMark) -> WireReport {
        let delta = self
            .server
            .wire_stats()
            .since(&mark.server)
            .plus(&self.owner.wire_stats().since(&mark.owner));
        WireReport {
            frames_sent: delta.frames_sent,
            frames_received: delta.frames_received,
            bytes_sent: delta.bytes_sent,
            bytes_received: delta.bytes_received,
            server_request_ids: mark.server_next_id..self.server.next_request_id(),
            owner_request_ids: mark.owner_next_id..self.owner.next_request_id(),
        }
    }

    /// Offline phase: create the three actors, index and encrypt `documents`, upload to the
    /// server (through the envelope client — the upload travels as framed
    /// [`Request::Upload`] envelopes like any online operation), register the
    /// user and hand it the randomization pool.
    ///
    /// The upload is **chunked**: a chunk closes at
    /// [`SearchSession::UPLOAD_CHUNK_DOCUMENTS`] documents or when its
    /// estimated encoded size passes [`SearchSession::UPLOAD_CHUNK_BYTES`],
    /// whichever comes first, and each chunk is shipped and answered before the
    /// next is encoded — so no frame approaches the codec's `u32` payload cap
    /// and peak encoding memory is one chunk's frame, not the whole corpus.
    pub fn setup<R: Rng + ?Sized>(
        config: OwnerConfig,
        documents: &[Document],
        rng: &mut R,
    ) -> Result<Self, ProtocolError> {
        let rsa_bits = config.rsa_modulus_bits;
        let mut owner = DataOwner::new(config, rng);
        let (indices, encrypted) = owner.prepare_documents(documents, rng);
        let server = CloudServer::new(owner.params().clone());
        let mut server = Client::new(server);

        let mut chunk_indices = Vec::new();
        let mut chunk_documents = Vec::new();
        let mut chunk_bytes = 0usize;
        let mut pairs = indices.into_iter().zip(encrypted).peekable();
        while let Some((index, document)) = pairs.next() {
            // Estimated encoded size; the ciphertext dominates, the rest is a
            // conservative allowance for the index levels, key and framing.
            chunk_bytes += document.ciphertext.len()
                + index.levels.iter().map(|l| l.len() / 8 + 8).sum::<usize>()
                + 512;
            chunk_indices.push(index);
            chunk_documents.push(document);
            let chunk_full = chunk_indices.len() >= Self::UPLOAD_CHUNK_DOCUMENTS
                || chunk_bytes >= Self::UPLOAD_CHUNK_BYTES;
            if chunk_full || pairs.peek().is_none() {
                if let Err(e) = Self::upload_chunk(
                    &mut server,
                    std::mem::take(&mut chunk_indices),
                    std::mem::take(&mut chunk_documents),
                ) {
                    server.abandon();
                    return Err(e);
                }
                chunk_bytes = 0;
            }
        }

        let mut user = User::new(
            1,
            owner.params().clone(),
            owner.public_key().clone(),
            rsa_bits,
            rng,
        );
        owner.register_user(user.id(), user.public_key().clone());
        user.set_random_pool(owner.random_pool_trapdoors());

        Ok(SearchSession {
            owner: Client::new(owner),
            server,
            user,
            ledger: CostLedger::new(),
        })
    }

    /// Ship one framed [`Request::Upload`] chunk and wait for its answer.
    fn upload_chunk(
        server: &mut Client<CloudServer>,
        indices: Vec<mkse_core::document_index::RankedDocumentIndex>,
        documents: Vec<crate::messages::EncryptedDocumentTransfer>,
    ) -> Result<(), ProtocolError> {
        match server.call(&Request::Upload(UploadMessage { indices, documents }))? {
            Response::Uploaded { .. } => Ok(()),
            Response::Error(e) => Err(e),
            other => Err(ProtocolError::Codec(crate::wire::CodecError::Malformed(
                format!("upload answered with {}", other.name()),
            ))),
        }
    }

    /// Step 1 (Figure 1): the trapdoor exchange for `keywords`, skipped when
    /// every needed bin key is already cached. Records analytic and measured
    /// costs in `ledger`.
    fn trapdoor_exchange(
        &mut self,
        ledger: &CostLedger,
        keywords: &[&str],
    ) -> Result<(), ProtocolError> {
        let modulus_bits = self.owner.public_key().modulus_bits();
        if let Some(request) = self.user.make_trapdoor_request(keywords) {
            let request_bits = request.bits(modulus_bits);
            let before = self.owner.wire_stats();
            let reply = self.owner.request_trapdoors(&request)?;
            let moved = self.owner.wire_stats().since(&before);
            record_exchange(
                ledger,
                Party::User,
                Party::DataOwner,
                Phase::Trapdoor,
                (request_bits, reply.bits(modulus_bits)),
                moved,
            );
            self.user.ingest_trapdoor_reply(&reply)?;
        }
        Ok(())
    }

    /// Online phase: run one complete query for `keywords`, retrieving and decrypting the top
    /// `theta` matching documents. Counters are reset at the start so the report reflects this
    /// round only.
    ///
    /// Every exchange travels as a framed envelope; the per-document blinded key
    /// decryptions of step 4 are pipelined through the owner client (submit all,
    /// flush once, correlate by request id).
    pub fn run_query<R: Rng + ?Sized>(
        &mut self,
        keywords: &[&str],
        theta: usize,
        rng: &mut R,
    ) -> Result<SessionReport, ProtocolError> {
        self.owner.reset_counters();
        self.server.reset_counters();
        self.user.reset_counters();
        let ledger = CostLedger::new();
        let modulus_bits = self.owner.public_key().modulus_bits();
        let mark = self.wire_mark();

        // Step 1 (Figure 1): trapdoor exchange.
        self.trapdoor_exchange(&ledger, keywords)?;

        // Step 2: query the server.
        let query = self.user.build_query(keywords, None, rng)?;
        let before = self.server.wire_stats();
        let search_reply = self.server.query(&query)?;
        record_exchange(
            &ledger,
            Party::User,
            Party::Server,
            Phase::Search,
            (query.bits(), search_reply.bits()),
            self.server.wire_stats().since(&before),
        );

        // Step 3: retrieve the top θ documents.
        let theta = theta.min(search_reply.matches.len());
        let mut retrieved = Vec::with_capacity(theta);
        if theta > 0 {
            let doc_request = self.user.choose_documents(&search_reply, theta)?;
            let before = self.server.wire_stats();
            let doc_reply = self.server.fetch_documents(&doc_request)?;
            record_exchange(
                &ledger,
                Party::User,
                Party::Server,
                Phase::Search,
                (doc_request.bits(), doc_reply.bits(modulus_bits)),
                self.server.wire_stats().since(&before),
            );

            // Step 4: blinded key decryption — one request per retrieved
            // document, pipelined: submit all, flush once, correlate by id.
            // Every request is built BEFORE anything is queued, so a failure
            // while preparing the window leaves no stale frames behind.
            let mut prepared = Vec::with_capacity(doc_reply.documents.len());
            for transfer in &doc_reply.documents {
                let (blind_request, state) = self
                    .user
                    .begin_blind_decrypt(&transfer.encrypted_key, rng)?;
                prepared.push((blind_request, state, transfer));
            }
            let before = self.owner.wire_stats();
            let mut pending = Vec::with_capacity(prepared.len());
            for (blind_request, state, transfer) in prepared {
                ledger.record(
                    Party::User,
                    Party::DataOwner,
                    Phase::Decrypt,
                    blind_request.bits(modulus_bits),
                );
                let id = self.owner.submit(&Request::BlindDecrypt(blind_request));
                pending.push((id, state, transfer));
            }
            if let Err(e) = self.owner.flush() {
                self.owner.abandon();
                return Err(e);
            }
            let moved = self.owner.wire_stats().since(&before);
            ledger.record_wire(
                Party::User,
                Party::DataOwner,
                Phase::Decrypt,
                moved.frames_sent,
                moved.bytes_sent,
            );
            ledger.record_wire(
                Party::DataOwner,
                Party::User,
                Phase::Decrypt,
                moved.frames_received,
                moved.bytes_received,
            );
            // Take EVERY reply, even after a failure, so no orphaned reply
            // survives in the inbox; the first error is surfaced at the end.
            let mut first_error: Option<ProtocolError> = None;
            for (id, state, transfer) in pending {
                let response = self.owner.take(id);
                if first_error.is_some() {
                    continue;
                }
                let Some(response) = response else {
                    first_error = Some(ProtocolError::Codec(crate::wire::CodecError::Malformed(
                        format!("no blind-decrypt reply correlated to request id {id}"),
                    )));
                    continue;
                };
                let blind_reply = match Client::<DataOwner>::expect_blind_decrypt(response) {
                    Ok(reply) => reply,
                    Err(e) => {
                        first_error = Some(e);
                        continue;
                    }
                };
                ledger.record(
                    Party::DataOwner,
                    Party::User,
                    Phase::Decrypt,
                    blind_reply.bits(modulus_bits),
                );
                match self
                    .user
                    .finish_blind_decrypt(&blind_reply, state)
                    .and_then(|key| self.user.decrypt_document(transfer, &key))
                {
                    Ok(plaintext) => retrieved.push((transfer.document_id, plaintext)),
                    Err(e) => first_error = Some(e),
                }
            }
            if let Some(e) = first_error {
                return Err(e);
            }
        }

        self.ledger.merge_from(&ledger);
        let wire = self.wire_report_since(&mark);
        // Local introspection through the client's Deref — no extra envelope,
        // so the metrics read never perturbs the round's wire or counter view.
        let server: &CloudServer = &self.server;
        let server_metrics =
            (server.telemetry_level() != TelemetryLevel::Off).then(|| server.metrics_snapshot());

        Ok(SessionReport {
            matches: search_reply
                .matches
                .iter()
                .map(|m| (m.document_id, m.rank))
                .collect(),
            retrieved,
            communication: ledger,
            user_ops: *self.user.counters(),
            owner_ops: *self.owner.counters(),
            server_ops: *self.server.counters(),
            cache: search_reply.cache,
            shards: self.server.num_shards(),
            wire,
            server_metrics,
        })
    }

    /// Run many searches in **one round trip** (the batched-query message): the
    /// trapdoor exchange covers the union of all keyword sets, then a single
    /// [`crate::messages::BatchQueryMessage`] carries every query and a single
    /// [`crate::messages::BatchSearchReply`] carries every answer. Returns the
    /// `(document id, rank)` matches per keyword set, in request order.
    ///
    /// Compared to calling [`SearchSession::run_query`] per set, the results and
    /// the ledger's Table 1 bit counts are identical — batching changes round
    /// trips, not bits — while the server evaluates the whole batch in one pass
    /// over each index shard.
    pub fn run_batch<R: Rng + ?Sized>(
        &mut self,
        keyword_sets: &[Vec<&str>],
        rng: &mut R,
    ) -> Result<Vec<Vec<(u64, u32)>>, ProtocolError> {
        // Step 1 (Figure 1): one trapdoor exchange for the union of all keywords.
        let union: Vec<&str> = keyword_sets.iter().flatten().copied().collect();
        let ledger = self.ledger.clone(); // shared handle, not a copy
        self.trapdoor_exchange(&ledger, &union)?;

        // Step 2: every query in one batched round trip.
        let batch = self.user.build_batch_query(keyword_sets, None, rng)?;
        let before = self.server.wire_stats();
        let reply = self.server.batch_query(&batch)?;
        record_exchange(
            &ledger,
            Party::User,
            Party::Server,
            Phase::Search,
            (batch.bits(), reply.bits()),
            self.server.wire_stats().since(&before),
        );

        Ok(reply
            .replies
            .iter()
            .map(|r| r.matches.iter().map(|m| (m.document_id, m.rank)).collect())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn corpus() -> Vec<Document> {
        vec![
            Document::from_text(0, "cloud privacy search over encrypted cloud data"),
            Document::from_text(1, "weather forecast for tomorrow"),
            Document::from_text(2, "private cloud storage encryption pricing"),
            Document::from_text(3, "holiday photos from the beach"),
        ]
    }

    fn session() -> (SearchSession, StdRng) {
        let mut rng = StdRng::seed_from_u64(2718);
        let session = SearchSession::setup(OwnerConfig::fast_for_tests(), &corpus(), &mut rng)
            .expect("setup succeeds");
        (session, rng)
    }

    #[test]
    fn full_round_retrieves_and_decrypts_matching_documents() {
        let (mut session, mut rng) = session();
        // Query keywords must be normalized (stemmed) the same way document terms were.
        let cloud = mkse_textproc::normalize_keyword("cloud");
        let privacy = mkse_textproc::normalize_keyword("privacy");
        let report = session
            .run_query(&[cloud.as_str(), privacy.as_str()], 1, &mut rng)
            .unwrap();

        // Document 0 contains both stems; the retrieved top document decrypts to its
        // original text.
        assert!(!report.matches.is_empty());
        assert_eq!(report.retrieved.len(), 1);
        let (id, plaintext) = &report.retrieved[0];
        let original = corpus().iter().find(|d| d.id == *id).unwrap().body.clone();
        assert_eq!(plaintext, &original);
    }

    #[test]
    fn communication_costs_follow_table1_shapes() {
        let (mut session, mut rng) = session();
        let report = session.run_query(&["cloud"], 1, &mut rng).unwrap();
        let ledger = &report.communication;
        let modulus_bits = session.owner.public_key().modulus_bits();

        // User → server search traffic includes the r-bit query (plus the 64-bit doc request).
        let user_search = ledger.bits_sent(Party::User, Phase::Search);
        assert!((448..=448 + 64).contains(&user_search));
        // User → owner trapdoor request is 32·γ + log N bits.
        let user_trapdoor = ledger.bits_sent(Party::User, Phase::Trapdoor);
        assert_eq!(user_trapdoor, 32 + modulus_bits as u64);
        // Decrypt phase: user sends 2·log N per retrieved document, owner replies with log N.
        assert_eq!(
            ledger.bits_sent(Party::User, Phase::Decrypt),
            2 * modulus_bits as u64
        );
        assert_eq!(
            ledger.bits_sent(Party::DataOwner, Phase::Decrypt),
            modulus_bits as u64
        );
        // The server never talks to the data owner.
        assert_eq!(ledger.bits_sent(Party::Server, Phase::Trapdoor), 0);
        assert_eq!(ledger.bits_sent(Party::Server, Phase::Decrypt), 0);
    }

    #[test]
    fn measured_wire_traffic_bounds_the_analytic_bits() {
        let (mut session, mut rng) = session();
        let report = session.run_query(&["cloud"], 1, &mut rng).unwrap();
        let ledger = &report.communication;

        // Framing adds overhead, never removes payload: every measured cell
        // dominates its analytic counterpart.
        for party in [Party::User, Party::DataOwner, Party::Server] {
            for phase in [Phase::Trapdoor, Phase::Search, Phase::Decrypt] {
                let analytic = ledger.bits_sent(party, phase);
                let measured = ledger.wire_bits_sent(party, phase);
                assert!(
                    measured >= analytic,
                    "{party} {phase}: measured {measured} < analytic {analytic}"
                );
                // Per-frame overhead is small and bounded: 14 bytes of framing
                // plus byte-alignment and length prefixes inside the body.
                if analytic > 0 {
                    assert!(measured < analytic + 8 * 512, "{party} {phase} overhead");
                }
            }
        }

        // The wire report aggregates both connections and names the ids used.
        assert!(report.wire.frames_sent >= 3); // trapdoor + query + doc request + decrypts
        assert_eq!(report.wire.frames_sent, report.wire.frames_received);
        assert!(report.wire.bytes_sent > 0);
        assert!(report.wire.bytes_received > report.wire.bytes_sent); // metadata-heavy replies
        assert!(!report.wire.server_request_ids.is_empty());
        assert!(!report.wire.owner_request_ids.is_empty());
    }

    #[test]
    fn computation_costs_follow_table2_shapes() {
        let (mut session, mut rng) = session();
        let report = session.run_query(&["cloud"], 1, &mut rng).unwrap();

        // Server: only binary comparisons, no cryptography at all.
        assert!(report.server_ops.binary_comparisons >= 4);
        assert_eq!(report.server_ops.public_key_operations(), 0);
        assert_eq!(report.server_ops.hashes, 0);
        // The server answered one envelope per exchange: query + document fetch.
        assert_eq!(report.server_ops.requests_served, 2);

        // User: hash for the trapdoor, a handful of modular exponentiations (sign, decrypt
        // bin key, blind, sign) and multiplications (blind/unblind), one symmetric decryption.
        assert!(report.user_ops.hashes >= 1);
        assert!(report.user_ops.modular_exponentiations >= 3);
        assert!(report.user_ops.modular_multiplications >= 2);
        assert_eq!(report.user_ops.symmetric_decryptions, 1);

        // Data owner: about 4 modular exponentiations per search (2 for the trapdoor step,
        // 2 for the decryption step), as Table 2 states.
        assert!(report.owner_ops.modular_exponentiations >= 4);
        assert_eq!(report.owner_ops.symmetric_encryptions, 0);
    }

    #[test]
    fn repeated_queries_reuse_cached_trapdoors() {
        let (mut session, mut rng) = session();
        let first = session.run_query(&["cloud"], 0, &mut rng).unwrap();
        assert!(first.communication.bits_sent(Party::User, Phase::Trapdoor) > 0);
        // Second query for the same keyword: no trapdoor traffic at all (§3: the same trapdoor
        // serves many queries) — neither analytic nor on the measured wire.
        let second = session.run_query(&["cloud"], 0, &mut rng).unwrap();
        assert_eq!(
            second.communication.bits_sent(Party::User, Phase::Trapdoor),
            0
        );
        assert_eq!(
            second
                .communication
                .wire_bits_sent(Party::User, Phase::Trapdoor),
            0
        );
        assert!(second.wire.owner_request_ids.is_empty());
        // The global ledger accumulated both rounds.
        assert!(session.ledger.total_bits() > second.communication.total_bits());
    }

    #[test]
    fn theta_is_clamped_to_available_matches() {
        let (mut session, mut rng) = session();
        let report = session.run_query(&["weather"], 10, &mut rng).unwrap();
        assert!(report.retrieved.len() <= report.matches.len());
        for (id, body) in &report.retrieved {
            let original = corpus().iter().find(|d| d.id == *id).unwrap().body.clone();
            assert_eq!(body, &original);
        }
    }

    #[test]
    fn nonexistent_keyword_matches_nothing_or_only_false_accepts() {
        let (mut session, mut rng) = session();
        let report = session
            .run_query(&["zzzznonexistent", "qqqqalsonot"], 0, &mut rng)
            .unwrap();
        // With two absent keywords the probability of a false accept is ≈ (279/448)^14 < 0.2%,
        // so under this fixed seed nothing matches.
        assert!(report.matches.is_empty());
        assert!(report.retrieved.is_empty());
    }

    #[test]
    fn batched_round_matches_individual_rounds() {
        let cloud = mkse_textproc::normalize_keyword("cloud");
        let weather = mkse_textproc::normalize_keyword("weather");
        let sets: Vec<Vec<&str>> = vec![vec![cloud.as_str()], vec![weather.as_str()]];

        let (mut batched_session, mut rng1) = session();
        let batched = batched_session.run_batch(&sets, &mut rng1).unwrap();

        let (mut single_session, mut rng2) = session();
        let individual: Vec<Vec<(u64, u32)>> = sets
            .iter()
            .map(|kws| single_session.run_query(kws, 0, &mut rng2).unwrap().matches)
            .collect();

        // Same matches per keyword set (randomization never changes results), and
        // the same search-phase bit totals — batching saves round trips, not bits.
        assert_eq!(batched, individual);
        assert!(batched[0].iter().any(|(id, _)| *id == 0 || *id == 2));
        assert_eq!(
            batched_session.ledger.bits_sent(Party::User, Phase::Search),
            single_session.ledger.bits_sent(Party::User, Phase::Search),
        );
        // One trapdoor exchange covered both keyword sets.
        assert!(
            batched_session
                .ledger
                .bits_sent(Party::User, Phase::Trapdoor)
                > 0
        );
        // On the measured wire batching IS cheaper: one frame instead of two.
        assert_eq!(
            batched_session
                .ledger
                .wire_frames_sent(Party::User, Phase::Search),
            1
        );
        assert_eq!(
            single_session
                .ledger
                .wire_frames_sent(Party::User, Phase::Search),
            2
        );
        assert!(
            batched_session
                .ledger
                .wire_bits_sent(Party::User, Phase::Search)
                < single_session
                    .ledger
                    .wire_bits_sent(Party::User, Phase::Search)
        );
    }

    #[test]
    fn session_reports_cache_effects_when_enabled() {
        let (mut session, mut rng) = session();
        session.server.enable_result_cache(32);
        let shards = session.server.num_shards() as u64;

        // run_query builds a fresh randomized query each round (§6), so repeated
        // *keyword* searches produce different query indices and — correctly —
        // miss the cache: randomization hides the search pattern from the server,
        // and the fingerprint sees only what the server sees.
        let first = session.run_query(&["cloud"], 0, &mut rng).unwrap();
        assert_eq!(first.cache.shard_misses, shards);
        assert!(!first.cache.served_from_cache);
        let second = session.run_query(&["cloud"], 0, &mut rng).unwrap();
        assert_eq!(second.matches, first.matches);
        assert!(!second.cache.served_from_cache);

        // A render with hits mentions the cache line.
        let mut report = second;
        report.cache.shard_hits = shards;
        report.cache.served_from_cache = true;
        assert!(report.render().contains("result cache"));
    }

    #[test]
    fn session_report_includes_server_telemetry_when_enabled() {
        let (mut session, mut rng) = session();
        let off = session.run_query(&["cloud"], 0, &mut rng).unwrap();
        assert!(off.server_metrics.is_none(), "telemetry defaults to Off");
        assert!(!off.render().contains("server telemetry"));

        session.server.set_telemetry_level(TelemetryLevel::Spans);
        let on = session.run_query(&["cloud"], 0, &mut rng).unwrap();
        // Telemetry is invisible: the reply and the Table 2 accounting are
        // unchanged by recording at the most detailed level.
        assert_eq!(on.matches, off.matches);
        assert_eq!(
            on.server_ops.requests_served,
            off.server_ops.requests_served
        );

        let metrics = on.server_metrics.as_ref().expect("registry snapshot");
        assert_eq!(metrics.level, TelemetryLevel::Spans);
        assert!(metrics.counter("queries") >= 1);
        assert!(metrics.counter("wire_frames_in") >= 1);
        assert!(metrics.counter("wire_bytes_out") > 0);
        assert!(metrics.histograms.iter().any(|h| h.stage == "service_call"));
        let text = on.render();
        assert!(text.contains("server telemetry (level spans"));
        assert!(text.contains("service_call"));
    }

    #[test]
    fn report_renders_summary() {
        let (mut session, mut rng) = session();
        let report = session.run_query(&["cloud"], 1, &mut rng).unwrap();
        let text = report.render();
        assert!(text.contains("matches:"));
        assert!(text.contains("communication"));
        assert!(text.contains("server operations"));
        // The redesigned report names the shard count and the measured wire.
        assert!(text.contains(&format!("server shards: {}", session.server.num_shards())));
        assert!(text.contains("wire:"));
        assert!(text.contains("request ids"));
        assert!(text.contains("measured framed wire"));
    }
}
