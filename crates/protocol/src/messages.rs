//! Protocol messages and their wire sizes.
//!
//! Every message knows its size in bits so the [`crate::CostLedger`] can be fed exactly what
//! Table 1 accounts for: bin ids are 32-bit integers, indices are `r` bits, RSA values are
//! `log N` bits, signatures are `log N` bits, and ciphertexts are as long as the documents.

use mkse_core::bins::BinId;
use mkse_core::bitindex::BitIndex;
use mkse_core::document_index::RankedDocumentIndex;
use mkse_crypto::bigint::BigUint;
use mkse_crypto::rsa::RsaSignature;

/// User → data owner: "send me the keys of these bins" (§4.2), signed by the user.
#[derive(Clone, Debug, PartialEq)]
pub struct TrapdoorRequest {
    /// Requesting user (so the owner can look up the verification key).
    pub user_id: u64,
    /// The bins covering the user's keywords (deduplicated).
    pub bin_ids: Vec<BinId>,
    /// Signature over the bin list (non-impersonation).
    pub signature: RsaSignature,
}

impl TrapdoorRequest {
    /// The canonical byte encoding the signature covers.
    pub fn signed_payload(user_id: u64, bin_ids: &[BinId]) -> Vec<u8> {
        let mut payload = user_id.to_be_bytes().to_vec();
        for b in bin_ids {
            payload.extend_from_slice(&b.to_be_bytes());
        }
        payload
    }

    /// Size on the wire: 32 bits per bin id plus a `log N`-bit signature (Table 1's
    /// `32·γ + log N`).
    pub fn bits(&self, modulus_bits: usize) -> u64 {
        32 * self.bin_ids.len() as u64 + modulus_bits as u64
    }
}

/// Data owner → user: the requested bin keys, encrypted under the user's public key.
///
/// Each bin key travels as one RSA ciphertext of `log N` bits (the paper's reply is "encrypted
/// with the user's public-key, so the size of the result is log N" for a single-bin request).
#[derive(Clone, Debug, PartialEq)]
pub struct TrapdoorReply {
    /// `(bin id, RSA encryption of that bin's HMAC key)` pairs.
    pub encrypted_bin_keys: Vec<(BinId, BigUint)>,
}

impl TrapdoorReply {
    /// Size on the wire: `log N` bits per returned bin key.
    pub fn bits(&self, modulus_bits: usize) -> u64 {
        self.encrypted_bin_keys.len() as u64 * modulus_bits as u64
    }
}

/// User → server: the r-bit query index (§4.2). No identity, no signature — the server does
/// not need to know who is asking (§7, Theorem 4 discussion).
#[derive(Clone, Debug, PartialEq)]
pub struct QueryMessage {
    /// The query index.
    pub query: BitIndex,
    /// How many top matches the user wants back (τ of §5); `None` means all matches.
    pub top: Option<usize>,
}

impl QueryMessage {
    /// Size on the wire: `r` bits (independent of the number of search terms).
    pub fn bits(&self) -> u64 {
        self.query.serialized_bits() as u64
    }
}

/// User → server: **many** query indices in one round trip.
///
/// The paper's protocol sends one `r`-bit query per round trip; under heavy
/// multi-query traffic (one user searching several keyword sets, or a gateway
/// multiplexing users) batching amortizes the transport round trip and lets the
/// server evaluate the whole batch in a single pass over each index shard. The
/// on-wire cost is exactly the sum of the individual queries — `b·r` bits for a
/// batch of `b` — so a batch of one costs the same as a [`QueryMessage`].
#[derive(Clone, Debug, PartialEq)]
pub struct BatchQueryMessage {
    /// The query indices, one per logical search.
    pub queries: Vec<BitIndex>,
    /// How many top matches the user wants back *per query*; `None` means all.
    pub top: Option<usize>,
}

impl BatchQueryMessage {
    /// Size on the wire: `r` bits per query, independent of term counts (Table 1).
    pub fn bits(&self) -> u64 {
        self.queries
            .iter()
            .map(|q| q.serialized_bits() as u64)
            .sum()
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the batch carries no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// Server → user: one [`SearchReply`] per query of a [`BatchQueryMessage`], in the
/// batch's order.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchSearchReply {
    /// Per-query replies, aligned with the request's `queries`.
    pub replies: Vec<SearchReply>,
}

impl BatchSearchReply {
    /// Size on the wire: the sum of the per-query reply sizes.
    pub fn bits(&self) -> u64 {
        self.replies.iter().map(|r| r.bits()).sum()
    }
}

/// How the server's result cache contributed to one reply (all zeros when the
/// cache is disabled). Diagnostics the server reports alongside the matches —
/// it reveals nothing beyond the server's own observation that the same query
/// bytes arrived before, which is the search pattern of §6.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheReport {
    /// Index shards answered from the result cache.
    pub shard_hits: u64,
    /// Index shards that were scanned.
    pub shard_misses: u64,
    /// r-bit comparisons the cache hits made unnecessary.
    pub saved_comparisons: u64,
    /// True if every shard hit — the reply was produced without any scan.
    pub served_from_cache: bool,
}

impl From<mkse_core::cache::CacheEffect> for CacheReport {
    fn from(effect: mkse_core::cache::CacheEffect) -> Self {
        CacheReport {
            shard_hits: effect.shard_hits,
            shard_misses: effect.shard_misses,
            saved_comparisons: effect.saved_comparisons,
            served_from_cache: effect.fully_cached(),
        }
    }
}

/// Server → user: ids and index metadata of the matching documents (§4.3: "the server sends
/// metadata of the matching documents to the user").
#[derive(Clone, Debug, PartialEq)]
pub struct SearchReply {
    /// `(document id, rank, per-level metadata)` for each match, best rank first.
    pub matches: Vec<SearchResultEntry>,
    /// Result-cache diagnostics for this reply (zeros when caching is off).
    pub cache: CacheReport,
}

/// One entry of a [`SearchReply`].
#[derive(Clone, Debug, PartialEq)]
pub struct SearchResultEntry {
    /// The matching document.
    pub document_id: u64,
    /// Its rank (highest matching level).
    pub rank: u32,
    /// The document's per-level search indices (the "metadata" the user analyses locally).
    pub metadata: Vec<BitIndex>,
}

impl SearchReply {
    /// Size on the wire: the metadata dominates — `α·η·r` bits plus 64 bits of id and 32 bits
    /// of rank per match (Table 1 counts the dominant `α·r` term). The [`CacheReport`]
    /// is constant-size server diagnostics and is not part of the Table 1 accounting.
    pub fn bits(&self) -> u64 {
        self.matches
            .iter()
            .map(|m| {
                96 + m
                    .metadata
                    .iter()
                    .map(|idx| idx.serialized_bits() as u64)
                    .sum::<u64>()
            })
            .sum()
    }
}

/// User → server: retrieve these documents (the θ chosen after analyzing the metadata).
#[derive(Clone, Debug, PartialEq)]
pub struct DocumentRequest {
    /// Ids of the documents to fetch.
    pub document_ids: Vec<u64>,
}

impl DocumentRequest {
    /// Size on the wire: 64 bits per requested id.
    pub fn bits(&self) -> u64 {
        64 * self.document_ids.len() as u64
    }
}

/// Server → user: the encrypted documents and their RSA-encrypted symmetric keys
/// (`θ·(doc_size + log N)` bits in Table 1).
#[derive(Clone, Debug, PartialEq)]
pub struct DocumentReply {
    /// One entry per requested document.
    pub documents: Vec<EncryptedDocumentTransfer>,
}

/// One encrypted document in transit.
#[derive(Clone, Debug, PartialEq)]
pub struct EncryptedDocumentTransfer {
    /// Document id.
    pub document_id: u64,
    /// Symmetric-key ciphertext of the document body.
    pub ciphertext: Vec<u8>,
    /// RSA encryption of the per-document symmetric key.
    pub encrypted_key: BigUint,
}

impl DocumentReply {
    /// Size on the wire.
    pub fn bits(&self, modulus_bits: usize) -> u64 {
        self.documents
            .iter()
            .map(|d| 64 + 8 * d.ciphertext.len() as u64 + modulus_bits as u64)
            .sum()
    }
}

/// Data owner → server: the offline-phase upload (§3, Figure 1) — searchable
/// indices plus the encrypted documents and their RSA-encrypted symmetric keys.
///
/// As a message this makes the upload expressible through the
/// [`crate::envelope::Request`] envelope like every online operation, so a
/// deployment can drive the whole server lifecycle over one framed transport.
#[derive(Clone, Debug, PartialEq)]
pub struct UploadMessage {
    /// One ranked searchable index per document.
    pub indices: Vec<RankedDocumentIndex>,
    /// The encrypted document bodies and their encrypted per-document keys.
    pub documents: Vec<EncryptedDocumentTransfer>,
}

impl UploadMessage {
    /// Size on the wire: `η·r` bits of index levels plus a 64-bit id per index,
    /// and `64 + 8·|ciphertext| + log N` bits per encrypted document (the §5
    /// storage analysis, counted as transfer).
    pub fn bits(&self, modulus_bits: usize) -> u64 {
        let index_bits: u64 = self
            .indices
            .iter()
            .map(|idx| {
                64 + idx
                    .levels
                    .iter()
                    .map(|l| l.serialized_bits() as u64)
                    .sum::<u64>()
            })
            .sum();
        let document_bits: u64 = self
            .documents
            .iter()
            .map(|d| 64 + 8 * d.ciphertext.len() as u64 + modulus_bits as u64)
            .sum();
        index_bits + document_bits
    }
}

/// User → data owner: a blinded RSA ciphertext to decrypt (§4.4), signed by the user.
#[derive(Clone, Debug, PartialEq)]
pub struct BlindDecryptRequest {
    /// Requesting user.
    pub user_id: u64,
    /// `z = cᵉ·y mod N`.
    pub blinded_ciphertext: BigUint,
    /// Signature over the blinded ciphertext.
    pub signature: RsaSignature,
}

impl BlindDecryptRequest {
    /// The canonical byte encoding the signature covers.
    pub fn signed_payload(user_id: u64, blinded: &BigUint) -> Vec<u8> {
        let mut payload = user_id.to_be_bytes().to_vec();
        payload.extend_from_slice(&blinded.to_bytes_be());
        payload
    }

    /// Size on the wire: `log N` bits of ciphertext plus a `log N`-bit signature.
    pub fn bits(&self, modulus_bits: usize) -> u64 {
        2 * modulus_bits as u64
    }
}

/// Data owner → user: the blinded decryption `z̄ = z^d mod N` (`log N` bits).
#[derive(Clone, Debug, PartialEq)]
pub struct BlindDecryptReply {
    /// The blinded plaintext.
    pub blinded_plaintext: BigUint,
}

impl BlindDecryptReply {
    /// Size on the wire.
    pub fn bits(&self, modulus_bits: usize) -> u64 {
        modulus_bits as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkse_crypto::bigint::BigUint;

    #[test]
    fn trapdoor_request_bits_match_table1() {
        let req = TrapdoorRequest {
            user_id: 1,
            bin_ids: vec![3, 7, 11],
            signature: RsaSignature::from_value(BigUint::from_u64(1)),
        };
        // 32·γ + log N with γ = 3 bins and a 1024-bit modulus.
        assert_eq!(req.bits(1024), 32 * 3 + 1024);
    }

    #[test]
    fn signed_payload_is_deterministic_and_order_sensitive() {
        let a = TrapdoorRequest::signed_payload(1, &[1, 2]);
        let b = TrapdoorRequest::signed_payload(1, &[1, 2]);
        let c = TrapdoorRequest::signed_payload(1, &[2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn trapdoor_reply_bits_scale_with_bins() {
        let reply = TrapdoorReply {
            encrypted_bin_keys: vec![(1, BigUint::from_u64(9)), (2, BigUint::from_u64(8))],
        };
        assert_eq!(reply.bits(1024), 2048);
    }

    #[test]
    fn query_message_is_r_bits() {
        let q = QueryMessage {
            query: BitIndex::all_ones(448),
            top: Some(5),
        };
        assert_eq!(q.bits(), 448);
    }

    #[test]
    fn batch_query_bits_are_the_sum_of_member_queries() {
        let single = QueryMessage {
            query: BitIndex::all_ones(448),
            top: None,
        };
        let batch = BatchQueryMessage {
            queries: vec![BitIndex::all_ones(448); 5],
            top: None,
        };
        assert_eq!(batch.len(), 5);
        assert!(!batch.is_empty());
        assert_eq!(batch.bits(), 5 * single.bits());
        // A batch of one costs exactly one QueryMessage.
        let batch1 = BatchQueryMessage {
            queries: vec![BitIndex::all_ones(448)],
            top: Some(3),
        };
        assert_eq!(batch1.bits(), single.bits());
    }

    #[test]
    fn batch_reply_bits_sum_member_replies() {
        let entry = SearchResultEntry {
            document_id: 1,
            rank: 2,
            metadata: vec![BitIndex::all_ones(448); 3],
        };
        let reply = SearchReply {
            matches: vec![entry],
            cache: CacheReport::default(),
        };
        let batch = BatchSearchReply {
            replies: vec![reply.clone(), reply.clone(), reply.clone()],
        };
        assert_eq!(batch.bits(), 3 * reply.bits());
    }

    #[test]
    fn search_reply_bits_scale_with_matches_and_levels() {
        let entry = SearchResultEntry {
            document_id: 1,
            rank: 2,
            metadata: vec![BitIndex::all_ones(448); 3],
        };
        let reply = SearchReply {
            matches: vec![entry.clone(), entry],
            cache: CacheReport::default(),
        };
        assert_eq!(reply.bits(), 2 * (96 + 3 * 448));
    }

    #[test]
    fn document_messages_bits() {
        let req = DocumentRequest {
            document_ids: vec![5, 9],
        };
        assert_eq!(req.bits(), 128);
        let reply = DocumentReply {
            documents: vec![EncryptedDocumentTransfer {
                document_id: 5,
                ciphertext: vec![0u8; 100],
                encrypted_key: BigUint::from_u64(3),
            }],
        };
        assert_eq!(reply.bits(1024), 64 + 800 + 1024);
    }

    #[test]
    fn upload_message_bits_follow_the_storage_analysis() {
        use mkse_core::document_index::RankedDocumentIndex;
        let upload = UploadMessage {
            indices: vec![RankedDocumentIndex {
                document_id: 1,
                levels: vec![BitIndex::all_ones(448); 3],
            }],
            documents: vec![EncryptedDocumentTransfer {
                document_id: 1,
                ciphertext: vec![0u8; 100],
                encrypted_key: BigUint::from_u64(3),
            }],
        };
        // Index part: 64-bit id + η·r level bits; document part matches
        // DocumentReply's per-transfer accounting.
        assert_eq!(upload.bits(1024), (64 + 3 * 448) + (64 + 800 + 1024));
        let empty = UploadMessage {
            indices: vec![],
            documents: vec![],
        };
        assert_eq!(empty.bits(1024), 0);
    }

    #[test]
    fn blind_decrypt_messages_bits() {
        let req = BlindDecryptRequest {
            user_id: 7,
            blinded_ciphertext: BigUint::from_u64(123),
            signature: RsaSignature::from_value(BigUint::from_u64(1)),
        };
        assert_eq!(req.bits(1024), 2048);
        let reply = BlindDecryptReply {
            blinded_plaintext: BigUint::from_u64(5),
        };
        assert_eq!(reply.bits(1024), 1024);
        let payload = BlindDecryptRequest::signed_payload(7, &BigUint::from_u64(123));
        assert!(payload.len() > 8);
    }
}
