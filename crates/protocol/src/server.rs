//! The cloud server (§3): stores encrypted documents plus searchable indices and answers
//! queries with pure bit comparisons.
//!
//! The server runs on the layered read path of `mkse-core`: a [`ShardedStore`]
//! partitions the indices round-robin across shards, and a [`SearchEngine`] scans the
//! shards in parallel. Results are bit-for-bit identical to the paper's sequential
//! scan (deterministic rank-then-id order); only the wall-clock time changes.
//!
//! An optional **result cache** ([`mkse_core::cache`]) sits in front of the shard
//! scans: [`CloudServer::enable_result_cache`] turns it on with a per-shard
//! capacity, repeated query indices are then answered without scanning, and the
//! [`OperationCounters`] split the Table 2 comparison count into work actually
//! performed (`binary_comparisons`) and work the cache saved
//! (`comparisons_saved_by_cache`). Replies carry a [`crate::messages::CacheReport`]
//! so users (and the benches) can observe hit rates end to end.

use crate::counters::OperationCounters;
use crate::messages::{
    BatchQueryMessage, BatchSearchReply, CacheReport, DocumentReply, DocumentRequest,
    EncryptedDocumentTransfer, QueryMessage, SearchReply, SearchResultEntry,
};
use crate::ProtocolError;
use mkse_core::cache::{CacheConfig, CacheEffect, CacheStats};
use mkse_core::document_index::RankedDocumentIndex;
use mkse_core::engine::SearchEngine;
use mkse_core::params::SystemParams;
use mkse_core::query::QueryIndex;
use mkse_core::search::{SearchMatch, SearchStats};
use mkse_core::storage::{IndexStore, ShardedStore};
use std::collections::BTreeMap;

/// The cloud-server actor.
pub struct CloudServer {
    engine: SearchEngine<ShardedStore>,
    documents: BTreeMap<u64, EncryptedDocumentTransfer>,
    counters: OperationCounters,
}

impl CloudServer {
    /// Create an empty server for the given public parameters, sharding the index
    /// across the host's available cores (capped at 8 — beyond that the per-query
    /// merge overhead outweighs extra scan threads for realistic store sizes).
    pub fn new(params: SystemParams) -> Self {
        let shards = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
        Self::with_shards(params, shards)
    }

    /// Create an empty server with an explicit shard count (e.g. 1 to reproduce the
    /// paper's sequential timings).
    pub fn with_shards(params: SystemParams, shards: usize) -> Self {
        CloudServer {
            engine: SearchEngine::sharded(params, shards),
            documents: BTreeMap::new(),
            counters: OperationCounters::new(),
        }
    }

    /// Number of index shards this server scans in parallel.
    pub fn num_shards(&self) -> usize {
        self.engine.store().num_shards()
    }

    /// Enable the per-shard result cache with the given per-shard entry capacity.
    /// Off by default: turning it on never changes reply bytes (matches, ranks,
    /// order), only the work performed for repeated query indices — see the
    /// search-pattern note in [`mkse_core::cache`].
    pub fn enable_result_cache(&mut self, capacity_per_shard: usize) {
        self.engine.enable_cache(CacheConfig { capacity_per_shard });
    }

    /// Disable the result cache, dropping every entry.
    pub fn disable_result_cache(&mut self) {
        self.engine.disable_cache();
    }

    /// True if the result cache is enabled.
    pub fn result_cache_enabled(&self) -> bool {
        self.engine.cache_enabled()
    }

    /// Cumulative cache effectiveness counters, or `None` when caching is off.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.engine.cache_stats()
    }

    /// Snapshot the searchable index into the versioned binary format of
    /// [`mkse_core::persistence`]. The result cache is never part of a snapshot.
    pub fn snapshot_index(&self) -> Vec<u8> {
        self.engine.snapshot()
    }

    /// Restore an index snapshot, appending its documents. Every cache generation
    /// is bumped, so entries cached before the restore can never be served after.
    pub fn restore_index(&mut self, bytes: &[u8]) -> Result<usize, ProtocolError> {
        Ok(self.engine.restore_snapshot(bytes)?)
    }

    /// Accept the data owner's upload: searchable indices and encrypted documents.
    ///
    /// Rejects (without partial effect on the document bodies) uploads whose indices
    /// do not match the server's parameters or collide with stored document ids.
    pub fn upload(
        &mut self,
        indices: Vec<RankedDocumentIndex>,
        documents: Vec<EncryptedDocumentTransfer>,
    ) -> Result<(), ProtocolError> {
        self.engine.insert_all(indices)?;
        for doc in documents {
            self.documents.insert(doc.document_id, doc);
        }
        Ok(())
    }

    /// Number of stored documents (σ).
    pub fn num_documents(&self) -> usize {
        self.engine.len()
    }

    fn reply_entries(&self, matches: Vec<SearchMatch>, top: Option<usize>) -> SearchReply {
        let limit = top.unwrap_or(matches.len());
        let entries = matches
            .into_iter()
            .take(limit)
            .map(|m| {
                let metadata = self
                    .engine
                    .document_index(m.document_id)
                    .map(|idx| idx.levels.clone())
                    .unwrap_or_default();
                SearchResultEntry {
                    document_id: m.document_id,
                    rank: m.rank,
                    metadata,
                }
            })
            .collect();
        SearchReply {
            matches: entries,
            cache: CacheReport::default(),
        }
    }

    /// Account one query execution: `binary_comparisons` counts the r-bit
    /// comparisons actually performed, `comparisons_saved_by_cache` the ones the
    /// result cache skipped (their sum is the cache-off Table 2 count), and
    /// `cache_served_replies` the replies produced without any scan.
    fn record_execution(&mut self, stats: &SearchStats, effect: &CacheEffect) {
        self.counters.binary_comparisons += stats.comparisons - effect.saved_comparisons;
        self.counters.comparisons_saved_by_cache += effect.saved_comparisons;
        if effect.fully_cached() {
            self.counters.cache_served_replies += 1;
        }
    }

    /// Handle a query (§4.3 + Algorithm 1): ranked search over every stored index, returning
    /// matching document ids, ranks and their index metadata. With the result cache
    /// enabled, a repeated query index skips the shard scans entirely; the reply's
    /// [`CacheReport`] says what happened.
    pub fn handle_query(&mut self, message: &QueryMessage) -> SearchReply {
        let query = QueryIndex::from_bits(message.query.clone());
        let (matches, stats, effect) = self.engine.search_ranked_with_effect(&query);
        self.record_execution(&stats, &effect);
        let mut reply = self.reply_entries(matches, message.top);
        reply.cache = CacheReport::from(effect);
        reply
    }

    /// Handle a batched query: every query of the batch is evaluated in a single
    /// pass over each shard (with the cache enabled, each shard scans exactly the
    /// queries that missed it), and the reply carries one [`SearchReply`] per query
    /// in request order. Logical comparison counts accumulate exactly as if the
    /// queries had been sent individually.
    pub fn handle_batch_query(&mut self, message: &BatchQueryMessage) -> BatchSearchReply {
        let queries: Vec<QueryIndex> = message
            .queries
            .iter()
            .map(|bits| QueryIndex::from_bits(bits.clone()))
            .collect();
        let results = self.engine.search_batch_with_effects(&queries);
        let replies = results
            .into_iter()
            .map(|(matches, stats, effect)| {
                self.record_execution(&stats, &effect);
                let mut reply = self.reply_entries(matches, message.top);
                reply.cache = CacheReport::from(effect);
                reply
            })
            .collect();
        BatchSearchReply { replies }
    }

    /// Handle a document-retrieval request: return the ciphertexts and RSA-encrypted keys of
    /// the requested documents.
    pub fn handle_document_request(
        &mut self,
        request: &DocumentRequest,
    ) -> Result<DocumentReply, ProtocolError> {
        let mut documents = Vec::with_capacity(request.document_ids.len());
        for &id in &request.document_ids {
            let doc = self
                .documents
                .get(&id)
                .ok_or(ProtocolError::UnknownDocument(id))?;
            documents.push(doc.clone());
        }
        Ok(DocumentReply { documents })
    }

    /// Operation counters accumulated so far (binary comparisons only — the server does no
    /// cryptography, which is the point of the scheme).
    pub fn counters(&self) -> &OperationCounters {
        &self.counters
    }

    /// Reset the counters.
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    /// The public parameters this server runs with.
    pub fn params(&self) -> &SystemParams {
        self.engine.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_owner::{DataOwner, OwnerConfig};
    use mkse_core::query::QueryBuilder;
    use mkse_textproc::document::Document;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn populated_server() -> (DataOwner, CloudServer, StdRng) {
        let mut rng = StdRng::seed_from_u64(17);
        let mut owner = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
        let docs = vec![
            Document::from_text(0, "cloud privacy search encryption"),
            Document::from_text(1, "weather forecast rain"),
            Document::from_text(2, "cloud storage pricing"),
        ];
        let (indices, encrypted) = owner.prepare_documents(&docs, &mut rng);
        let mut server = CloudServer::new(owner.params().clone());
        server.upload(indices, encrypted).unwrap();
        (owner, server, rng)
    }

    fn query_for(owner: &DataOwner, keywords: &[&str], rng: &mut StdRng) -> QueryMessage {
        let trapdoors = owner.scheme_keys().trapdoors_for(owner.params(), keywords);
        let pool = owner.random_pool_trapdoors();
        let q = QueryBuilder::new(owner.params())
            .add_trapdoors(&trapdoors)
            .with_randomization(&pool)
            .build(rng);
        QueryMessage {
            query: q.bits().clone(),
            top: None,
        }
    }

    #[test]
    fn query_returns_matching_documents_with_metadata() {
        let (owner, mut server, mut rng) = populated_server();
        assert_eq!(server.num_documents(), 3);
        // "cloud" is stemmed to "cloud"; documents 0 and 2 contain it.
        let reply = server.handle_query(&query_for(&owner, &["cloud"], &mut rng));
        let ids: Vec<u64> = reply.matches.iter().map(|m| m.document_id).collect();
        assert!(ids.contains(&0));
        assert!(ids.contains(&2));
        assert!(!ids.contains(&1));
        for m in &reply.matches {
            assert_eq!(m.metadata.len(), owner.params().rank_levels());
            assert!(m.rank >= 1);
        }
        assert!(server.counters().binary_comparisons >= 3);
    }

    #[test]
    fn top_limit_truncates_results() {
        let (owner, mut server, mut rng) = populated_server();
        let mut msg = query_for(&owner, &["cloud"], &mut rng);
        msg.top = Some(1);
        let reply = server.handle_query(&msg);
        assert_eq!(reply.matches.len(), 1);
    }

    #[test]
    fn document_request_returns_ciphertexts() {
        let (_, mut server, _) = populated_server();
        let reply = server
            .handle_document_request(&DocumentRequest {
                document_ids: vec![0, 2],
            })
            .unwrap();
        assert_eq!(reply.documents.len(), 2);
        assert_eq!(reply.documents[0].document_id, 0);
        assert!(!reply.documents[0].ciphertext.is_empty());
    }

    #[test]
    fn unknown_document_is_an_error() {
        let (_, mut server, _) = populated_server();
        assert_eq!(
            server.handle_document_request(&DocumentRequest {
                document_ids: vec![99]
            }),
            Err(ProtocolError::UnknownDocument(99))
        );
    }

    #[test]
    fn batched_queries_match_individual_queries() {
        let (owner, mut server, mut rng) = populated_server();
        let q1 = query_for(&owner, &["cloud"], &mut rng);
        let q2 = query_for(&owner, &["weather"], &mut rng);
        let individual = vec![server.handle_query(&q1), server.handle_query(&q2)];
        let singles_comparisons = server.counters().binary_comparisons;
        server.reset_counters();

        let batch = BatchQueryMessage {
            queries: vec![q1.query.clone(), q2.query.clone()],
            top: None,
        };
        let batched = server.handle_batch_query(&batch);
        assert_eq!(batched.replies, individual);
        // Comparison accounting is identical to sending the queries one by one.
        assert_eq!(server.counters().binary_comparisons, singles_comparisons);
    }

    #[test]
    fn shard_count_does_not_change_results() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut owner = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
        let docs: Vec<Document> = (0..9u64)
            .map(|id| Document::from_text(id, "cloud storage privacy search"))
            .collect();
        let (indices, encrypted) = owner.prepare_documents(&docs, &mut rng);
        let mut sequential = CloudServer::with_shards(owner.params().clone(), 1);
        sequential
            .upload(indices.clone(), encrypted.clone())
            .unwrap();
        let mut sharded = CloudServer::with_shards(owner.params().clone(), 4);
        sharded.upload(indices, encrypted).unwrap();
        assert_eq!(sequential.num_shards(), 1);
        assert_eq!(sharded.num_shards(), 4);

        let msg = query_for(&owner, &["privacy"], &mut rng);
        assert_eq!(sequential.handle_query(&msg), sharded.handle_query(&msg));
    }

    #[test]
    fn duplicate_upload_is_rejected() {
        let (_, mut server, mut rng) = populated_server();
        let mut owner2 = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
        let docs = vec![Document::from_text(0, "colliding document id")];
        let (indices, encrypted) = owner2.prepare_documents(&docs, &mut rng);
        assert!(matches!(
            server.upload(indices, encrypted),
            Err(ProtocolError::Store(_))
        ));
        assert_eq!(server.num_documents(), 3);
    }

    #[test]
    fn cached_replies_are_identical_and_accounted() {
        let (owner, mut server, mut rng) = populated_server();
        server.enable_result_cache(64);
        assert!(server.result_cache_enabled());
        let msg = query_for(&owner, &["cloud"], &mut rng);

        let first = server.handle_query(&msg);
        assert!(!first.cache.served_from_cache, "cold cache must scan");
        assert_eq!(first.cache.shard_hits, 0);
        let scanned = server.counters().binary_comparisons;
        assert!(scanned > 0);
        assert_eq!(server.counters().comparisons_saved_by_cache, 0);

        let second = server.handle_query(&msg);
        // Identical reply bytes; only the cache diagnostics differ.
        assert_eq!(second.matches, first.matches);
        assert!(second.cache.served_from_cache);
        assert_eq!(second.cache.saved_comparisons, scanned);
        // Work accounting: no new comparisons performed, all saved.
        assert_eq!(server.counters().binary_comparisons, scanned);
        assert_eq!(server.counters().comparisons_saved_by_cache, scanned);
        assert_eq!(server.counters().cache_served_replies, 1);
        let stats = server.cache_stats().unwrap();
        assert_eq!(stats.hits, server.num_shards() as u64);

        // An upload invalidates; the next query rescans and still matches.
        server.disable_result_cache();
        assert!(server.cache_stats().is_none());
        let uncached = server.handle_query(&msg);
        assert_eq!(uncached.matches, first.matches);
        assert_eq!(uncached.cache, CacheReport::default());
    }

    #[test]
    fn batch_queries_hit_the_cache_with_identical_replies() {
        let (owner, mut server, mut rng) = populated_server();
        let q1 = query_for(&owner, &["cloud"], &mut rng);
        let q2 = query_for(&owner, &["weather"], &mut rng);
        let batch = BatchQueryMessage {
            queries: vec![q1.query.clone(), q2.query.clone()],
            top: None,
        };
        let uncached = server.handle_batch_query(&batch);
        server.reset_counters();
        server.enable_result_cache(64);

        let cold = server.handle_batch_query(&batch);
        let logical = server.counters().binary_comparisons;
        let warm = server.handle_batch_query(&batch);
        for ((u, c), w) in uncached
            .replies
            .iter()
            .zip(cold.replies.iter())
            .zip(warm.replies.iter())
        {
            assert_eq!(u.matches, c.matches);
            assert_eq!(u.matches, w.matches);
            assert!(w.cache.served_from_cache);
        }
        assert_eq!(server.counters().binary_comparisons, logical);
        assert_eq!(server.counters().comparisons_saved_by_cache, logical);
        assert_eq!(server.counters().cache_served_replies, 2);
    }

    #[test]
    fn upload_invalidates_and_restore_starts_cold() {
        let (owner, mut server, mut rng) = populated_server();
        server.enable_result_cache(64);
        let msg = query_for(&owner, &["cloud"], &mut rng);
        let _ = server.handle_query(&msg);
        assert!(server.handle_query(&msg).cache.served_from_cache);

        // New upload: at least the written shards rescan, and results include
        // nothing stale.
        let mut owner2 = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
        let docs = vec![Document::from_text(77, "unrelated content entirely")];
        let (indices, encrypted) = owner2.prepare_documents(&docs, &mut rng);
        server.upload(indices, encrypted).unwrap();
        let after_upload = server.handle_query(&msg);
        assert!(!after_upload.cache.served_from_cache);

        // Snapshot → restore into a fresh cached server: identical matches, cold cache.
        let bytes = server.snapshot_index();
        let mut restored = CloudServer::with_shards(owner.params().clone(), 2);
        restored.enable_result_cache(64);
        assert_eq!(restored.restore_index(&bytes).unwrap(), 4);
        let replayed = restored.handle_query(&msg);
        assert_eq!(replayed.matches, after_upload.matches);
        assert_eq!(replayed.cache.shard_hits, 0, "restored cache must be cold");
        assert!(matches!(
            restored.restore_index(&bytes[..3]),
            Err(ProtocolError::Persistence(_))
        ));
    }

    #[test]
    fn server_counters_reset() {
        let (owner, mut server, mut rng) = populated_server();
        let _ = server.handle_query(&query_for(&owner, &["cloud"], &mut rng));
        assert!(server.counters().binary_comparisons > 0);
        server.reset_counters();
        assert_eq!(server.counters().binary_comparisons, 0);
    }
}
