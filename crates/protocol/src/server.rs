//! The cloud server (§3): stores encrypted documents plus searchable indices and answers
//! queries with pure bit comparisons.

use crate::counters::OperationCounters;
use crate::messages::{
    DocumentReply, DocumentRequest, EncryptedDocumentTransfer, QueryMessage, SearchReply,
    SearchResultEntry,
};
use crate::ProtocolError;
use mkse_core::document_index::RankedDocumentIndex;
use mkse_core::params::SystemParams;
use mkse_core::query::QueryIndex;
use mkse_core::search::CloudIndex;
use std::collections::BTreeMap;

/// The cloud-server actor.
pub struct CloudServer {
    index: CloudIndex,
    documents: BTreeMap<u64, EncryptedDocumentTransfer>,
    counters: OperationCounters,
}

impl CloudServer {
    /// Create an empty server for the given public parameters.
    pub fn new(params: SystemParams) -> Self {
        CloudServer {
            index: CloudIndex::new(params),
            documents: BTreeMap::new(),
            counters: OperationCounters::new(),
        }
    }

    /// Accept the data owner's upload: searchable indices and encrypted documents.
    pub fn upload(
        &mut self,
        indices: Vec<RankedDocumentIndex>,
        documents: Vec<EncryptedDocumentTransfer>,
    ) {
        for idx in indices {
            self.index.insert(idx);
        }
        for doc in documents {
            self.documents.insert(doc.document_id, doc);
        }
    }

    /// Number of stored documents (σ).
    pub fn num_documents(&self) -> usize {
        self.index.len()
    }

    /// Handle a query (§4.3 + Algorithm 1): ranked search over every stored index, returning
    /// matching document ids, ranks and their index metadata.
    pub fn handle_query(&mut self, message: &QueryMessage) -> SearchReply {
        let query = QueryIndex::from_bits(message.query.clone());
        let (matches, stats) = self.index.search_ranked_with_stats(&query);
        self.counters.binary_comparisons += stats.comparisons;
        let limit = message.top.unwrap_or(matches.len());
        let entries = matches
            .into_iter()
            .take(limit)
            .map(|m| {
                let metadata = self
                    .index
                    .document_index(m.document_id)
                    .map(|idx| idx.levels.clone())
                    .unwrap_or_default();
                SearchResultEntry {
                    document_id: m.document_id,
                    rank: m.rank,
                    metadata,
                }
            })
            .collect();
        SearchReply { matches: entries }
    }

    /// Handle a document-retrieval request: return the ciphertexts and RSA-encrypted keys of
    /// the requested documents.
    pub fn handle_document_request(
        &mut self,
        request: &DocumentRequest,
    ) -> Result<DocumentReply, ProtocolError> {
        let mut documents = Vec::with_capacity(request.document_ids.len());
        for &id in &request.document_ids {
            let doc = self
                .documents
                .get(&id)
                .ok_or(ProtocolError::UnknownDocument(id))?;
            documents.push(doc.clone());
        }
        Ok(DocumentReply { documents })
    }

    /// Operation counters accumulated so far (binary comparisons only — the server does no
    /// cryptography, which is the point of the scheme).
    pub fn counters(&self) -> &OperationCounters {
        &self.counters
    }

    /// Reset the counters.
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    /// The public parameters this server runs with.
    pub fn params(&self) -> &SystemParams {
        self.index.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_owner::{DataOwner, OwnerConfig};
    use mkse_core::query::QueryBuilder;
    use mkse_textproc::document::Document;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn populated_server() -> (DataOwner, CloudServer, StdRng) {
        let mut rng = StdRng::seed_from_u64(17);
        let mut owner = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
        let docs = vec![
            Document::from_text(0, "cloud privacy search encryption"),
            Document::from_text(1, "weather forecast rain"),
            Document::from_text(2, "cloud storage pricing"),
        ];
        let (indices, encrypted) = owner.prepare_documents(&docs, &mut rng);
        let mut server = CloudServer::new(owner.params().clone());
        server.upload(indices, encrypted);
        (owner, server, rng)
    }

    fn query_for(owner: &DataOwner, keywords: &[&str], rng: &mut StdRng) -> QueryMessage {
        let trapdoors = owner.scheme_keys().trapdoors_for(owner.params(), keywords);
        let pool = owner.random_pool_trapdoors();
        let q = QueryBuilder::new(owner.params())
            .add_trapdoors(&trapdoors)
            .with_randomization(&pool)
            .build(rng);
        QueryMessage {
            query: q.bits().clone(),
            top: None,
        }
    }

    #[test]
    fn query_returns_matching_documents_with_metadata() {
        let (owner, mut server, mut rng) = populated_server();
        assert_eq!(server.num_documents(), 3);
        // "cloud" is stemmed to "cloud"; documents 0 and 2 contain it.
        let reply = server.handle_query(&query_for(&owner, &["cloud"], &mut rng));
        let ids: Vec<u64> = reply.matches.iter().map(|m| m.document_id).collect();
        assert!(ids.contains(&0));
        assert!(ids.contains(&2));
        assert!(!ids.contains(&1));
        for m in &reply.matches {
            assert_eq!(m.metadata.len(), owner.params().rank_levels());
            assert!(m.rank >= 1);
        }
        assert!(server.counters().binary_comparisons >= 3);
    }

    #[test]
    fn top_limit_truncates_results() {
        let (owner, mut server, mut rng) = populated_server();
        let mut msg = query_for(&owner, &["cloud"], &mut rng);
        msg.top = Some(1);
        let reply = server.handle_query(&msg);
        assert_eq!(reply.matches.len(), 1);
    }

    #[test]
    fn document_request_returns_ciphertexts() {
        let (_, mut server, _) = populated_server();
        let reply = server
            .handle_document_request(&DocumentRequest { document_ids: vec![0, 2] })
            .unwrap();
        assert_eq!(reply.documents.len(), 2);
        assert_eq!(reply.documents[0].document_id, 0);
        assert!(!reply.documents[0].ciphertext.is_empty());
    }

    #[test]
    fn unknown_document_is_an_error() {
        let (_, mut server, _) = populated_server();
        assert_eq!(
            server.handle_document_request(&DocumentRequest { document_ids: vec![99] }),
            Err(ProtocolError::UnknownDocument(99))
        );
    }

    #[test]
    fn server_counters_reset() {
        let (owner, mut server, mut rng) = populated_server();
        let _ = server.handle_query(&query_for(&owner, &["cloud"], &mut rng));
        assert!(server.counters().binary_comparisons > 0);
        server.reset_counters();
        assert_eq!(server.counters().binary_comparisons, 0);
    }
}
