//! The cloud server (§3): stores encrypted documents plus searchable indices and answers
//! queries with pure bit comparisons.
//!
//! The server runs on the layered read path of `mkse-core`: a [`ShardedStore`]
//! partitions the indices round-robin across shards, and a [`SearchEngine`] scans the
//! shards in parallel. Results are bit-for-bit identical to the paper's sequential
//! scan (deterministic rank-then-id order); only the wall-clock time changes.
//!
//! An optional **result cache** ([`mkse_core::cache`]) sits in front of the shard
//! scans: [`CloudServer::enable_result_cache`] turns it on with a per-shard
//! capacity, repeated query indices are then answered without scanning, and the
//! [`OperationCounters`] split the Table 2 comparison count into work actually
//! performed (`binary_comparisons`) and work the cache saved
//! (`comparisons_saved_by_cache`). Replies carry a [`crate::messages::CacheReport`]
//! so users (and the benches) can observe hit rates end to end.
//!
//! Since the envelope redesign the server has exactly **one** entry point:
//! [`Service::call`], which executes any [`Request`] variant it serves (query,
//! batch query, document retrieval, upload, cache admin, snapshot/restore,
//! counters, info) and answers owner-side operations with
//! [`ProtocolError::Unsupported`]. The public convenience methods — including
//! the deprecated `handle_*` family — are thin shims over `call`, so replies are
//! byte-identical no matter which surface a caller uses
//! (`tests/envelope_equivalence.rs` asserts this across shard counts and cache
//! configurations).

use crate::counters::OperationCounters;
use crate::envelope::{Request, Response, ServerInfo, Service};
use crate::messages::{
    BatchQueryMessage, BatchSearchReply, CacheReport, DocumentReply, DocumentRequest,
    EncryptedDocumentTransfer, QueryMessage, SearchReply, SearchResultEntry, UploadMessage,
};
use crate::ProtocolError;
use mkse_core::cache::{CacheConfig, CacheEffect, CacheStats};
use mkse_core::document_index::RankedDocumentIndex;
use mkse_core::engine::SearchEngine;
use mkse_core::params::SystemParams;
use mkse_core::query::QueryIndex;
use mkse_core::search::{SearchMatch, SearchStats};
use mkse_core::storage::{IndexStore, ShardedStore};
use mkse_core::telemetry::{Counter, MetricsSnapshot, Stage, Telemetry, TelemetryLevel};
use std::collections::BTreeMap;

/// The cloud-server actor.
pub struct CloudServer {
    engine: SearchEngine<ShardedStore>,
    documents: BTreeMap<u64, EncryptedDocumentTransfer>,
    counters: OperationCounters,
    /// Registry value of [`Counter::RequestsServed`] at the last counter reset.
    /// `counters.requests_served` is a mirror of `registry − baseline`: the
    /// telemetry registry is the single source of the served-request count
    /// (Table 1 wire frames and Table 2 request totals read the same atoms),
    /// while the resettable Table 2 view subtracts this baseline.
    served_baseline: u64,
}

impl CloudServer {
    /// Create an empty server for the given public parameters, sharding the index
    /// across the host's available cores (capped at 8 — beyond that the per-query
    /// merge overhead outweighs extra scan threads for realistic store sizes).
    pub fn new(params: SystemParams) -> Self {
        let shards = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
        Self::with_shards(params, shards)
    }

    /// Create an empty server with an explicit shard count (e.g. 1 to reproduce the
    /// paper's sequential timings).
    pub fn with_shards(params: SystemParams, shards: usize) -> Self {
        CloudServer {
            engine: SearchEngine::sharded(params, shards),
            documents: BTreeMap::new(),
            counters: OperationCounters::new(),
            served_baseline: 0,
        }
    }

    /// Record one served request. The telemetry registry is the single source
    /// of truth ([`Telemetry::tally`] counts even at `Off`); the Table 2
    /// mirror is re-derived from it so `OperationCounters` and the registry
    /// can never drift apart.
    fn note_served(&mut self) {
        let telemetry = self.engine.telemetry();
        telemetry.tally(Counter::RequestsServed, 1);
        self.counters.requests_served =
            telemetry.counter(Counter::RequestsServed) - self.served_baseline;
    }

    /// Number of index shards this server scans in parallel.
    pub fn num_shards(&self) -> usize {
        self.engine.store().num_shards()
    }

    /// Enable the per-shard result cache with the given per-shard entry capacity.
    /// Off by default: turning it on never changes reply bytes (matches, ranks,
    /// order), only the work performed for repeated query indices — see the
    /// search-pattern note in [`mkse_core::cache`]. Shim over
    /// [`Request::EnableCache`].
    pub fn enable_result_cache(&mut self, capacity_per_shard: usize) {
        let _ = self.call(Request::EnableCache {
            capacity_per_shard: capacity_per_shard as u64,
        });
    }

    /// Disable the result cache, dropping every entry. Shim over
    /// [`Request::DisableCache`].
    pub fn disable_result_cache(&mut self) {
        let _ = self.call(Request::DisableCache);
    }

    /// True if the result cache is enabled.
    pub fn result_cache_enabled(&self) -> bool {
        self.engine.cache_enabled()
    }

    /// Cumulative cache effectiveness counters, or `None` when caching is off.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.engine.cache_stats()
    }

    /// Snapshot the searchable index into the versioned binary format of
    /// [`mkse_core::persistence`]. The result cache is never part of a snapshot.
    ///
    /// Semantically [`Request::SnapshotIndex`]; like [`CloudServer::restore_index`]
    /// the accounting (`requests_served`) matches the envelope path exactly, so
    /// counter parity holds no matter which surface a caller uses.
    pub fn snapshot_index(&mut self) -> Vec<u8> {
        self.note_served();
        self.engine.snapshot()
    }

    /// Restore an index snapshot, appending its documents. Every cache generation
    /// is bumped, so entries cached before the restore can never be served after.
    ///
    /// Semantically [`Request::RestoreIndex`], but executed on the borrowed
    /// slice: copying a whole-index snapshot into an owned envelope would
    /// double peak memory for a request that never crosses a wire here. The
    /// accounting (`requests_served`) matches the envelope path exactly.
    pub fn restore_index(&mut self, bytes: &[u8]) -> Result<usize, ProtocolError> {
        self.note_served();
        Ok(self.engine.restore_snapshot(bytes)?)
    }

    /// Accept the data owner's upload: searchable indices and encrypted documents.
    /// Shim over [`Request::Upload`].
    ///
    /// Rejects (without partial effect on the document bodies) uploads whose indices
    /// do not match the server's parameters or collide with stored document ids.
    pub fn upload(
        &mut self,
        indices: Vec<RankedDocumentIndex>,
        documents: Vec<EncryptedDocumentTransfer>,
    ) -> Result<(), ProtocolError> {
        match self.call(Request::Upload(UploadMessage { indices, documents })) {
            Response::Uploaded { .. } => Ok(()),
            Response::Error(e) => Err(e),
            other => unreachable!("Upload answered with {}", other.name()),
        }
    }

    fn exec_upload(&mut self, upload: UploadMessage) -> Result<u64, ProtocolError> {
        self.engine.insert_all(upload.indices)?;
        for doc in upload.documents {
            self.documents.insert(doc.document_id, doc);
        }
        Ok(self.engine.len() as u64)
    }

    /// Number of stored documents (σ).
    pub fn num_documents(&self) -> usize {
        self.engine.len()
    }

    fn reply_entries(&self, matches: Vec<SearchMatch>, top: Option<usize>) -> SearchReply {
        let limit = top.unwrap_or(matches.len());
        let entries = matches
            .into_iter()
            .take(limit)
            .map(|m| {
                let metadata = self
                    .engine
                    .document_index(m.document_id)
                    .map(|idx| idx.levels.clone())
                    .unwrap_or_default();
                SearchResultEntry {
                    document_id: m.document_id,
                    rank: m.rank,
                    metadata,
                }
            })
            .collect();
        SearchReply {
            matches: entries,
            cache: CacheReport::default(),
        }
    }

    /// Account one query execution: `binary_comparisons` counts the r-bit
    /// comparisons actually performed, `comparisons_saved_by_cache` the ones the
    /// result cache skipped (their sum is the cache-off Table 2 count), and
    /// `cache_served_replies` the replies produced without any scan.
    fn record_execution(&mut self, stats: &SearchStats, effect: &CacheEffect) {
        self.counters.binary_comparisons += stats.comparisons - effect.saved_comparisons;
        self.counters.comparisons_saved_by_cache += effect.saved_comparisons;
        if effect.fully_cached() {
            self.counters.cache_served_replies += 1;
        }
    }

    fn exec_query(&mut self, message: &QueryMessage) -> SearchReply {
        let query = QueryIndex::from_bits(message.query.clone());
        let (matches, stats, effect) = self.engine.search_ranked_with_effect(&query);
        self.record_execution(&stats, &effect);
        let mut reply = self.reply_entries(matches, message.top);
        reply.cache = CacheReport::from(effect);
        reply
    }

    fn exec_batch_query(&mut self, message: &BatchQueryMessage) -> BatchSearchReply {
        let queries: Vec<QueryIndex> = message
            .queries
            .iter()
            .map(|bits| QueryIndex::from_bits(bits.clone()))
            .collect();
        let results = self.engine.search_batch_with_effects(&queries);
        let replies = results
            .into_iter()
            .map(|(matches, stats, effect)| {
                self.record_execution(&stats, &effect);
                let mut reply = self.reply_entries(matches, message.top);
                reply.cache = CacheReport::from(effect);
                reply
            })
            .collect();
        BatchSearchReply { replies }
    }

    /// Execute a group of independent single-query envelopes — typically one
    /// [`Request::Query`] from each of several connections — as **one** fused
    /// scan-plane pass. This is the cross-client batcher's entry point
    /// (`mkse-net`): the engine's batch guarantees make every reply, its
    /// [`CacheReport`], and the [`OperationCounters`] deltas byte-identical to
    /// calling [`Service::call`] once per message in the same order, so the
    /// batcher stays invisible to every client. `requests_served` is bumped
    /// once per message (exactly as `call` would), and each reply honours its
    /// own message's `top` limit.
    pub fn call_query_group(&mut self, messages: &[QueryMessage]) -> Vec<Response> {
        let telemetry = self.engine.telemetry().clone();
        let _call_span = telemetry.span(Stage::ServiceCall);
        for _ in messages {
            self.note_served();
        }
        let queries: Vec<QueryIndex> = messages
            .iter()
            .map(|m| QueryIndex::from_bits(m.query.clone()))
            .collect();
        let results = self.engine.search_batch_with_effects(&queries);
        results
            .into_iter()
            .zip(messages)
            .map(|((matches, stats, effect), message)| {
                self.record_execution(&stats, &effect);
                let mut reply = self.reply_entries(matches, message.top);
                reply.cache = CacheReport::from(effect);
                Response::Search(reply)
            })
            .collect()
    }

    fn exec_document_request(
        &mut self,
        request: &DocumentRequest,
    ) -> Result<DocumentReply, ProtocolError> {
        let mut documents = Vec::with_capacity(request.document_ids.len());
        for &id in &request.document_ids {
            let doc = self
                .documents
                .get(&id)
                .ok_or(ProtocolError::UnknownDocument(id))?;
            documents.push(doc.clone());
        }
        Ok(DocumentReply { documents })
    }

    /// Handle a query (§4.3 + Algorithm 1): ranked search over every stored index, returning
    /// matching document ids, ranks and their index metadata. With the result cache
    /// enabled, a repeated query index skips the shard scans entirely; the reply's
    /// [`CacheReport`] says what happened.
    #[deprecated(note = "route queries through `Service::call` or a `crate::Client` \
                         (`Request::Query`); this shim forwards there unchanged")]
    pub fn handle_query(&mut self, message: &QueryMessage) -> SearchReply {
        match self.call(Request::Query(message.clone())) {
            Response::Search(reply) => reply,
            other => unreachable!("Query answered with {}", other.name()),
        }
    }

    /// Handle a batched query: every query of the batch is evaluated in a single
    /// **fused** pass over each shard — the shard's scan-plane arena is streamed
    /// once for the whole (cache-missed, intra-batch-deduplicated) query set, so a
    /// b-query round trip pays one sweep's memory traffic instead of b (with the
    /// cache enabled, each shard scans exactly the unique queries that missed it;
    /// repeated query indices inside one batch scan once and fan out, reported in
    /// each reply's [`CacheReport`] exactly as if the queries had been sent one at
    /// a time). The reply carries one [`SearchReply`] per query in request order,
    /// and logical comparison counts accumulate exactly as if the queries had been
    /// sent individually.
    #[deprecated(
        note = "route batched queries through `Service::call` or a `crate::Client` \
                         (`Request::BatchQuery`); this shim forwards there unchanged"
    )]
    pub fn handle_batch_query(&mut self, message: &BatchQueryMessage) -> BatchSearchReply {
        match self.call(Request::BatchQuery(message.clone())) {
            Response::BatchSearch(reply) => reply,
            other => unreachable!("BatchQuery answered with {}", other.name()),
        }
    }

    /// Handle a document-retrieval request: return the ciphertexts and RSA-encrypted keys of
    /// the requested documents.
    #[deprecated(note = "route retrieval through `Service::call` or a `crate::Client` \
                         (`Request::Documents`); this shim forwards there unchanged")]
    pub fn handle_document_request(
        &mut self,
        request: &DocumentRequest,
    ) -> Result<DocumentReply, ProtocolError> {
        match self.call(Request::Documents(request.clone())) {
            Response::Documents(reply) => Ok(reply),
            Response::Error(e) => Err(e),
            other => unreachable!("Documents answered with {}", other.name()),
        }
    }

    /// Operation counters accumulated so far (binary comparisons only — the server does no
    /// cryptography, which is the point of the scheme). `requests_served` is a
    /// mirror of the telemetry registry's [`Counter::RequestsServed`] minus the
    /// last reset's baseline — one source backs both views.
    pub fn counters(&self) -> &OperationCounters {
        &self.counters
    }

    /// Reset the counters. The registry itself stays monotonic (snapshots never
    /// regress); the Table 2 view rebases on its current value instead.
    pub fn reset_counters(&mut self) {
        self.counters.reset();
        self.served_baseline = self.engine.telemetry().counter(Counter::RequestsServed);
    }

    /// Current telemetry recording level ([`TelemetryLevel::Off`] by default).
    pub fn telemetry_level(&self) -> TelemetryLevel {
        self.engine.telemetry_level()
    }

    /// Change the telemetry recording level at runtime. `&self`: the knob is a
    /// relaxed atomic on the shared registry.
    pub fn set_telemetry_level(&self, level: TelemetryLevel) {
        self.engine.set_telemetry_level(level);
    }

    /// Point-in-time copy of the telemetry registry (what
    /// [`Request::MetricsSnapshot`] answers). Read-only: taking a snapshot
    /// changes nothing the search path can observe.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.engine.metrics_snapshot()
    }

    /// The public parameters this server runs with.
    pub fn params(&self) -> &SystemParams {
        self.engine.params()
    }
}

impl Service for CloudServer {
    /// The server's single entry point: every operation it serves, behind one
    /// seam. Owner-side operations (trapdoor issuance, blinded decryption) are
    /// answered with [`ProtocolError::Unsupported`] — the request vocabulary is
    /// shared across parties, the serving duties are not.
    ///
    /// `requests_served` is bumped for every call, *before* execution, so a
    /// [`Request::Counters`] reply includes the request that fetched it. The
    /// count is tallied into the telemetry registry and mirrored back into
    /// [`OperationCounters`] — one registry-backed source for both.
    fn call(&mut self, request: Request) -> Response {
        let telemetry = self.engine.telemetry().clone();
        let _call_span = telemetry.span(Stage::ServiceCall);
        self.note_served();
        match request {
            Request::Query(message) => Response::Search(self.exec_query(&message)),
            Request::BatchQuery(message) => Response::BatchSearch(self.exec_batch_query(&message)),
            Request::Documents(request) => match self.exec_document_request(&request) {
                Ok(reply) => Response::Documents(reply),
                Err(e) => Response::Error(e),
            },
            Request::Upload(upload) => match self.exec_upload(upload) {
                Ok(documents) => Response::Uploaded { documents },
                Err(e) => Response::Error(e),
            },
            Request::EnableCache { capacity_per_shard } => {
                self.engine.enable_cache(CacheConfig {
                    capacity_per_shard: capacity_per_shard as usize,
                });
                Response::Ack
            }
            Request::DisableCache => {
                self.engine.disable_cache();
                Response::Ack
            }
            Request::CacheStats => Response::CacheStats(self.engine.cache_stats()),
            Request::SnapshotIndex => Response::Snapshot(self.engine.snapshot()),
            Request::RestoreIndex(bytes) => match self.engine.restore_snapshot(&bytes) {
                Ok(count) => Response::Restored {
                    documents: count as u64,
                },
                Err(e) => Response::Error(e.into()),
            },
            Request::Counters => Response::Counters(self.counters),
            Request::ResetCounters => {
                self.reset_counters();
                Response::Ack
            }
            Request::MetricsSnapshot => Response::MetricsReport(self.metrics_snapshot()),
            Request::ServerInfo => Response::Info(ServerInfo {
                shards: self.num_shards() as u64,
                documents: self.engine.len() as u64,
                index_bits: self.engine.params().index_bits as u64,
                rank_levels: self.engine.params().rank_levels() as u64,
                cache_enabled: self.engine.cache_enabled(),
            }),
            Request::Trapdoor(_) | Request::BlindDecrypt(_) => {
                Response::Error(ProtocolError::Unsupported(format!(
                    "{} is served by the data owner, not the cloud server",
                    request.name()
                )))
            }
            Request::RegisterNode(_) | Request::NodeHeartbeat(_) => {
                Response::Error(ProtocolError::Unsupported(format!(
                    "{} is served by the fleet coordinator, not the cloud server",
                    request.name()
                )))
            }
        }
    }

    /// The engine's registry: transports record framed wire traffic and
    /// encode/decode durations here, so one [`Request::MetricsSnapshot`]
    /// covers engine, scheduler, cache and wire together.
    fn telemetry(&self) -> Option<&Telemetry> {
        Some(self.engine.telemetry())
    }
}

#[cfg(test)]
// The legacy `handle_*` shims are exercised on purpose: they must stay
// byte-identical to `Service::call` until removal.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::data_owner::{DataOwner, OwnerConfig};
    use mkse_core::query::QueryBuilder;
    use mkse_textproc::document::Document;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn populated_server() -> (DataOwner, CloudServer, StdRng) {
        let mut rng = StdRng::seed_from_u64(17);
        let mut owner = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
        let docs = vec![
            Document::from_text(0, "cloud privacy search encryption"),
            Document::from_text(1, "weather forecast rain"),
            Document::from_text(2, "cloud storage pricing"),
        ];
        let (indices, encrypted) = owner.prepare_documents(&docs, &mut rng);
        let mut server = CloudServer::new(owner.params().clone());
        server.upload(indices, encrypted).unwrap();
        (owner, server, rng)
    }

    fn query_for(owner: &DataOwner, keywords: &[&str], rng: &mut StdRng) -> QueryMessage {
        let trapdoors = owner.scheme_keys().trapdoors_for(owner.params(), keywords);
        let pool = owner.random_pool_trapdoors();
        let q = QueryBuilder::new(owner.params())
            .add_trapdoors(&trapdoors)
            .with_randomization(&pool)
            .build(rng);
        QueryMessage {
            query: q.bits().clone(),
            top: None,
        }
    }

    #[test]
    fn query_returns_matching_documents_with_metadata() {
        let (owner, mut server, mut rng) = populated_server();
        assert_eq!(server.num_documents(), 3);
        // "cloud" is stemmed to "cloud"; documents 0 and 2 contain it.
        let reply = server.handle_query(&query_for(&owner, &["cloud"], &mut rng));
        let ids: Vec<u64> = reply.matches.iter().map(|m| m.document_id).collect();
        assert!(ids.contains(&0));
        assert!(ids.contains(&2));
        assert!(!ids.contains(&1));
        for m in &reply.matches {
            assert_eq!(m.metadata.len(), owner.params().rank_levels());
            assert!(m.rank >= 1);
        }
        assert!(server.counters().binary_comparisons >= 3);
    }

    #[test]
    fn top_limit_truncates_results() {
        let (owner, mut server, mut rng) = populated_server();
        let mut msg = query_for(&owner, &["cloud"], &mut rng);
        msg.top = Some(1);
        let reply = server.handle_query(&msg);
        assert_eq!(reply.matches.len(), 1);
    }

    #[test]
    fn document_request_returns_ciphertexts() {
        let (_, mut server, _) = populated_server();
        let reply = server
            .handle_document_request(&DocumentRequest {
                document_ids: vec![0, 2],
            })
            .unwrap();
        assert_eq!(reply.documents.len(), 2);
        assert_eq!(reply.documents[0].document_id, 0);
        assert!(!reply.documents[0].ciphertext.is_empty());
    }

    #[test]
    fn unknown_document_is_an_error() {
        let (_, mut server, _) = populated_server();
        assert_eq!(
            server.handle_document_request(&DocumentRequest {
                document_ids: vec![99]
            }),
            Err(ProtocolError::UnknownDocument(99))
        );
    }

    #[test]
    fn batched_queries_match_individual_queries() {
        let (owner, mut server, mut rng) = populated_server();
        let q1 = query_for(&owner, &["cloud"], &mut rng);
        let q2 = query_for(&owner, &["weather"], &mut rng);
        let individual = vec![server.handle_query(&q1), server.handle_query(&q2)];
        let singles_comparisons = server.counters().binary_comparisons;
        server.reset_counters();

        let batch = BatchQueryMessage {
            queries: vec![q1.query.clone(), q2.query.clone()],
            top: None,
        };
        let batched = server.handle_batch_query(&batch);
        assert_eq!(batched.replies, individual);
        // Comparison accounting is identical to sending the queries one by one.
        assert_eq!(server.counters().binary_comparisons, singles_comparisons);
    }

    #[test]
    fn shard_count_does_not_change_results() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut owner = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
        let docs: Vec<Document> = (0..9u64)
            .map(|id| Document::from_text(id, "cloud storage privacy search"))
            .collect();
        let (indices, encrypted) = owner.prepare_documents(&docs, &mut rng);
        let mut sequential = CloudServer::with_shards(owner.params().clone(), 1);
        sequential
            .upload(indices.clone(), encrypted.clone())
            .unwrap();
        let mut sharded = CloudServer::with_shards(owner.params().clone(), 4);
        sharded.upload(indices, encrypted).unwrap();
        assert_eq!(sequential.num_shards(), 1);
        assert_eq!(sharded.num_shards(), 4);

        let msg = query_for(&owner, &["privacy"], &mut rng);
        assert_eq!(sequential.handle_query(&msg), sharded.handle_query(&msg));
    }

    #[test]
    fn duplicate_upload_is_rejected() {
        let (_, mut server, mut rng) = populated_server();
        let mut owner2 = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
        let docs = vec![Document::from_text(0, "colliding document id")];
        let (indices, encrypted) = owner2.prepare_documents(&docs, &mut rng);
        assert!(matches!(
            server.upload(indices, encrypted),
            Err(ProtocolError::Store(_))
        ));
        assert_eq!(server.num_documents(), 3);
    }

    #[test]
    fn cached_replies_are_identical_and_accounted() {
        let (owner, mut server, mut rng) = populated_server();
        server.enable_result_cache(64);
        assert!(server.result_cache_enabled());
        let msg = query_for(&owner, &["cloud"], &mut rng);

        let first = server.handle_query(&msg);
        assert!(!first.cache.served_from_cache, "cold cache must scan");
        assert_eq!(first.cache.shard_hits, 0);
        let scanned = server.counters().binary_comparisons;
        assert!(scanned > 0);
        assert_eq!(server.counters().comparisons_saved_by_cache, 0);

        let second = server.handle_query(&msg);
        // Identical reply bytes; only the cache diagnostics differ.
        assert_eq!(second.matches, first.matches);
        assert!(second.cache.served_from_cache);
        assert_eq!(second.cache.saved_comparisons, scanned);
        // Work accounting: no new comparisons performed, all saved.
        assert_eq!(server.counters().binary_comparisons, scanned);
        assert_eq!(server.counters().comparisons_saved_by_cache, scanned);
        assert_eq!(server.counters().cache_served_replies, 1);
        let stats = server.cache_stats().unwrap();
        assert_eq!(stats.hits, server.num_shards() as u64);

        // An upload invalidates; the next query rescans and still matches.
        server.disable_result_cache();
        assert!(server.cache_stats().is_none());
        let uncached = server.handle_query(&msg);
        assert_eq!(uncached.matches, first.matches);
        assert_eq!(uncached.cache, CacheReport::default());
    }

    #[test]
    fn batch_queries_hit_the_cache_with_identical_replies() {
        let (owner, mut server, mut rng) = populated_server();
        let q1 = query_for(&owner, &["cloud"], &mut rng);
        let q2 = query_for(&owner, &["weather"], &mut rng);
        let batch = BatchQueryMessage {
            queries: vec![q1.query.clone(), q2.query.clone()],
            top: None,
        };
        let uncached = server.handle_batch_query(&batch);
        server.reset_counters();
        server.enable_result_cache(64);

        let cold = server.handle_batch_query(&batch);
        let logical = server.counters().binary_comparisons;
        let warm = server.handle_batch_query(&batch);
        for ((u, c), w) in uncached
            .replies
            .iter()
            .zip(cold.replies.iter())
            .zip(warm.replies.iter())
        {
            assert_eq!(u.matches, c.matches);
            assert_eq!(u.matches, w.matches);
            assert!(w.cache.served_from_cache);
        }
        assert_eq!(server.counters().binary_comparisons, logical);
        assert_eq!(server.counters().comparisons_saved_by_cache, logical);
        assert_eq!(server.counters().cache_served_replies, 2);
    }

    #[test]
    fn duplicate_queries_in_one_batch_dedup_and_account_like_sequential() {
        let (owner, mut server, mut rng) = populated_server();
        let q1 = query_for(&owner, &["cloud"], &mut rng);
        let q2 = query_for(&owner, &["weather"], &mut rng);
        // The batch repeats q1: a Zipf-style hot-keyword round trip.
        let batch = BatchQueryMessage {
            queries: vec![q1.query.clone(), q2.query.clone(), q1.query.clone()],
            top: None,
        };

        // Reference: the same three queries issued one at a time on an
        // identically configured server.
        let mut sequential = CloudServer::with_shards(owner.params().clone(), server.num_shards());
        let snapshot = server.snapshot_index();
        sequential.restore_index(&snapshot).unwrap();
        sequential.enable_result_cache(64);
        sequential.reset_counters();
        let individual = vec![
            sequential.handle_query(&q1),
            sequential.handle_query(&q2),
            sequential.handle_query(&q1),
        ];
        let sequential_counters = *sequential.counters();

        server.enable_result_cache(64);
        server.reset_counters();
        let batched = server.handle_batch_query(&batch);
        // Byte-identical replies, including each reply's CacheReport: the
        // duplicate is served as the cache hit sequential execution produces.
        assert_eq!(batched.replies, individual);
        assert!(batched.replies[2].cache.served_from_cache);
        assert!(batched.replies[2].cache.saved_comparisons > 0);
        // And the work accounting matches: the duplicate's comparisons are
        // counted as saved, not performed.
        let counters = server.counters();
        assert_eq!(
            counters.binary_comparisons,
            sequential_counters.binary_comparisons
        );
        assert_eq!(
            counters.comparisons_saved_by_cache,
            sequential_counters.comparisons_saved_by_cache
        );
        assert_eq!(counters.cache_served_replies, 1);
    }

    #[test]
    fn query_group_is_indistinguishable_from_sequential_calls() {
        let (owner, mut server, mut rng) = populated_server();
        let q1 = query_for(&owner, &["cloud"], &mut rng);
        let mut q2 = query_for(&owner, &["weather"], &mut rng);
        q2.top = Some(1);
        // The group repeats q1 — as if two clients share a hot keyword — and
        // carries a per-message `top` limit that must be honoured per reply.
        let group = vec![q1.clone(), q2.clone(), q1.clone()];

        // Reference: the same messages issued one `Service::call` at a time on
        // an identically configured twin.
        let mut sequential = CloudServer::with_shards(owner.params().clone(), server.num_shards());
        let snapshot = server.snapshot_index();
        sequential.restore_index(&snapshot).unwrap();
        sequential.enable_result_cache(64);
        sequential.reset_counters();
        let individual: Vec<Response> = group
            .iter()
            .map(|m| sequential.call(Request::Query(m.clone())))
            .collect();
        let sequential_counters = *sequential.counters();
        let sequential_cache = sequential.cache_stats();

        server.enable_result_cache(64);
        server.reset_counters();
        let grouped = server.call_query_group(&group);
        assert_eq!(grouped, individual);
        assert_eq!(*server.counters(), sequential_counters);
        assert_eq!(server.cache_stats(), sequential_cache);
        // And again warm: the group is served from cache exactly as the
        // sequential twin is.
        let warm_individual: Vec<Response> = group
            .iter()
            .map(|m| sequential.call(Request::Query(m.clone())))
            .collect();
        let warm_grouped = server.call_query_group(&group);
        assert_eq!(warm_grouped, warm_individual);
        assert_eq!(server.counters(), sequential.counters());
        assert_eq!(server.cache_stats(), sequential.cache_stats());
        // An empty group is a no-op that serves no requests.
        let served = server.counters().requests_served;
        assert!(server.call_query_group(&[]).is_empty());
        assert_eq!(server.counters().requests_served, served);
    }

    #[test]
    fn upload_invalidates_and_restore_starts_cold() {
        let (owner, mut server, mut rng) = populated_server();
        server.enable_result_cache(64);
        let msg = query_for(&owner, &["cloud"], &mut rng);
        let _ = server.handle_query(&msg);
        assert!(server.handle_query(&msg).cache.served_from_cache);

        // New upload: at least the written shards rescan, and results include
        // nothing stale.
        let mut owner2 = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
        let docs = vec![Document::from_text(77, "unrelated content entirely")];
        let (indices, encrypted) = owner2.prepare_documents(&docs, &mut rng);
        server.upload(indices, encrypted).unwrap();
        let after_upload = server.handle_query(&msg);
        assert!(!after_upload.cache.served_from_cache);

        // Snapshot → restore into a fresh cached server: identical matches, cold cache.
        let bytes = server.snapshot_index();
        let mut restored = CloudServer::with_shards(owner.params().clone(), 2);
        restored.enable_result_cache(64);
        assert_eq!(restored.restore_index(&bytes).unwrap(), 4);
        let replayed = restored.handle_query(&msg);
        assert_eq!(replayed.matches, after_upload.matches);
        assert_eq!(replayed.cache.shard_hits, 0, "restored cache must be cold");
        assert!(matches!(
            restored.restore_index(&bytes[..3]),
            Err(ProtocolError::Persistence(_))
        ));
    }

    #[test]
    fn metrics_snapshot_is_served_and_requests_served_reads_the_registry() {
        let (owner, mut server, mut rng) = populated_server();
        server.set_telemetry_level(TelemetryLevel::Counters);
        let _ = server.handle_query(&query_for(&owner, &["cloud"], &mut rng));
        let report = match server.call(Request::MetricsSnapshot) {
            Response::MetricsReport(snapshot) => snapshot,
            other => unreachable!("MetricsSnapshot answered with {}", other.name()),
        };
        assert_eq!(report.level, TelemetryLevel::Counters);
        assert!(report.counter("queries") >= 1);
        assert!(report.counter("shard_scans") >= server.num_shards() as u64);
        // One registry-backed source: the Table 2 mirror equals the registry.
        assert_eq!(
            report.counter("requests_served"),
            server.counters().requests_served
        );
        // Reset rebases the Table 2 view; the registry itself stays monotonic.
        server.reset_counters();
        assert_eq!(server.counters().requests_served, 0);
        let after = server.metrics_snapshot();
        assert!(after.counter("requests_served") >= report.counter("requests_served"));
        // Served-request accounting exists independently of the observability
        // plane: it keeps counting even at Off.
        server.set_telemetry_level(TelemetryLevel::Off);
        let _ = server.call(Request::ServerInfo);
        assert_eq!(server.counters().requests_served, 1);
    }

    #[test]
    fn server_counters_reset() {
        let (owner, mut server, mut rng) = populated_server();
        let _ = server.handle_query(&query_for(&owner, &["cloud"], &mut rng));
        assert!(server.counters().binary_comparisons > 0);
        server.reset_counters();
        assert_eq!(server.counters().binary_comparisons, 0);
    }
}
