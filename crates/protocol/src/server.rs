//! The cloud server (§3): stores encrypted documents plus searchable indices and answers
//! queries with pure bit comparisons.
//!
//! The server runs on the layered read path of `mkse-core`: a [`ShardedStore`]
//! partitions the indices round-robin across shards, and a [`SearchEngine`] scans the
//! shards in parallel. Results are bit-for-bit identical to the paper's sequential
//! scan (deterministic rank-then-id order); only the wall-clock time changes.

use crate::counters::OperationCounters;
use crate::messages::{
    BatchQueryMessage, BatchSearchReply, DocumentReply, DocumentRequest, EncryptedDocumentTransfer,
    QueryMessage, SearchReply, SearchResultEntry,
};
use crate::ProtocolError;
use mkse_core::document_index::RankedDocumentIndex;
use mkse_core::engine::SearchEngine;
use mkse_core::params::SystemParams;
use mkse_core::query::QueryIndex;
use mkse_core::search::SearchMatch;
use mkse_core::storage::{IndexStore, ShardedStore};
use std::collections::BTreeMap;

/// The cloud-server actor.
pub struct CloudServer {
    engine: SearchEngine<ShardedStore>,
    documents: BTreeMap<u64, EncryptedDocumentTransfer>,
    counters: OperationCounters,
}

impl CloudServer {
    /// Create an empty server for the given public parameters, sharding the index
    /// across the host's available cores (capped at 8 — beyond that the per-query
    /// merge overhead outweighs extra scan threads for realistic store sizes).
    pub fn new(params: SystemParams) -> Self {
        let shards = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
        Self::with_shards(params, shards)
    }

    /// Create an empty server with an explicit shard count (e.g. 1 to reproduce the
    /// paper's sequential timings).
    pub fn with_shards(params: SystemParams, shards: usize) -> Self {
        CloudServer {
            engine: SearchEngine::sharded(params, shards),
            documents: BTreeMap::new(),
            counters: OperationCounters::new(),
        }
    }

    /// Number of index shards this server scans in parallel.
    pub fn num_shards(&self) -> usize {
        self.engine.store().num_shards()
    }

    /// Accept the data owner's upload: searchable indices and encrypted documents.
    ///
    /// Rejects (without partial effect on the document bodies) uploads whose indices
    /// do not match the server's parameters or collide with stored document ids.
    pub fn upload(
        &mut self,
        indices: Vec<RankedDocumentIndex>,
        documents: Vec<EncryptedDocumentTransfer>,
    ) -> Result<(), ProtocolError> {
        self.engine.insert_all(indices)?;
        for doc in documents {
            self.documents.insert(doc.document_id, doc);
        }
        Ok(())
    }

    /// Number of stored documents (σ).
    pub fn num_documents(&self) -> usize {
        self.engine.len()
    }

    fn reply_entries(&self, matches: Vec<SearchMatch>, top: Option<usize>) -> SearchReply {
        let limit = top.unwrap_or(matches.len());
        let entries = matches
            .into_iter()
            .take(limit)
            .map(|m| {
                let metadata = self
                    .engine
                    .document_index(m.document_id)
                    .map(|idx| idx.levels.clone())
                    .unwrap_or_default();
                SearchResultEntry {
                    document_id: m.document_id,
                    rank: m.rank,
                    metadata,
                }
            })
            .collect();
        SearchReply { matches: entries }
    }

    /// Handle a query (§4.3 + Algorithm 1): ranked search over every stored index, returning
    /// matching document ids, ranks and their index metadata.
    pub fn handle_query(&mut self, message: &QueryMessage) -> SearchReply {
        let query = QueryIndex::from_bits(message.query.clone());
        let (matches, stats) = self.engine.search_ranked_with_stats(&query);
        self.counters.binary_comparisons += stats.comparisons;
        self.reply_entries(matches, message.top)
    }

    /// Handle a batched query: every query of the batch is evaluated in a single
    /// pass over each shard, and the reply carries one [`SearchReply`] per query in
    /// request order. Comparison counts accumulate exactly as if the queries had
    /// been sent individually.
    pub fn handle_batch_query(&mut self, message: &BatchQueryMessage) -> BatchSearchReply {
        let queries: Vec<QueryIndex> = message
            .queries
            .iter()
            .map(|bits| QueryIndex::from_bits(bits.clone()))
            .collect();
        let results = self.engine.search_batch_with_stats(&queries);
        let replies = results
            .into_iter()
            .map(|(matches, stats)| {
                self.counters.binary_comparisons += stats.comparisons;
                self.reply_entries(matches, message.top)
            })
            .collect();
        BatchSearchReply { replies }
    }

    /// Handle a document-retrieval request: return the ciphertexts and RSA-encrypted keys of
    /// the requested documents.
    pub fn handle_document_request(
        &mut self,
        request: &DocumentRequest,
    ) -> Result<DocumentReply, ProtocolError> {
        let mut documents = Vec::with_capacity(request.document_ids.len());
        for &id in &request.document_ids {
            let doc = self
                .documents
                .get(&id)
                .ok_or(ProtocolError::UnknownDocument(id))?;
            documents.push(doc.clone());
        }
        Ok(DocumentReply { documents })
    }

    /// Operation counters accumulated so far (binary comparisons only — the server does no
    /// cryptography, which is the point of the scheme).
    pub fn counters(&self) -> &OperationCounters {
        &self.counters
    }

    /// Reset the counters.
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    /// The public parameters this server runs with.
    pub fn params(&self) -> &SystemParams {
        self.engine.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_owner::{DataOwner, OwnerConfig};
    use mkse_core::query::QueryBuilder;
    use mkse_textproc::document::Document;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn populated_server() -> (DataOwner, CloudServer, StdRng) {
        let mut rng = StdRng::seed_from_u64(17);
        let mut owner = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
        let docs = vec![
            Document::from_text(0, "cloud privacy search encryption"),
            Document::from_text(1, "weather forecast rain"),
            Document::from_text(2, "cloud storage pricing"),
        ];
        let (indices, encrypted) = owner.prepare_documents(&docs, &mut rng);
        let mut server = CloudServer::new(owner.params().clone());
        server.upload(indices, encrypted).unwrap();
        (owner, server, rng)
    }

    fn query_for(owner: &DataOwner, keywords: &[&str], rng: &mut StdRng) -> QueryMessage {
        let trapdoors = owner.scheme_keys().trapdoors_for(owner.params(), keywords);
        let pool = owner.random_pool_trapdoors();
        let q = QueryBuilder::new(owner.params())
            .add_trapdoors(&trapdoors)
            .with_randomization(&pool)
            .build(rng);
        QueryMessage {
            query: q.bits().clone(),
            top: None,
        }
    }

    #[test]
    fn query_returns_matching_documents_with_metadata() {
        let (owner, mut server, mut rng) = populated_server();
        assert_eq!(server.num_documents(), 3);
        // "cloud" is stemmed to "cloud"; documents 0 and 2 contain it.
        let reply = server.handle_query(&query_for(&owner, &["cloud"], &mut rng));
        let ids: Vec<u64> = reply.matches.iter().map(|m| m.document_id).collect();
        assert!(ids.contains(&0));
        assert!(ids.contains(&2));
        assert!(!ids.contains(&1));
        for m in &reply.matches {
            assert_eq!(m.metadata.len(), owner.params().rank_levels());
            assert!(m.rank >= 1);
        }
        assert!(server.counters().binary_comparisons >= 3);
    }

    #[test]
    fn top_limit_truncates_results() {
        let (owner, mut server, mut rng) = populated_server();
        let mut msg = query_for(&owner, &["cloud"], &mut rng);
        msg.top = Some(1);
        let reply = server.handle_query(&msg);
        assert_eq!(reply.matches.len(), 1);
    }

    #[test]
    fn document_request_returns_ciphertexts() {
        let (_, mut server, _) = populated_server();
        let reply = server
            .handle_document_request(&DocumentRequest {
                document_ids: vec![0, 2],
            })
            .unwrap();
        assert_eq!(reply.documents.len(), 2);
        assert_eq!(reply.documents[0].document_id, 0);
        assert!(!reply.documents[0].ciphertext.is_empty());
    }

    #[test]
    fn unknown_document_is_an_error() {
        let (_, mut server, _) = populated_server();
        assert_eq!(
            server.handle_document_request(&DocumentRequest {
                document_ids: vec![99]
            }),
            Err(ProtocolError::UnknownDocument(99))
        );
    }

    #[test]
    fn batched_queries_match_individual_queries() {
        let (owner, mut server, mut rng) = populated_server();
        let q1 = query_for(&owner, &["cloud"], &mut rng);
        let q2 = query_for(&owner, &["weather"], &mut rng);
        let individual = vec![server.handle_query(&q1), server.handle_query(&q2)];
        let singles_comparisons = server.counters().binary_comparisons;
        server.reset_counters();

        let batch = BatchQueryMessage {
            queries: vec![q1.query.clone(), q2.query.clone()],
            top: None,
        };
        let batched = server.handle_batch_query(&batch);
        assert_eq!(batched.replies, individual);
        // Comparison accounting is identical to sending the queries one by one.
        assert_eq!(server.counters().binary_comparisons, singles_comparisons);
    }

    #[test]
    fn shard_count_does_not_change_results() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut owner = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
        let docs: Vec<Document> = (0..9u64)
            .map(|id| Document::from_text(id, "cloud storage privacy search"))
            .collect();
        let (indices, encrypted) = owner.prepare_documents(&docs, &mut rng);
        let mut sequential = CloudServer::with_shards(owner.params().clone(), 1);
        sequential
            .upload(indices.clone(), encrypted.clone())
            .unwrap();
        let mut sharded = CloudServer::with_shards(owner.params().clone(), 4);
        sharded.upload(indices, encrypted).unwrap();
        assert_eq!(sequential.num_shards(), 1);
        assert_eq!(sharded.num_shards(), 4);

        let msg = query_for(&owner, &["privacy"], &mut rng);
        assert_eq!(sequential.handle_query(&msg), sharded.handle_query(&msg));
    }

    #[test]
    fn duplicate_upload_is_rejected() {
        let (_, mut server, mut rng) = populated_server();
        let mut owner2 = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
        let docs = vec![Document::from_text(0, "colliding document id")];
        let (indices, encrypted) = owner2.prepare_documents(&docs, &mut rng);
        assert!(matches!(
            server.upload(indices, encrypted),
            Err(ProtocolError::Store(_))
        ));
        assert_eq!(server.num_documents(), 3);
    }

    #[test]
    fn server_counters_reset() {
        let (owner, mut server, mut rng) = populated_server();
        let _ = server.handle_query(&query_for(&owner, &["cloud"], &mut rng));
        assert!(server.counters().binary_comparisons > 0);
        server.reset_counters();
        assert_eq!(server.counters().binary_comparisons, 0);
    }
}
