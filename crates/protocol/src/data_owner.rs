//! The data owner (§3): key generation, index generation, document encryption, trapdoor
//! issuance and blind decryption.

use crate::counters::OperationCounters;
use crate::envelope::{Request, Response, Service};
use crate::messages::{
    BlindDecryptReply, BlindDecryptRequest, EncryptedDocumentTransfer, TrapdoorReply,
    TrapdoorRequest,
};
use crate::ProtocolError;
use mkse_core::document_index::{DocumentIndexer, RankedDocumentIndex};
use mkse_core::keys::{SchemeKeys, Trapdoor};
use mkse_core::params::SystemParams;
use mkse_crypto::aes::{AesCtr, KEY_SIZE, NONCE_SIZE};
use mkse_crypto::bigint::BigUint;
use mkse_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use rand::Rng;
use std::collections::BTreeMap;

/// Configuration of a data owner.
#[derive(Clone, Debug)]
pub struct OwnerConfig {
    /// The scheme parameters shared with users and the server.
    pub params: SystemParams,
    /// RSA modulus size. The paper uses 1024 bits; tests use smaller keys to stay fast in
    /// debug builds.
    pub rsa_modulus_bits: usize,
}

impl Default for OwnerConfig {
    fn default() -> Self {
        OwnerConfig {
            params: SystemParams::default(),
            rsa_modulus_bits: 1024,
        }
    }
}

impl OwnerConfig {
    /// A configuration with a small RSA modulus, for unit tests (cryptographically weak, but
    /// the protocol logic is identical).
    pub fn fast_for_tests() -> Self {
        OwnerConfig {
            params: SystemParams::default(),
            rsa_modulus_bits: 256,
        }
    }

    /// Override the scheme parameters.
    pub fn with_params(mut self, params: SystemParams) -> Self {
        self.params = params;
        self
    }
}

/// The data owner actor.
pub struct DataOwner {
    config: OwnerConfig,
    scheme_keys: SchemeKeys,
    rsa: RsaKeyPair,
    /// Per-document symmetric keys (the owner needs them only until they are RSA-encrypted
    /// and uploaded, but keeping them allows re-encryption and key rotation).
    document_keys: BTreeMap<u64, [u8; KEY_SIZE]>,
    /// Verification keys of registered (authorized) users.
    users: BTreeMap<u64, RsaPublicKey>,
    counters: OperationCounters,
}

impl DataOwner {
    /// Create a data owner: generates the scheme keys and the RSA key pair.
    pub fn new<R: Rng + ?Sized>(config: OwnerConfig, rng: &mut R) -> Self {
        let scheme_keys = SchemeKeys::generate(&config.params, rng);
        let rsa = RsaKeyPair::generate(config.rsa_modulus_bits, rng);
        DataOwner {
            config,
            scheme_keys,
            rsa,
            document_keys: BTreeMap::new(),
            users: BTreeMap::new(),
            counters: OperationCounters::new(),
        }
    }

    /// The public scheme parameters.
    pub fn params(&self) -> &SystemParams {
        &self.config.params
    }

    /// The owner's RSA public key (users need it for blinding).
    pub fn public_key(&self) -> &RsaPublicKey {
        self.rsa.public_key()
    }

    /// The owner's secret scheme keys (exposed for experiments that need direct access to
    /// trapdoors; a deployment would keep this private).
    pub fn scheme_keys(&self) -> &SchemeKeys {
        &self.scheme_keys
    }

    /// Register an authorized user's verification key.
    pub fn register_user(&mut self, user_id: u64, verification_key: RsaPublicKey) {
        self.users.insert(user_id, verification_key);
    }

    /// The random-keyword-pool trapdoors shared with every authorized user (§6).
    pub fn random_pool_trapdoors(&self) -> Vec<Trapdoor> {
        self.scheme_keys.random_pool_trapdoors(&self.config.params)
    }

    /// Offline phase (§3, Figure 1): index every document and encrypt it under a fresh
    /// symmetric key; the symmetric key itself is RSA-encrypted for storage at the server.
    ///
    /// Returns the searchable indices and the encrypted documents, both destined for the
    /// cloud server.
    pub fn prepare_documents<R: Rng + ?Sized>(
        &mut self,
        documents: &[mkse_textproc::document::Document],
        rng: &mut R,
    ) -> (Vec<RankedDocumentIndex>, Vec<EncryptedDocumentTransfer>) {
        let indexer = DocumentIndexer::new(&self.config.params, &self.scheme_keys);
        let mut indices = Vec::with_capacity(documents.len());
        let mut encrypted = Vec::with_capacity(documents.len());
        for doc in documents {
            // Searchable index: one keyword-index PRF evaluation per (level, keyword) pair.
            let index = indexer.index_document(doc);
            for (level_idx, &threshold) in self.config.params.level_thresholds.iter().enumerate() {
                let keywords_at_level =
                    doc.terms.iter().filter(|(_, c)| *c >= threshold).count() as u64;
                let _ = level_idx;
                self.counters.hashes += keywords_at_level;
                self.counters.bitwise_products +=
                    keywords_at_level + self.config.params.doc_random_keywords as u64;
            }
            indices.push(index);

            // Document encryption.
            let mut key = [0u8; KEY_SIZE];
            rng.fill(&mut key[..]);
            let mut nonce = [0u8; NONCE_SIZE];
            rng.fill(&mut nonce[..]);
            let ciphertext = AesCtr::new(&key).encrypt(&nonce, &doc.body);
            self.counters.symmetric_encryptions += 1;
            let encrypted_key = self
                .rsa
                .public_key()
                .encrypt_bytes(&key)
                .expect("a 128-bit key always fits under the modulus");
            self.counters.modular_exponentiations += 1;
            self.document_keys.insert(doc.id, key);
            encrypted.push(EncryptedDocumentTransfer {
                document_id: doc.id,
                ciphertext,
                encrypted_key,
            });
        }
        (indices, encrypted)
    }

    /// Handle a signed trapdoor request (§4.2): verify the signature, then return each
    /// requested bin's HMAC key encrypted under the requesting user's public key.
    pub fn handle_trapdoor_request(
        &mut self,
        request: &TrapdoorRequest,
    ) -> Result<TrapdoorReply, ProtocolError> {
        let user_key = self
            .users
            .get(&request.user_id)
            .ok_or(ProtocolError::BadSignature)?;
        let payload = TrapdoorRequest::signed_payload(request.user_id, &request.bin_ids);
        self.counters.modular_exponentiations += 1; // signature verification
        user_key
            .verify(&payload, &request.signature)
            .map_err(|_| ProtocolError::BadSignature)?;

        let mut encrypted_bin_keys = Vec::with_capacity(request.bin_ids.len());
        for &bin in &request.bin_ids {
            let key = self.scheme_keys.bin_key(bin);
            let ciphertext = user_key.encrypt_bytes(key)?;
            self.counters.modular_exponentiations += 1;
            encrypted_bin_keys.push((bin, ciphertext));
        }
        Ok(TrapdoorReply { encrypted_bin_keys })
    }

    /// Handle a signed blind-decryption request (§4.4): verify the signature and return
    /// `z̄ = z^d mod N`. The owner never sees the unblinded ciphertext, so it cannot tell which
    /// document's key it is decrypting.
    pub fn handle_blind_decrypt(
        &mut self,
        request: &BlindDecryptRequest,
    ) -> Result<BlindDecryptReply, ProtocolError> {
        let user_key = self
            .users
            .get(&request.user_id)
            .ok_or(ProtocolError::BadSignature)?;
        let payload =
            BlindDecryptRequest::signed_payload(request.user_id, &request.blinded_ciphertext);
        self.counters.modular_exponentiations += 1; // signature verification
        user_key
            .verify(&payload, &request.signature)
            .map_err(|_| ProtocolError::BadSignature)?;

        let blinded_plaintext = self.rsa.decrypt_value(&request.blinded_ciphertext)?;
        self.counters.modular_exponentiations += 1;
        Ok(BlindDecryptReply { blinded_plaintext })
    }

    /// Direct (non-blinded) decryption of an RSA value — used only by tests and experiments
    /// that need ground truth; the protocol itself always goes through blinding.
    pub fn decrypt_for_test(&self, value: &BigUint) -> Result<Vec<u8>, ProtocolError> {
        Ok(self.rsa.decrypt_bytes(value)?)
    }

    /// The symmetric key of a document (ground truth for tests).
    pub fn document_key(&self, document_id: u64) -> Option<&[u8; KEY_SIZE]> {
        self.document_keys.get(&document_id)
    }

    /// Operation counters accumulated so far.
    pub fn counters(&self) -> &OperationCounters {
        &self.counters
    }

    /// Reset the operation counters (e.g. after the offline setup phase, so a per-query
    /// measurement starts from zero).
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }
}

impl Service for DataOwner {
    /// The owner's envelope entry point: serves trapdoor issuance and blinded
    /// decryption (plus counter introspection), and answers server-side
    /// operations with [`ProtocolError::Unsupported`]. One [`Request`]
    /// vocabulary, two parties, disjoint duties.
    fn call(&mut self, request: Request) -> Response {
        self.counters.requests_served += 1;
        match request {
            Request::Trapdoor(request) => match self.handle_trapdoor_request(&request) {
                Ok(reply) => Response::Trapdoor(reply),
                Err(e) => Response::Error(e),
            },
            Request::BlindDecrypt(request) => match self.handle_blind_decrypt(&request) {
                Ok(reply) => Response::BlindDecrypt(reply),
                Err(e) => Response::Error(e),
            },
            Request::Counters => Response::Counters(self.counters),
            Request::ResetCounters => {
                self.counters.reset();
                Response::Ack
            }
            other => Response::Error(ProtocolError::Unsupported(format!(
                "{} is served by the cloud server, not the data owner",
                other.name()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkse_textproc::document::Document;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn owner() -> (DataOwner, StdRng) {
        let mut rng = StdRng::seed_from_u64(21);
        let owner = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
        (owner, rng)
    }

    #[test]
    fn prepare_documents_indexes_and_encrypts() {
        let (mut owner, mut rng) = owner();
        let docs = vec![
            Document::from_text(0, "cloud privacy search"),
            Document::from_text(1, "weather forecast"),
        ];
        let (indices, encrypted) = owner.prepare_documents(&docs, &mut rng);
        assert_eq!(indices.len(), 2);
        assert_eq!(encrypted.len(), 2);
        assert_eq!(indices[0].num_levels(), owner.params().rank_levels());
        // Ciphertext differs from plaintext and is nonce-prefixed.
        assert_ne!(&encrypted[0].ciphertext[NONCE_SIZE..], &docs[0].body[..]);
        // The owner can recover the key from its own RSA encryption.
        let key = owner.decrypt_for_test(&encrypted[0].encrypted_key).unwrap();
        assert_eq!(&key[..], owner.document_key(0).unwrap());
        assert!(owner.counters().symmetric_encryptions == 2);
        assert!(owner.counters().modular_exponentiations >= 2);
        assert!(owner.counters().hashes > 0);
    }

    #[test]
    fn trapdoor_request_requires_valid_signature() {
        let (mut owner, mut rng) = owner();
        let user_rsa = RsaKeyPair::generate(256, &mut rng);
        owner.register_user(7, user_rsa.public_key().clone());

        let bins = vec![1u32, 5];
        let payload = TrapdoorRequest::signed_payload(7, &bins);
        let good = TrapdoorRequest {
            user_id: 7,
            bin_ids: bins.clone(),
            signature: user_rsa.sign(&payload),
        };
        let reply = owner.handle_trapdoor_request(&good).unwrap();
        assert_eq!(reply.encrypted_bin_keys.len(), 2);
        // The user can decrypt each bin key and it matches the owner's key.
        let key0 = user_rsa
            .decrypt_value(&reply.encrypted_bin_keys[0].1)
            .unwrap()
            .to_bytes_be_padded(mkse_core::keys::BIN_KEY_LEN);
        assert_eq!(&key0[..], owner.scheme_keys().bin_key(1));

        // Tampered bins ⇒ signature fails.
        let bad = TrapdoorRequest {
            user_id: 7,
            bin_ids: vec![1, 6],
            signature: good.signature.clone(),
        };
        assert_eq!(
            owner.handle_trapdoor_request(&bad),
            Err(ProtocolError::BadSignature)
        );

        // Unknown user ⇒ rejected.
        let unknown = TrapdoorRequest {
            user_id: 99,
            bin_ids: bins,
            signature: good.signature.clone(),
        };
        assert_eq!(
            owner.handle_trapdoor_request(&unknown),
            Err(ProtocolError::BadSignature)
        );
    }

    #[test]
    fn blind_decrypt_round_trip() {
        let (mut owner, mut rng) = owner();
        let user_rsa = RsaKeyPair::generate(256, &mut rng);
        owner.register_user(3, user_rsa.public_key().clone());

        // Owner-side ciphertext of some symmetric key.
        let sk = [9u8; 16];
        let y = owner.public_key().encrypt_bytes(&sk).unwrap();

        // User blinds.
        let c = owner.public_key().random_blinding(&mut rng);
        let z = owner.public_key().blind(&y, &c).unwrap();
        let payload = BlindDecryptRequest::signed_payload(3, &z);
        let request = BlindDecryptRequest {
            user_id: 3,
            blinded_ciphertext: z,
            signature: user_rsa.sign(&payload),
        };
        let reply = owner.handle_blind_decrypt(&request).unwrap();
        let recovered = owner
            .public_key()
            .unblind(&reply.blinded_plaintext, &c)
            .unwrap()
            .to_bytes_be_padded(16);
        assert_eq!(recovered, sk);
    }

    #[test]
    fn blind_decrypt_rejects_bad_signature() {
        let (mut owner, mut rng) = owner();
        let user_rsa = RsaKeyPair::generate(256, &mut rng);
        let other_rsa = RsaKeyPair::generate(256, &mut rng);
        owner.register_user(3, user_rsa.public_key().clone());
        let z = BigUint::from_u64(12345);
        let payload = BlindDecryptRequest::signed_payload(3, &z);
        let request = BlindDecryptRequest {
            user_id: 3,
            blinded_ciphertext: z,
            signature: other_rsa.sign(&payload), // signed by the wrong key
        };
        assert_eq!(
            owner.handle_blind_decrypt(&request),
            Err(ProtocolError::BadSignature)
        );
    }

    #[test]
    fn counters_reset() {
        let (mut owner, mut rng) = owner();
        let docs = vec![Document::from_text(0, "a b c")];
        let _ = owner.prepare_documents(&docs, &mut rng);
        assert!(owner.counters().symmetric_encryptions > 0);
        owner.reset_counters();
        assert_eq!(owner.counters(), &OperationCounters::new());
    }
}
