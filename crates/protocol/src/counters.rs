//! Computation-cost accounting (Table 2).
//!
//! Each actor owns an [`OperationCounters`] and bumps the relevant counter whenever it
//! performs one of the operations Table 2 tracks: hash/PRF evaluations, bitwise products,
//! modular multiplications and exponentiations, symmetric encryptions/decryptions, and the
//! server's r-bit binary comparisons.

use serde::{Deserialize, Serialize};

/// Operation counts for one party during one protocol run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperationCounters {
    /// Hash / PRF evaluations (keyword-index computations).
    pub hashes: u64,
    /// Bitwise products of r-bit indices.
    pub bitwise_products: u64,
    /// Modular exponentiations (RSA encrypt/decrypt/sign/verify/blind).
    pub modular_exponentiations: u64,
    /// Modular multiplications (blinding / unblinding).
    pub modular_multiplications: u64,
    /// Symmetric-key encryptions (whole documents).
    pub symmetric_encryptions: u64,
    /// Symmetric-key decryptions (whole documents).
    pub symmetric_decryptions: u64,
    /// r-bit binary comparisons **actually performed** (the server's only work).
    /// With the result cache enabled this is the post-cache count; the logical
    /// Table 2 total is `binary_comparisons + comparisons_saved_by_cache`.
    pub binary_comparisons: u64,
    /// r-bit comparisons the server's result cache made unnecessary.
    pub comparisons_saved_by_cache: u64,
    /// Search replies served entirely from the result cache (no shard scanned).
    pub cache_served_replies: u64,
    /// Envelope requests answered through [`crate::Service::call`] (any kind,
    /// including ones that end in an error reply). The service-level request
    /// rate, next to the per-operation Table 2 rows above.
    ///
    /// For [`crate::CloudServer`] this is a **mirror of the telemetry
    /// registry** (`requests_served` counter, tallied at every level
    /// including `Off`) minus the baseline captured at the last reset: the
    /// registry is the single source of served-request accounting, so Table 2
    /// totals and the wire-frame counts of Table 1 cannot drift apart.
    pub requests_served: u64,
}

impl OperationCounters {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset every counter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Element-wise sum with another counter set.
    pub fn combined(&self, other: &OperationCounters) -> OperationCounters {
        OperationCounters {
            hashes: self.hashes + other.hashes,
            bitwise_products: self.bitwise_products + other.bitwise_products,
            modular_exponentiations: self.modular_exponentiations + other.modular_exponentiations,
            modular_multiplications: self.modular_multiplications + other.modular_multiplications,
            symmetric_encryptions: self.symmetric_encryptions + other.symmetric_encryptions,
            symmetric_decryptions: self.symmetric_decryptions + other.symmetric_decryptions,
            binary_comparisons: self.binary_comparisons + other.binary_comparisons,
            comparisons_saved_by_cache: self.comparisons_saved_by_cache
                + other.comparisons_saved_by_cache,
            cache_served_replies: self.cache_served_replies + other.cache_served_replies,
            requests_served: self.requests_served + other.requests_served,
        }
    }

    /// Total number of "expensive" public-key operations (the quantity that dominates user
    /// latency in Table 2's analysis).
    pub fn public_key_operations(&self) -> u64 {
        self.modular_exponentiations + self.modular_multiplications
    }

    /// Render as one row per non-zero counter (used by the experiment binaries).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let rows = [
            ("hash / PRF evaluations", self.hashes),
            ("bitwise products", self.bitwise_products),
            ("modular exponentiations", self.modular_exponentiations),
            ("modular multiplications", self.modular_multiplications),
            ("symmetric encryptions", self.symmetric_encryptions),
            ("symmetric decryptions", self.symmetric_decryptions),
            ("binary comparisons (r-bit)", self.binary_comparisons),
            (
                "comparisons saved by cache",
                self.comparisons_saved_by_cache,
            ),
            ("replies served from cache", self.cache_served_replies),
            ("envelope requests served", self.requests_served),
        ];
        for (label, value) in rows {
            if value > 0 {
                out.push_str(&format!("  {label:<28} {value}\n"));
            }
        }
        if out.is_empty() {
            out.push_str("  (no operations recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_reset() {
        let mut c = OperationCounters::new();
        assert_eq!(c, OperationCounters::default());
        c.hashes = 5;
        c.binary_comparisons = 100;
        c.reset();
        assert_eq!(c, OperationCounters::default());
    }

    #[test]
    fn combined_sums_elementwise() {
        let a = OperationCounters {
            hashes: 1,
            bitwise_products: 2,
            modular_exponentiations: 3,
            modular_multiplications: 4,
            symmetric_encryptions: 5,
            symmetric_decryptions: 6,
            binary_comparisons: 7,
            comparisons_saved_by_cache: 8,
            cache_served_replies: 9,
            requests_served: 10,
        };
        let b = OperationCounters {
            hashes: 10,
            ..Default::default()
        };
        let c = a.combined(&b);
        assert_eq!(c.hashes, 11);
        assert_eq!(c.binary_comparisons, 7);
        assert_eq!(c.comparisons_saved_by_cache, 8);
        assert_eq!(c.cache_served_replies, 9);
        assert_eq!(c.requests_served, 10);
        assert_eq!(c.public_key_operations(), 7);
    }

    #[test]
    fn render_lists_nonzero_rows_only() {
        let c = OperationCounters {
            hashes: 3,
            ..Default::default()
        };
        let rendered = c.render();
        assert!(rendered.contains("hash / PRF evaluations"));
        assert!(!rendered.contains("modular"));
        let empty = OperationCounters::new().render();
        assert!(empty.contains("no operations"));
    }
}
