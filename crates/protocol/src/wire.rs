//! The framed wire codec: every [`Request`] / [`Response`] envelope as
//! length-prefixed bytes, with a version byte and a request id for correlation.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! frame   := length u32 | payload              (length = |payload|)
//! payload := version u8 | request_id u64 | kind u8 | body
//! ```
//!
//! The `request_id` is chosen by the client and echoed verbatim in the matching
//! response frame, so a pipelined client can submit many requests and correlate
//! replies arriving in **any** order ([`crate::Client`] does exactly this). The
//! `kind` byte selects the envelope variant; request kinds live below `0x80`,
//! response kinds at or above it, so a frame can never be decoded as the wrong
//! direction.
//!
//! Decoding never panics: truncated buffers, unknown version bytes, unknown
//! kinds, malformed counts and trailing garbage all come back as a typed
//! [`CodecError`] (surfaced as [`crate::ProtocolError::Codec`]). The proptest
//! suite round-trips every envelope variant and fuzzes truncations/corruptions
//! against this guarantee. Frames are capped at `u32::MAX` payload bytes;
//! *encoding* a larger envelope (e.g. a single >4 GiB upload) panics with an
//! explicit message rather than wrapping the prefix into a corrupt stream.
//!
//! Because the codec is the *only* byte representation of the protocol, framed
//! sizes measured by [`crate::Client`] are the system's real communication cost —
//! the measured counterpart of the analytic Table 1 bit counts the
//! [`crate::CostLedger`] also tracks.

use crate::counters::OperationCounters;
use crate::envelope::{
    NodeCapabilities, NodeHeartbeat, NodeRegistration, Request, Response, ServerInfo,
    ShardAssignment, PROTOCOL_VERSION,
};
use crate::messages::{
    BatchQueryMessage, BatchSearchReply, BlindDecryptReply, BlindDecryptRequest, CacheReport,
    DocumentReply, DocumentRequest, EncryptedDocumentTransfer, QueryMessage, SearchReply,
    SearchResultEntry, TrapdoorReply, TrapdoorRequest, UploadMessage,
};
use crate::{ProtocolError, TransportError};
use mkse_core::bitindex::BitIndex;
use mkse_core::cache::CacheStats;
use mkse_core::document_index::RankedDocumentIndex;
use mkse_core::persistence::PersistenceError;
use mkse_core::storage::StoreError;
use mkse_core::telemetry::{
    ConnectionSnapshot, HistogramSnapshot, LaneSnapshot, MetricsSnapshot, ShardCacheSnapshot,
    TelemetryLevel, ValueHistogramSnapshot,
};
use mkse_crypto::bigint::BigUint;
use mkse_crypto::rsa::RsaSignature;

/// Errors produced while encoding-side framing or decoding wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the declared content.
    Truncated,
    /// The frame carries a version this codec does not speak.
    UnknownVersion(u8),
    /// The frame carries an envelope kind this codec does not know.
    UnknownKind(u8),
    /// The frame decoded structurally but its content is invalid.
    Malformed(String),
    /// A reply carried a different envelope variant than the request implies.
    ResponseMismatch {
        /// The variant the caller expected.
        expected: String,
        /// The variant that actually arrived.
        found: String,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame is truncated"),
            CodecError::UnknownVersion(v) => write!(f, "unknown wire version {v}"),
            CodecError::UnknownKind(k) => write!(f, "unknown envelope kind 0x{k:02x}"),
            CodecError::Malformed(what) => write!(f, "malformed frame: {what}"),
            CodecError::ResponseMismatch { expected, found } => {
                write!(f, "expected a {expected} reply, got {found}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

// --- kind bytes --------------------------------------------------------------
// Requests stay below 0x80, responses at or above it.

const K_TRAPDOOR: u8 = 0x01;
const K_QUERY: u8 = 0x02;
const K_BATCH_QUERY: u8 = 0x03;
const K_DOCUMENTS: u8 = 0x04;
const K_BLIND_DECRYPT: u8 = 0x05;
const K_UPLOAD: u8 = 0x06;
const K_ENABLE_CACHE: u8 = 0x07;
const K_DISABLE_CACHE: u8 = 0x08;
const K_CACHE_STATS: u8 = 0x09;
const K_SNAPSHOT: u8 = 0x0a;
const K_RESTORE: u8 = 0x0b;
const K_COUNTERS: u8 = 0x0c;
const K_RESET_COUNTERS: u8 = 0x0d;
const K_SERVER_INFO: u8 = 0x0e;
const K_METRICS_SNAPSHOT: u8 = 0x0f;
const K_REGISTER_NODE: u8 = 0x10;
const K_NODE_HEARTBEAT: u8 = 0x11;

const K_R_SEARCH: u8 = 0x81;
const K_R_BATCH_SEARCH: u8 = 0x82;
const K_R_DOCUMENTS: u8 = 0x83;
const K_R_TRAPDOOR: u8 = 0x84;
const K_R_BLIND_DECRYPT: u8 = 0x85;
const K_R_UPLOADED: u8 = 0x86;
const K_R_ACK: u8 = 0x87;
const K_R_CACHE_STATS: u8 = 0x88;
const K_R_SNAPSHOT: u8 = 0x89;
const K_R_RESTORED: u8 = 0x8a;
const K_R_COUNTERS: u8 = 0x8b;
const K_R_INFO: u8 = 0x8c;
const K_R_ERROR: u8 = 0x8d;
const K_R_METRICS_REPORT: u8 = 0x8e;
const K_R_SHARD_ASSIGNMENT: u8 = 0x8f;

// --- public API --------------------------------------------------------------

/// Encode one request as a complete frame (length prefix included).
pub fn encode_request(request_id: u64, request: &Request) -> Vec<u8> {
    let mut w = Writer::new(request_id, request_kind(request));
    write_request_body(&mut w, request);
    w.finish()
}

/// Encode one response as a complete frame (length prefix included).
pub fn encode_response(request_id: u64, response: &Response) -> Vec<u8> {
    let mut w = Writer::new(request_id, response_kind(response));
    write_response_body(&mut w, response);
    w.finish()
}

/// One frame split off the front of a buffer: `None` when the buffer is empty,
/// otherwise `(frame payload, rest of the buffer)`.
pub type SplitFrame<'a> = Option<(&'a [u8], &'a [u8])>;

/// Split one length-prefixed frame off the front of `buf`.
///
/// Returns `Ok(None)` on an empty buffer, `Ok(Some((payload, rest)))` on a
/// complete frame, and [`CodecError::Truncated`] on a partial one.
pub fn split_frame(buf: &[u8]) -> Result<SplitFrame<'_>, CodecError> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if buf.len() - 4 < len {
        return Err(CodecError::Truncated);
    }
    Ok(Some((&buf[4..4 + len], &buf[4 + len..])))
}

/// Decode one request from a frame payload (as produced by [`split_frame`]).
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), CodecError> {
    let mut r = Reader::new(payload);
    let (request_id, kind) = read_header(&mut r)?;
    if kind >= 0x80 {
        return Err(CodecError::Malformed(format!(
            "response kind 0x{kind:02x} in a request frame"
        )));
    }
    let request = read_request_body(&mut r, kind)?;
    r.expect_end()?;
    Ok((request_id, request))
}

/// Decode one response from a frame payload (as produced by [`split_frame`]).
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), CodecError> {
    let mut r = Reader::new(payload);
    let (request_id, kind) = read_header(&mut r)?;
    if kind < 0x80 {
        return Err(CodecError::Malformed(format!(
            "request kind 0x{kind:02x} in a response frame"
        )));
    }
    let response = read_response_body(&mut r, kind)?;
    r.expect_end()?;
    Ok((request_id, response))
}

/// Decode every request frame in `wire`, in stream order.
pub fn decode_request_stream(mut wire: &[u8]) -> Result<Vec<(u64, Request)>, CodecError> {
    let mut out = Vec::new();
    while let Some((payload, rest)) = split_frame(wire)? {
        out.push(decode_request(payload)?);
        wire = rest;
    }
    Ok(out)
}

/// Decode every response frame in `wire`, in stream order.
pub fn decode_response_stream(mut wire: &[u8]) -> Result<Vec<(u64, Response)>, CodecError> {
    let mut out = Vec::new();
    while let Some((payload, rest)) = split_frame(wire)? {
        out.push(decode_response(payload)?);
        wire = rest;
    }
    Ok(out)
}

fn read_header(r: &mut Reader<'_>) -> Result<(u64, u8), CodecError> {
    let version = r.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(CodecError::UnknownVersion(version));
    }
    let request_id = r.u64()?;
    let kind = r.u8()?;
    Ok((request_id, kind))
}

// --- request bodies ----------------------------------------------------------

fn request_kind(request: &Request) -> u8 {
    match request {
        Request::Trapdoor(_) => K_TRAPDOOR,
        Request::Query(_) => K_QUERY,
        Request::BatchQuery(_) => K_BATCH_QUERY,
        Request::Documents(_) => K_DOCUMENTS,
        Request::BlindDecrypt(_) => K_BLIND_DECRYPT,
        Request::Upload(_) => K_UPLOAD,
        Request::EnableCache { .. } => K_ENABLE_CACHE,
        Request::DisableCache => K_DISABLE_CACHE,
        Request::CacheStats => K_CACHE_STATS,
        Request::SnapshotIndex => K_SNAPSHOT,
        Request::RestoreIndex(_) => K_RESTORE,
        Request::Counters => K_COUNTERS,
        Request::ResetCounters => K_RESET_COUNTERS,
        Request::ServerInfo => K_SERVER_INFO,
        Request::MetricsSnapshot => K_METRICS_SNAPSHOT,
        Request::RegisterNode(_) => K_REGISTER_NODE,
        Request::NodeHeartbeat(_) => K_NODE_HEARTBEAT,
    }
}

fn write_request_body(w: &mut Writer, request: &Request) {
    match request {
        Request::Trapdoor(t) => {
            w.u64(t.user_id);
            w.u32(t.bin_ids.len() as u32);
            for b in &t.bin_ids {
                w.u32(*b);
            }
            w.biguint(t.signature.value());
        }
        Request::Query(q) => {
            w.bitindex(&q.query);
            w.opt_u64(q.top.map(|t| t as u64));
        }
        Request::BatchQuery(b) => {
            w.u32(b.queries.len() as u32);
            for q in &b.queries {
                w.bitindex(q);
            }
            w.opt_u64(b.top.map(|t| t as u64));
        }
        Request::Documents(d) => {
            w.u32(d.document_ids.len() as u32);
            for id in &d.document_ids {
                w.u64(*id);
            }
        }
        Request::BlindDecrypt(b) => {
            w.u64(b.user_id);
            w.biguint(&b.blinded_ciphertext);
            w.biguint(b.signature.value());
        }
        Request::Upload(u) => {
            w.u32(u.indices.len() as u32);
            for idx in &u.indices {
                w.ranked_index(idx);
            }
            w.u32(u.documents.len() as u32);
            for doc in &u.documents {
                w.transfer(doc);
            }
        }
        Request::EnableCache { capacity_per_shard } => w.u64(*capacity_per_shard),
        Request::RestoreIndex(bytes) => w.bytes(bytes),
        Request::RegisterNode(reg) => {
            w.u64(reg.node_id);
            w.u32(reg.capabilities.shard_slots);
            w.u32(reg.capabilities.scan_lanes);
            w.u64(reg.capabilities.cache_capacity);
        }
        Request::NodeHeartbeat(beat) => {
            w.u64(beat.node_id);
            w.metrics_snapshot(&beat.metrics);
        }
        Request::DisableCache
        | Request::CacheStats
        | Request::SnapshotIndex
        | Request::Counters
        | Request::ResetCounters
        | Request::ServerInfo
        | Request::MetricsSnapshot => {}
    }
}

fn read_request_body(r: &mut Reader<'_>, kind: u8) -> Result<Request, CodecError> {
    Ok(match kind {
        K_TRAPDOOR => {
            let user_id = r.u64()?;
            let n = r.u32()? as usize;
            let mut bin_ids = Vec::new();
            for _ in 0..n {
                bin_ids.push(r.u32()?);
            }
            let signature = RsaSignature::from_value(r.biguint()?);
            Request::Trapdoor(TrapdoorRequest {
                user_id,
                bin_ids,
                signature,
            })
        }
        K_QUERY => Request::Query(QueryMessage {
            query: r.bitindex()?,
            top: r.opt_u64()?.map(|t| t as usize),
        }),
        K_BATCH_QUERY => {
            let n = r.u32()? as usize;
            let mut queries = Vec::new();
            for _ in 0..n {
                queries.push(r.bitindex()?);
            }
            let top = r.opt_u64()?.map(|t| t as usize);
            Request::BatchQuery(BatchQueryMessage { queries, top })
        }
        K_DOCUMENTS => {
            let n = r.u32()? as usize;
            let mut document_ids = Vec::new();
            for _ in 0..n {
                document_ids.push(r.u64()?);
            }
            Request::Documents(DocumentRequest { document_ids })
        }
        K_BLIND_DECRYPT => Request::BlindDecrypt(BlindDecryptRequest {
            user_id: r.u64()?,
            blinded_ciphertext: r.biguint()?,
            signature: RsaSignature::from_value(r.biguint()?),
        }),
        K_UPLOAD => {
            let n = r.u32()? as usize;
            let mut indices = Vec::new();
            for _ in 0..n {
                indices.push(r.ranked_index()?);
            }
            let m = r.u32()? as usize;
            let mut documents = Vec::new();
            for _ in 0..m {
                documents.push(r.transfer()?);
            }
            Request::Upload(UploadMessage { indices, documents })
        }
        K_ENABLE_CACHE => Request::EnableCache {
            capacity_per_shard: r.u64()?,
        },
        K_DISABLE_CACHE => Request::DisableCache,
        K_CACHE_STATS => Request::CacheStats,
        K_SNAPSHOT => Request::SnapshotIndex,
        K_RESTORE => Request::RestoreIndex(r.bytes()?),
        K_COUNTERS => Request::Counters,
        K_RESET_COUNTERS => Request::ResetCounters,
        K_SERVER_INFO => Request::ServerInfo,
        K_METRICS_SNAPSHOT => Request::MetricsSnapshot,
        K_REGISTER_NODE => Request::RegisterNode(NodeRegistration {
            node_id: r.u64()?,
            capabilities: NodeCapabilities {
                shard_slots: r.u32()?,
                scan_lanes: r.u32()?,
                cache_capacity: r.u64()?,
            },
        }),
        K_NODE_HEARTBEAT => Request::NodeHeartbeat(NodeHeartbeat {
            node_id: r.u64()?,
            metrics: r.metrics_snapshot()?,
        }),
        other => return Err(CodecError::UnknownKind(other)),
    })
}

// --- response bodies ---------------------------------------------------------

fn response_kind(response: &Response) -> u8 {
    match response {
        Response::Search(_) => K_R_SEARCH,
        Response::BatchSearch(_) => K_R_BATCH_SEARCH,
        Response::Documents(_) => K_R_DOCUMENTS,
        Response::Trapdoor(_) => K_R_TRAPDOOR,
        Response::BlindDecrypt(_) => K_R_BLIND_DECRYPT,
        Response::Uploaded { .. } => K_R_UPLOADED,
        Response::Ack => K_R_ACK,
        Response::CacheStats(_) => K_R_CACHE_STATS,
        Response::Snapshot(_) => K_R_SNAPSHOT,
        Response::Restored { .. } => K_R_RESTORED,
        Response::Counters(_) => K_R_COUNTERS,
        Response::Info(_) => K_R_INFO,
        Response::MetricsReport(_) => K_R_METRICS_REPORT,
        Response::ShardAssignment(_) => K_R_SHARD_ASSIGNMENT,
        Response::Error(_) => K_R_ERROR,
    }
}

fn write_response_body(w: &mut Writer, response: &Response) {
    match response {
        Response::Search(reply) => w.search_reply(reply),
        Response::BatchSearch(batch) => {
            w.u32(batch.replies.len() as u32);
            for reply in &batch.replies {
                w.search_reply(reply);
            }
        }
        Response::Documents(reply) => {
            w.u32(reply.documents.len() as u32);
            for doc in &reply.documents {
                w.transfer(doc);
            }
        }
        Response::Trapdoor(reply) => {
            w.u32(reply.encrypted_bin_keys.len() as u32);
            for (bin, key) in &reply.encrypted_bin_keys {
                w.u32(*bin);
                w.biguint(key);
            }
        }
        Response::BlindDecrypt(reply) => w.biguint(&reply.blinded_plaintext),
        Response::Uploaded { documents } | Response::Restored { documents } => w.u64(*documents),
        Response::Ack => {}
        Response::CacheStats(stats) => match stats {
            None => w.u8(0),
            Some(s) => {
                w.u8(1);
                w.u64(s.hits);
                w.u64(s.misses);
                w.u64(s.evictions);
                w.u64(s.invalidations);
                w.u64(s.saved_comparisons);
            }
        },
        Response::Snapshot(bytes) => w.bytes(bytes),
        Response::Counters(c) => w.counters(c),
        Response::Info(info) => {
            w.u64(info.shards);
            w.u64(info.documents);
            w.u64(info.index_bits);
            w.u64(info.rank_levels);
            w.u8(info.cache_enabled as u8);
        }
        Response::MetricsReport(snapshot) => w.metrics_snapshot(snapshot),
        Response::ShardAssignment(assignment) => {
            w.u64(assignment.node_id);
            w.u32(assignment.shards.len() as u32);
            for shard in &assignment.shards {
                w.u32(*shard);
            }
            w.u64(assignment.epoch);
            w.u64(assignment.heartbeat_interval_ms);
            w.u64(assignment.failure_deadline_ms);
        }
        Response::Error(e) => w.protocol_error(e),
    }
}

fn read_response_body(r: &mut Reader<'_>, kind: u8) -> Result<Response, CodecError> {
    Ok(match kind {
        K_R_SEARCH => Response::Search(r.search_reply()?),
        K_R_BATCH_SEARCH => {
            let n = r.u32()? as usize;
            let mut replies = Vec::new();
            for _ in 0..n {
                replies.push(r.search_reply()?);
            }
            Response::BatchSearch(BatchSearchReply { replies })
        }
        K_R_DOCUMENTS => {
            let n = r.u32()? as usize;
            let mut documents = Vec::new();
            for _ in 0..n {
                documents.push(r.transfer()?);
            }
            Response::Documents(DocumentReply { documents })
        }
        K_R_TRAPDOOR => {
            let n = r.u32()? as usize;
            let mut encrypted_bin_keys = Vec::new();
            for _ in 0..n {
                let bin = r.u32()?;
                let key = r.biguint()?;
                encrypted_bin_keys.push((bin, key));
            }
            Response::Trapdoor(TrapdoorReply { encrypted_bin_keys })
        }
        K_R_BLIND_DECRYPT => Response::BlindDecrypt(BlindDecryptReply {
            blinded_plaintext: r.biguint()?,
        }),
        K_R_UPLOADED => Response::Uploaded {
            documents: r.u64()?,
        },
        K_R_ACK => Response::Ack,
        K_R_CACHE_STATS => {
            let present = r.u8()?;
            match present {
                0 => Response::CacheStats(None),
                1 => Response::CacheStats(Some(CacheStats {
                    hits: r.u64()?,
                    misses: r.u64()?,
                    evictions: r.u64()?,
                    invalidations: r.u64()?,
                    saved_comparisons: r.u64()?,
                })),
                other => {
                    return Err(CodecError::Malformed(format!(
                        "cache-stats presence byte {other}"
                    )))
                }
            }
        }
        K_R_SNAPSHOT => Response::Snapshot(r.bytes()?),
        K_R_RESTORED => Response::Restored {
            documents: r.u64()?,
        },
        K_R_COUNTERS => Response::Counters(r.counters()?),
        K_R_INFO => Response::Info(ServerInfo {
            shards: r.u64()?,
            documents: r.u64()?,
            index_bits: r.u64()?,
            rank_levels: r.u64()?,
            cache_enabled: r.bool()?,
        }),
        K_R_METRICS_REPORT => Response::MetricsReport(r.metrics_snapshot()?),
        K_R_SHARD_ASSIGNMENT => {
            let node_id = r.u64()?;
            let n = r.u32()? as usize;
            let mut shards = Vec::new();
            for _ in 0..n {
                shards.push(r.u32()?);
            }
            Response::ShardAssignment(ShardAssignment {
                node_id,
                shards,
                epoch: r.u64()?,
                heartbeat_interval_ms: r.u64()?,
                failure_deadline_ms: r.u64()?,
            })
        }
        K_R_ERROR => Response::Error(r.protocol_error()?),
        other => return Err(CodecError::UnknownKind(other)),
    })
}

// --- error encodings ---------------------------------------------------------

impl Writer {
    fn protocol_error(&mut self, e: &ProtocolError) {
        match e {
            ProtocolError::BadSignature => self.u8(0),
            ProtocolError::UnknownDocument(id) => {
                self.u8(1);
                self.u64(*id);
            }
            ProtocolError::Crypto(msg) => {
                self.u8(2);
                self.string(msg);
            }
            ProtocolError::NotEnoughMatches {
                requested,
                available,
            } => {
                self.u8(3);
                self.u64(*requested as u64);
                self.u64(*available as u64);
            }
            ProtocolError::Store(e) => {
                self.u8(4);
                self.store_error(e);
            }
            ProtocolError::Persistence(e) => {
                self.u8(5);
                self.persistence_error(e);
            }
            ProtocolError::Codec(e) => {
                self.u8(6);
                self.codec_error(e);
            }
            ProtocolError::Unsupported(msg) => {
                self.u8(7);
                self.string(msg);
            }
            ProtocolError::Transport(e) => {
                self.u8(8);
                self.transport_error(e);
            }
        }
    }

    fn transport_error(&mut self, e: &TransportError) {
        match e {
            TransportError::FrameTooLarge { declared, max } => {
                self.u8(0);
                self.u64(*declared);
                self.u64(*max);
            }
            TransportError::IdleTimeout { idle_ms } => {
                self.u8(1);
                self.u64(*idle_ms);
            }
            TransportError::Overloaded { retry_after_ms } => {
                self.u8(2);
                self.u64(*retry_after_ms);
            }
        }
    }

    fn store_error(&mut self, e: &StoreError) {
        match e {
            StoreError::LevelCountMismatch { expected, found } => {
                self.u8(0);
                self.u64(*expected as u64);
                self.u64(*found as u64);
            }
            StoreError::IndexSizeMismatch { expected, found } => {
                self.u8(1);
                self.u64(*expected as u64);
                self.u64(*found as u64);
            }
            StoreError::DuplicateDocument(id) => {
                self.u8(2);
                self.u64(*id);
            }
        }
    }

    fn persistence_error(&mut self, e: &PersistenceError) {
        match e {
            PersistenceError::BadMagic => self.u8(0),
            PersistenceError::UnsupportedVersion(v) => {
                self.u8(1);
                self.u16(*v);
            }
            PersistenceError::Truncated => self.u8(2),
            PersistenceError::ParameterMismatch {
                expected_r,
                found_r,
                expected_eta,
                found_eta,
            } => {
                self.u8(3);
                self.u64(*expected_r as u64);
                self.u64(*found_r as u64);
                self.u64(*expected_eta as u64);
                self.u64(*found_eta as u64);
            }
            PersistenceError::Store(e) => {
                self.u8(4);
                self.store_error(e);
            }
        }
    }

    fn codec_error(&mut self, e: &CodecError) {
        match e {
            CodecError::Truncated => self.u8(0),
            CodecError::UnknownVersion(v) => {
                self.u8(1);
                self.u8(*v);
            }
            CodecError::UnknownKind(k) => {
                self.u8(2);
                self.u8(*k);
            }
            CodecError::Malformed(msg) => {
                self.u8(3);
                self.string(msg);
            }
            CodecError::ResponseMismatch { expected, found } => {
                self.u8(4);
                self.string(expected);
                self.string(found);
            }
        }
    }
}

impl Reader<'_> {
    fn protocol_error(&mut self) -> Result<ProtocolError, CodecError> {
        Ok(match self.u8()? {
            0 => ProtocolError::BadSignature,
            1 => ProtocolError::UnknownDocument(self.u64()?),
            2 => ProtocolError::Crypto(self.string()?),
            3 => ProtocolError::NotEnoughMatches {
                requested: self.u64()? as usize,
                available: self.u64()? as usize,
            },
            4 => ProtocolError::Store(self.store_error()?),
            5 => ProtocolError::Persistence(self.persistence_error()?),
            6 => ProtocolError::Codec(self.codec_error()?),
            7 => ProtocolError::Unsupported(self.string()?),
            8 => ProtocolError::Transport(self.transport_error()?),
            other => return Err(CodecError::Malformed(format!("protocol-error tag {other}"))),
        })
    }

    fn transport_error(&mut self) -> Result<TransportError, CodecError> {
        Ok(match self.u8()? {
            0 => TransportError::FrameTooLarge {
                declared: self.u64()?,
                max: self.u64()?,
            },
            1 => TransportError::IdleTimeout {
                idle_ms: self.u64()?,
            },
            2 => TransportError::Overloaded {
                retry_after_ms: self.u64()?,
            },
            other => {
                return Err(CodecError::Malformed(format!(
                    "transport-error tag {other}"
                )))
            }
        })
    }

    fn store_error(&mut self) -> Result<StoreError, CodecError> {
        Ok(match self.u8()? {
            0 => StoreError::LevelCountMismatch {
                expected: self.u64()? as usize,
                found: self.u64()? as usize,
            },
            1 => StoreError::IndexSizeMismatch {
                expected: self.u64()? as usize,
                found: self.u64()? as usize,
            },
            2 => StoreError::DuplicateDocument(self.u64()?),
            other => return Err(CodecError::Malformed(format!("store-error tag {other}"))),
        })
    }

    fn persistence_error(&mut self) -> Result<PersistenceError, CodecError> {
        Ok(match self.u8()? {
            0 => PersistenceError::BadMagic,
            1 => PersistenceError::UnsupportedVersion(self.u16()?),
            2 => PersistenceError::Truncated,
            3 => PersistenceError::ParameterMismatch {
                expected_r: self.u64()? as usize,
                found_r: self.u64()? as usize,
                expected_eta: self.u64()? as usize,
                found_eta: self.u64()? as usize,
            },
            4 => PersistenceError::Store(self.store_error()?),
            other => {
                return Err(CodecError::Malformed(format!(
                    "persistence-error tag {other}"
                )))
            }
        })
    }

    fn codec_error(&mut self) -> Result<CodecError, CodecError> {
        Ok(match self.u8()? {
            0 => CodecError::Truncated,
            1 => CodecError::UnknownVersion(self.u8()?),
            2 => CodecError::UnknownKind(self.u8()?),
            3 => CodecError::Malformed(self.string()?),
            4 => CodecError::ResponseMismatch {
                expected: self.string()?,
                found: self.string()?,
            },
            other => return Err(CodecError::Malformed(format!("codec-error tag {other}"))),
        })
    }
}

// --- primitive writer/reader -------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Start a frame: reserve the length prefix, write version, id, kind.
    fn new(request_id: u64, kind: u8) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&[0u8; 4]); // length prefix backpatched in finish()
        buf.push(PROTOCOL_VERSION);
        buf.extend_from_slice(&request_id.to_le_bytes());
        buf.push(kind);
        Writer { buf }
    }

    fn finish(mut self) -> Vec<u8> {
        // Frames are capped at u32::MAX payload bytes. Failing loudly here
        // beats silently wrapping the prefix into a corrupt stream — a >4 GiB
        // upload must be split by the caller, not mis-framed.
        let len = u32::try_from(self.buf.len() - 4)
            .expect("frame payload exceeds the u32 length prefix; split the request");
        self.buf[..4].copy_from_slice(&len.to_le_bytes());
        self.buf
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
        }
    }

    fn bytes(&mut self, v: &[u8]) {
        let len = u32::try_from(v.len())
            .expect("byte section exceeds the u32 length prefix; split the request");
        self.u32(len);
        self.buf.extend_from_slice(v);
    }

    fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    fn bitindex(&mut self, v: &BitIndex) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(&v.to_bytes());
    }

    fn biguint(&mut self, v: &BigUint) {
        self.bytes(&v.to_bytes_be());
    }

    fn ranked_index(&mut self, idx: &RankedDocumentIndex) {
        self.u64(idx.document_id);
        self.u16(idx.levels.len() as u16);
        for level in &idx.levels {
            self.bitindex(level);
        }
    }

    fn transfer(&mut self, doc: &EncryptedDocumentTransfer) {
        self.u64(doc.document_id);
        self.bytes(&doc.ciphertext);
        self.biguint(&doc.encrypted_key);
    }

    fn cache_report(&mut self, report: &CacheReport) {
        self.u64(report.shard_hits);
        self.u64(report.shard_misses);
        self.u64(report.saved_comparisons);
        self.u8(report.served_from_cache as u8);
    }

    fn search_reply(&mut self, reply: &SearchReply) {
        self.u32(reply.matches.len() as u32);
        for m in &reply.matches {
            self.u64(m.document_id);
            self.u32(m.rank);
            self.u16(m.metadata.len() as u16);
            for level in &m.metadata {
                self.bitindex(level);
            }
        }
        self.cache_report(&reply.cache);
    }

    fn metrics_snapshot(&mut self, snapshot: &MetricsSnapshot) {
        self.u8(snapshot.level as u8);
        self.u32(snapshot.counters.len() as u32);
        for (name, value) in &snapshot.counters {
            self.string(name);
            self.u64(*value);
        }
        self.u32(snapshot.gauges.len() as u32);
        for (name, value) in &snapshot.gauges {
            self.string(name);
            self.u64(*value);
        }
        self.u32(snapshot.histograms.len() as u32);
        for h in &snapshot.histograms {
            self.string(&h.stage);
            self.u64(h.count);
            self.u64(h.sum_ns);
            self.u32(h.buckets.len() as u32);
            for b in &h.buckets {
                self.u64(*b);
            }
        }
        self.u32(snapshot.values.len() as u32);
        for v in &snapshot.values {
            self.string(&v.series);
            self.u64(v.count);
            self.u64(v.sum);
            self.u32(v.buckets.len() as u32);
            for b in &v.buckets {
                self.u64(*b);
            }
        }
        self.u32(snapshot.lanes.len() as u32);
        for lane in &snapshot.lanes {
            self.u32(lane.lane);
            self.u64(lane.executed);
            self.u64(lane.stolen);
            self.u64(lane.failed_steals);
            self.u64(lane.idle_polls);
        }
        self.u32(snapshot.shard_caches.len() as u32);
        for shard in &snapshot.shard_caches {
            self.u32(shard.shard);
            self.u64(shard.hits);
            self.u64(shard.misses);
            self.u64(shard.invalidations);
        }
        self.u32(snapshot.connections.len() as u32);
        for conn in &snapshot.connections {
            self.u32(conn.connection);
            self.u64(conn.frames_in);
            self.u64(conn.frames_out);
            self.u64(conn.bytes_in);
            self.u64(conn.bytes_out);
        }
    }

    fn counters(&mut self, c: &OperationCounters) {
        self.u64(c.hashes);
        self.u64(c.bitwise_products);
        self.u64(c.modular_exponentiations);
        self.u64(c.modular_multiplications);
        self.u64(c.symmetric_encryptions);
        self.u64(c.symmetric_decryptions);
        self.u64(c.binary_comparisons);
        self.u64(c.comparisons_saved_by_cache);
        self.u64(c.cache_served_replies);
        self.u64(c.requests_served);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() - self.pos < len {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    fn expect_end(&self) -> Result<(), CodecError> {
        if self.pos != self.buf.len() {
            return Err(CodecError::Malformed(format!(
                "{} trailing bytes after the envelope body",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Malformed(format!("boolean byte {other}"))),
        }
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            other => Err(CodecError::Malformed(format!("option tag {other}"))),
        }
    }

    fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String, CodecError> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes).map_err(|_| CodecError::Malformed("non-UTF-8 string".to_string()))
    }

    fn bitindex(&mut self) -> Result<BitIndex, CodecError> {
        let bits = self.u32()? as usize;
        if bits == 0 {
            return Err(CodecError::Malformed("zero-length bit index".to_string()));
        }
        let bytes = self.take(bits.div_ceil(8))?;
        Ok(BitIndex::from_bytes(bytes, bits))
    }

    fn biguint(&mut self) -> Result<BigUint, CodecError> {
        let bytes = self.bytes()?;
        Ok(BigUint::from_bytes_be(&bytes))
    }

    fn ranked_index(&mut self) -> Result<RankedDocumentIndex, CodecError> {
        let document_id = self.u64()?;
        let n = self.u16()? as usize;
        let mut levels = Vec::new();
        for _ in 0..n {
            levels.push(self.bitindex()?);
        }
        Ok(RankedDocumentIndex {
            document_id,
            levels,
        })
    }

    fn transfer(&mut self) -> Result<EncryptedDocumentTransfer, CodecError> {
        Ok(EncryptedDocumentTransfer {
            document_id: self.u64()?,
            ciphertext: self.bytes()?,
            encrypted_key: self.biguint()?,
        })
    }

    fn metrics_snapshot(&mut self) -> Result<MetricsSnapshot, CodecError> {
        let level_byte = self.u8()?;
        let level = TelemetryLevel::from_u8(level_byte)
            .ok_or_else(|| CodecError::Malformed(format!("telemetry level byte {level_byte}")))?;
        let n = self.u32()? as usize;
        let mut counters = Vec::new();
        for _ in 0..n {
            counters.push((self.string()?, self.u64()?));
        }
        let n = self.u32()? as usize;
        let mut gauges = Vec::new();
        for _ in 0..n {
            gauges.push((self.string()?, self.u64()?));
        }
        let n = self.u32()? as usize;
        let mut histograms = Vec::new();
        for _ in 0..n {
            let stage = self.string()?;
            let count = self.u64()?;
            let sum_ns = self.u64()?;
            let b = self.u32()? as usize;
            let mut buckets = Vec::new();
            for _ in 0..b {
                buckets.push(self.u64()?);
            }
            histograms.push(HistogramSnapshot {
                stage,
                count,
                sum_ns,
                buckets,
            });
        }
        let n = self.u32()? as usize;
        let mut values = Vec::new();
        for _ in 0..n {
            let series = self.string()?;
            let count = self.u64()?;
            let sum = self.u64()?;
            let b = self.u32()? as usize;
            let mut buckets = Vec::new();
            for _ in 0..b {
                buckets.push(self.u64()?);
            }
            values.push(ValueHistogramSnapshot {
                series,
                count,
                sum,
                buckets,
            });
        }
        let n = self.u32()? as usize;
        let mut lanes = Vec::new();
        for _ in 0..n {
            lanes.push(LaneSnapshot {
                lane: self.u32()?,
                executed: self.u64()?,
                stolen: self.u64()?,
                failed_steals: self.u64()?,
                idle_polls: self.u64()?,
            });
        }
        let n = self.u32()? as usize;
        let mut shard_caches = Vec::new();
        for _ in 0..n {
            shard_caches.push(ShardCacheSnapshot {
                shard: self.u32()?,
                hits: self.u64()?,
                misses: self.u64()?,
                invalidations: self.u64()?,
            });
        }
        let n = self.u32()? as usize;
        let mut connections = Vec::new();
        for _ in 0..n {
            connections.push(ConnectionSnapshot {
                connection: self.u32()?,
                frames_in: self.u64()?,
                frames_out: self.u64()?,
                bytes_in: self.u64()?,
                bytes_out: self.u64()?,
            });
        }
        Ok(MetricsSnapshot {
            level,
            counters,
            gauges,
            histograms,
            values,
            lanes,
            shard_caches,
            connections,
        })
    }

    fn cache_report(&mut self) -> Result<CacheReport, CodecError> {
        Ok(CacheReport {
            shard_hits: self.u64()?,
            shard_misses: self.u64()?,
            saved_comparisons: self.u64()?,
            served_from_cache: self.bool()?,
        })
    }

    fn search_reply(&mut self) -> Result<SearchReply, CodecError> {
        let n = self.u32()? as usize;
        let mut matches = Vec::new();
        for _ in 0..n {
            let document_id = self.u64()?;
            let rank = self.u32()?;
            let levels = self.u16()? as usize;
            let mut metadata = Vec::new();
            for _ in 0..levels {
                metadata.push(self.bitindex()?);
            }
            matches.push(SearchResultEntry {
                document_id,
                rank,
                metadata,
            });
        }
        let cache = self.cache_report()?;
        Ok(SearchReply { matches, cache })
    }

    fn counters(&mut self) -> Result<OperationCounters, CodecError> {
        Ok(OperationCounters {
            hashes: self.u64()?,
            bitwise_products: self.u64()?,
            modular_exponentiations: self.u64()?,
            modular_multiplications: self.u64()?,
            symmetric_encryptions: self.u64()?,
            symmetric_decryptions: self.u64()?,
            binary_comparisons: self.u64()?,
            comparisons_saved_by_cache: self.u64()?,
            cache_served_replies: self.u64()?,
            requests_served: self.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn arb_bitindex(rng: &mut StdRng) -> BitIndex {
        let len = rng.gen_range(1usize..512);
        let bits: Vec<bool> = (0..len).map(|_| rng.gen_range(0u8..2) == 1).collect();
        BitIndex::from_bits(&bits)
    }

    fn arb_biguint(rng: &mut StdRng) -> BigUint {
        BigUint::from_u64(rng.gen_range(0u64..u64::MAX))
    }

    fn arb_string(rng: &mut StdRng) -> String {
        let len = rng.gen_range(0usize..24);
        (0..len)
            .map(|_| char::from(rng.gen_range(b'a'..=b'z')))
            .collect()
    }

    fn arb_signature(rng: &mut StdRng) -> RsaSignature {
        RsaSignature::from_value(arb_biguint(rng))
    }

    fn arb_transfer(rng: &mut StdRng) -> EncryptedDocumentTransfer {
        let len = rng.gen_range(0usize..64);
        EncryptedDocumentTransfer {
            document_id: rng.gen_range(0u64..1 << 32),
            ciphertext: (0..len).map(|_| rng.gen_range(0u8..=255)).collect(),
            encrypted_key: arb_biguint(rng),
        }
    }

    fn arb_ranked_index(rng: &mut StdRng) -> RankedDocumentIndex {
        // A shared bit length per index mirrors real stores; the codec itself
        // does not require it.
        let levels = rng.gen_range(1usize..4);
        RankedDocumentIndex {
            document_id: rng.gen_range(0u64..1 << 32),
            levels: (0..levels).map(|_| arb_bitindex(rng)).collect(),
        }
    }

    fn arb_search_reply(rng: &mut StdRng) -> SearchReply {
        let matches = rng.gen_range(0usize..4);
        SearchReply {
            matches: (0..matches)
                .map(|_| SearchResultEntry {
                    document_id: rng.gen_range(0u64..1 << 32),
                    rank: rng.gen_range(0u32..6),
                    metadata: (0..rng.gen_range(0usize..3))
                        .map(|_| arb_bitindex(rng))
                        .collect(),
                })
                .collect(),
            cache: CacheReport {
                shard_hits: rng.gen_range(0u64..100),
                shard_misses: rng.gen_range(0u64..100),
                saved_comparisons: rng.gen_range(0u64..100_000),
                served_from_cache: rng.gen_range(0u8..2) == 1,
            },
        }
    }

    fn arb_counters(rng: &mut StdRng) -> OperationCounters {
        OperationCounters {
            hashes: rng.gen_range(0u64..1000),
            bitwise_products: rng.gen_range(0u64..1000),
            modular_exponentiations: rng.gen_range(0u64..1000),
            modular_multiplications: rng.gen_range(0u64..1000),
            symmetric_encryptions: rng.gen_range(0u64..1000),
            symmetric_decryptions: rng.gen_range(0u64..1000),
            binary_comparisons: rng.gen_range(0u64..1000),
            comparisons_saved_by_cache: rng.gen_range(0u64..1000),
            cache_served_replies: rng.gen_range(0u64..1000),
            requests_served: rng.gen_range(0u64..1000),
        }
    }

    fn arb_store_error(rng: &mut StdRng) -> StoreError {
        match rng.gen_range(0u8..3) {
            0 => StoreError::LevelCountMismatch {
                expected: rng.gen_range(0usize..10),
                found: rng.gen_range(0usize..10),
            },
            1 => StoreError::IndexSizeMismatch {
                expected: rng.gen_range(0usize..1000),
                found: rng.gen_range(0usize..1000),
            },
            _ => StoreError::DuplicateDocument(rng.gen_range(0u64..1 << 32)),
        }
    }

    fn arb_protocol_error(rng: &mut StdRng) -> ProtocolError {
        match rng.gen_range(0u8..9) {
            0 => ProtocolError::BadSignature,
            1 => ProtocolError::UnknownDocument(rng.gen_range(0u64..1 << 32)),
            2 => ProtocolError::Crypto(arb_string(rng)),
            3 => ProtocolError::NotEnoughMatches {
                requested: rng.gen_range(0usize..100),
                available: rng.gen_range(0usize..100),
            },
            4 => ProtocolError::Store(arb_store_error(rng)),
            5 => ProtocolError::Persistence(match rng.gen_range(0u8..5) {
                0 => PersistenceError::BadMagic,
                1 => PersistenceError::UnsupportedVersion(rng.gen_range(0u16..u16::MAX)),
                2 => PersistenceError::Truncated,
                3 => PersistenceError::ParameterMismatch {
                    expected_r: rng.gen_range(0usize..1000),
                    found_r: rng.gen_range(0usize..1000),
                    expected_eta: rng.gen_range(0usize..10),
                    found_eta: rng.gen_range(0usize..10),
                },
                _ => PersistenceError::Store(arb_store_error(rng)),
            }),
            6 => ProtocolError::Codec(match rng.gen_range(0u8..5) {
                0 => CodecError::Truncated,
                1 => CodecError::UnknownVersion(rng.gen_range(0u8..=255)),
                2 => CodecError::UnknownKind(rng.gen_range(0u8..=255)),
                3 => CodecError::Malformed(arb_string(rng)),
                _ => CodecError::ResponseMismatch {
                    expected: arb_string(rng),
                    found: arb_string(rng),
                },
            }),
            7 => ProtocolError::Transport(match rng.gen_range(0u8..3) {
                0 => TransportError::FrameTooLarge {
                    declared: rng.gen_range(0u64..u64::MAX),
                    max: rng.gen_range(0u64..1 << 40),
                },
                1 => TransportError::IdleTimeout {
                    idle_ms: rng.gen_range(0u64..1 << 32),
                },
                _ => TransportError::Overloaded {
                    retry_after_ms: rng.gen_range(0u64..1 << 32),
                },
            }),
            _ => ProtocolError::Unsupported(arb_string(rng)),
        }
    }

    /// One instance of EVERY request variant, randomized content.
    fn all_requests(rng: &mut StdRng) -> Vec<Request> {
        vec![
            Request::Trapdoor(TrapdoorRequest {
                user_id: rng.gen_range(0u64..1 << 32),
                bin_ids: (0..rng.gen_range(0usize..6))
                    .map(|_| rng.gen_range(0u32..1 << 16))
                    .collect(),
                signature: arb_signature(rng),
            }),
            Request::Query(QueryMessage {
                query: arb_bitindex(rng),
                top: if rng.gen_range(0u8..2) == 1 {
                    Some(rng.gen_range(0usize..100))
                } else {
                    None
                },
            }),
            Request::BatchQuery(BatchQueryMessage {
                queries: (0..rng.gen_range(0usize..5))
                    .map(|_| arb_bitindex(rng))
                    .collect(),
                top: Some(rng.gen_range(0usize..10)),
            }),
            Request::Documents(DocumentRequest {
                document_ids: (0..rng.gen_range(0usize..6))
                    .map(|_| rng.gen_range(0u64..1 << 32))
                    .collect(),
            }),
            Request::BlindDecrypt(BlindDecryptRequest {
                user_id: rng.gen_range(0u64..1 << 32),
                blinded_ciphertext: arb_biguint(rng),
                signature: arb_signature(rng),
            }),
            Request::Upload(UploadMessage {
                indices: (0..rng.gen_range(0usize..3))
                    .map(|_| arb_ranked_index(rng))
                    .collect(),
                documents: (0..rng.gen_range(0usize..3))
                    .map(|_| arb_transfer(rng))
                    .collect(),
            }),
            Request::EnableCache {
                capacity_per_shard: rng.gen_range(0u64..1 << 20),
            },
            Request::DisableCache,
            Request::CacheStats,
            Request::SnapshotIndex,
            Request::RestoreIndex(
                (0..rng.gen_range(0usize..64))
                    .map(|_| rng.gen_range(0u8..=255))
                    .collect(),
            ),
            Request::Counters,
            Request::ResetCounters,
            Request::ServerInfo,
            Request::MetricsSnapshot,
            Request::RegisterNode(arb_node_registration(rng)),
            Request::NodeHeartbeat(NodeHeartbeat {
                node_id: rng.gen_range(0u64..1 << 32),
                metrics: arb_metrics_snapshot(rng),
            }),
        ]
    }

    fn arb_node_registration(rng: &mut StdRng) -> NodeRegistration {
        NodeRegistration {
            node_id: rng.gen_range(0u64..1 << 32),
            capabilities: NodeCapabilities {
                shard_slots: rng.gen_range(0u32..64),
                scan_lanes: rng.gen_range(0u32..32),
                cache_capacity: rng.gen_range(0u64..1 << 20),
            },
        }
    }

    fn arb_shard_assignment(rng: &mut StdRng) -> ShardAssignment {
        ShardAssignment {
            node_id: rng.gen_range(0u64..1 << 32),
            shards: (0..rng.gen_range(0usize..8))
                .map(|_| rng.gen_range(0u32..64))
                .collect(),
            epoch: rng.gen_range(0u64..1 << 40),
            heartbeat_interval_ms: rng.gen_range(0u64..1 << 20),
            failure_deadline_ms: rng.gen_range(0u64..1 << 20),
        }
    }

    fn arb_metrics_snapshot(rng: &mut StdRng) -> MetricsSnapshot {
        let level = match rng.gen_range(0u8..3) {
            0 => TelemetryLevel::Off,
            1 => TelemetryLevel::Counters,
            _ => TelemetryLevel::Spans,
        };
        MetricsSnapshot {
            level,
            counters: (0..rng.gen_range(0usize..5))
                .map(|_| (arb_string(rng), rng.gen_range(0u64..1 << 40)))
                .collect(),
            gauges: (0..rng.gen_range(0usize..4))
                .map(|_| (arb_string(rng), rng.gen_range(0u64..1 << 40)))
                .collect(),
            histograms: (0..rng.gen_range(0usize..3))
                .map(|_| HistogramSnapshot {
                    stage: arb_string(rng),
                    count: rng.gen_range(0u64..1 << 30),
                    sum_ns: rng.gen_range(0u64..1 << 50),
                    buckets: (0..rng.gen_range(0usize..64))
                        .map(|_| rng.gen_range(0u64..1 << 30))
                        .collect(),
                })
                .collect(),
            values: (0..rng.gen_range(0usize..3))
                .map(|_| ValueHistogramSnapshot {
                    series: arb_string(rng),
                    count: rng.gen_range(0u64..1 << 30),
                    sum: rng.gen_range(0u64..1 << 50),
                    buckets: (0..rng.gen_range(0usize..64))
                        .map(|_| rng.gen_range(0u64..1 << 30))
                        .collect(),
                })
                .collect(),
            lanes: (0..rng.gen_range(0usize..4))
                .map(|_| LaneSnapshot {
                    lane: rng.gen_range(0u32..32),
                    executed: rng.gen_range(0u64..1 << 30),
                    stolen: rng.gen_range(0u64..1 << 30),
                    failed_steals: rng.gen_range(0u64..1 << 30),
                    idle_polls: rng.gen_range(0u64..1 << 30),
                })
                .collect(),
            shard_caches: (0..rng.gen_range(0usize..4))
                .map(|_| ShardCacheSnapshot {
                    shard: rng.gen_range(0u32..64),
                    hits: rng.gen_range(0u64..1 << 30),
                    misses: rng.gen_range(0u64..1 << 30),
                    invalidations: rng.gen_range(0u64..1 << 30),
                })
                .collect(),
            connections: (0..rng.gen_range(0usize..4))
                .map(|_| ConnectionSnapshot {
                    connection: rng.gen_range(0u32..64),
                    frames_in: rng.gen_range(0u64..1 << 30),
                    frames_out: rng.gen_range(0u64..1 << 30),
                    bytes_in: rng.gen_range(0u64..1 << 40),
                    bytes_out: rng.gen_range(0u64..1 << 40),
                })
                .collect(),
        }
    }

    /// One instance of EVERY response variant, randomized content.
    fn all_responses(rng: &mut StdRng) -> Vec<Response> {
        vec![
            Response::Search(arb_search_reply(rng)),
            Response::BatchSearch(BatchSearchReply {
                replies: (0..rng.gen_range(0usize..3))
                    .map(|_| arb_search_reply(rng))
                    .collect(),
            }),
            Response::Documents(DocumentReply {
                documents: (0..rng.gen_range(0usize..3))
                    .map(|_| arb_transfer(rng))
                    .collect(),
            }),
            Response::Trapdoor(TrapdoorReply {
                encrypted_bin_keys: (0..rng.gen_range(0usize..4))
                    .map(|_| (rng.gen_range(0u32..1 << 16), arb_biguint(rng)))
                    .collect(),
            }),
            Response::BlindDecrypt(BlindDecryptReply {
                blinded_plaintext: arb_biguint(rng),
            }),
            Response::Uploaded {
                documents: rng.gen_range(0u64..1 << 40),
            },
            Response::Ack,
            Response::CacheStats(if rng.gen_range(0u8..2) == 1 {
                Some(CacheStats {
                    hits: rng.gen_range(0u64..1000),
                    misses: rng.gen_range(0u64..1000),
                    evictions: rng.gen_range(0u64..1000),
                    invalidations: rng.gen_range(0u64..1000),
                    saved_comparisons: rng.gen_range(0u64..100_000),
                })
            } else {
                None
            }),
            Response::Snapshot(
                (0..rng.gen_range(0usize..64))
                    .map(|_| rng.gen_range(0u8..=255))
                    .collect(),
            ),
            Response::Restored {
                documents: rng.gen_range(0u64..1 << 40),
            },
            Response::Counters(arb_counters(rng)),
            Response::Info(ServerInfo {
                shards: rng.gen_range(1u64..64),
                documents: rng.gen_range(0u64..1 << 40),
                index_bits: rng.gen_range(1u64..1024),
                rank_levels: rng.gen_range(1u64..8),
                cache_enabled: rng.gen_range(0u8..2) == 1,
            }),
            Response::MetricsReport(arb_metrics_snapshot(rng)),
            Response::ShardAssignment(arb_shard_assignment(rng)),
            Response::Error(arb_protocol_error(rng)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_every_request_variant_round_trips(seed in 0u64..1 << 48) {
            let mut rng = StdRng::seed_from_u64(seed);
            for request in all_requests(&mut rng) {
                let id = rng.gen_range(0u64..u64::MAX);
                let frame = encode_request(id, &request);
                let (payload, rest) = split_frame(&frame).unwrap().unwrap();
                prop_assert!(rest.is_empty());
                let (decoded_id, decoded) = decode_request(payload).unwrap();
                prop_assert_eq!(decoded_id, id);
                prop_assert_eq!(decoded, request);
            }
        }

        #[test]
        fn prop_every_response_variant_round_trips(seed in 0u64..1 << 48) {
            let mut rng = StdRng::seed_from_u64(seed);
            for response in all_responses(&mut rng) {
                let id = rng.gen_range(0u64..u64::MAX);
                let frame = encode_response(id, &response);
                let (payload, rest) = split_frame(&frame).unwrap().unwrap();
                prop_assert!(rest.is_empty());
                let (decoded_id, decoded) = decode_response(payload).unwrap();
                prop_assert_eq!(decoded_id, id);
                prop_assert_eq!(decoded, response);
            }
        }

        #[test]
        fn prop_truncated_frames_decode_to_typed_errors(seed in 0u64..1 << 48) {
            let mut rng = StdRng::seed_from_u64(seed);
            let requests = all_requests(&mut rng);
            let request = &requests[rng.gen_range(0usize..requests.len())];
            let frame = encode_request(9, request);
            for cut in 0..frame.len() {
                match split_frame(&frame[..cut]) {
                    Ok(None) => prop_assert_eq!(cut, 0),
                    Ok(Some(_)) => prop_assert!(false, "truncation at {} yielded a frame", cut),
                    Err(e) => prop_assert_eq!(e, CodecError::Truncated),
                }
            }
            // Truncating the payload itself (bypassing the length prefix) must
            // also fail typed, never panic.
            let (payload, _) = split_frame(&frame).unwrap().unwrap();
            for cut in 0..payload.len() {
                let result = decode_request(&payload[..cut]);
                prop_assert!(result.is_err(), "payload cut at {} decoded", cut);
            }
        }

        #[test]
        fn prop_corrupted_frames_never_panic(seed in 0u64..1 << 48) {
            let mut rng = StdRng::seed_from_u64(seed);
            let responses = all_responses(&mut rng);
            let response = &responses[rng.gen_range(0usize..responses.len())];
            let mut frame = encode_response(3, response);
            // Flip a handful of random bytes anywhere but the length prefix
            // (corrupting the length prefix is the truncation case above).
            for _ in 0..4 {
                let pos = rng.gen_range(4usize..frame.len());
                frame[pos] ^= 1 << rng.gen_range(0u32..8);
            }
            if let Ok(Some((payload, _))) = split_frame(&frame) {
                // Either a typed error or a (different but valid) value — the
                // property is the absence of panics and of silent trailing data.
                let _ = decode_response(payload);
            }
        }
    }

    #[test]
    fn unknown_version_and_kind_are_typed_errors() {
        let request = Request::CacheStats;
        let mut frame = encode_request(5, &request);
        frame[4] = 99; // version byte (after the 4-byte length prefix)
        let (payload, _) = split_frame(&frame).unwrap().unwrap();
        assert_eq!(decode_request(payload), Err(CodecError::UnknownVersion(99)));

        let mut frame = encode_request(5, &request);
        frame[13] = 0x7f; // kind byte: unknown request kind
        let (payload, _) = split_frame(&frame).unwrap().unwrap();
        assert_eq!(decode_request(payload), Err(CodecError::UnknownKind(0x7f)));

        // A response kind inside a request frame (and vice versa) is malformed.
        let response_frame = encode_response(5, &Response::Ack);
        let (payload, _) = split_frame(&response_frame).unwrap().unwrap();
        assert!(matches!(
            decode_request(payload),
            Err(CodecError::Malformed(_))
        ));
        let request_frame = encode_request(5, &request);
        let (payload, _) = split_frame(&request_frame).unwrap().unwrap();
        assert!(matches!(
            decode_response(payload),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let frame = encode_request(1, &Request::DisableCache);
        let mut padded = frame.clone();
        padded.extend_from_slice(&[0xaa, 0xbb]);
        // Extend the length prefix to cover the garbage.
        let len = (padded.len() - 4) as u32;
        padded[..4].copy_from_slice(&len.to_le_bytes());
        let (payload, _) = split_frame(&padded).unwrap().unwrap();
        assert!(matches!(
            decode_request(payload),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn frame_streams_decode_in_order() {
        let a = encode_request(1, &Request::CacheStats);
        let b = encode_request(2, &Request::ServerInfo);
        let wire: Vec<u8> = [a, b].concat();
        let decoded = decode_request_stream(&wire).unwrap();
        assert_eq!(
            decoded,
            vec![(1, Request::CacheStats), (2, Request::ServerInfo)]
        );
        assert!(decode_request_stream(&wire[..wire.len() - 1]).is_err());
    }

    #[test]
    fn metrics_report_rejects_unknown_telemetry_level() {
        let mut rng = StdRng::seed_from_u64(11);
        let snapshot = arb_metrics_snapshot(&mut rng);
        let frame = encode_response(7, &Response::MetricsReport(snapshot));
        let (payload, _) = split_frame(&frame).unwrap().unwrap();
        // The level byte leads the body, right after the 10-byte payload
        // header (version u8 + request_id u64 + kind u8).
        let mut corrupted = payload.to_vec();
        corrupted[10] = 9;
        assert!(matches!(
            decode_response(&corrupted),
            Err(CodecError::Malformed(msg)) if msg.contains("telemetry level")
        ));
    }

    #[test]
    fn overloaded_transport_error_round_trips() {
        for &variant in &[
            TransportError::Overloaded { retry_after_ms: 0 },
            TransportError::Overloaded { retry_after_ms: 2 },
            TransportError::Overloaded {
                retry_after_ms: u64::MAX,
            },
            TransportError::FrameTooLarge {
                declared: 1 << 33,
                max: 1 << 20,
            },
            TransportError::IdleTimeout { idle_ms: 30_000 },
        ] {
            let response = Response::Error(ProtocolError::Transport(variant));
            let frame = encode_response(42, &response);
            let (payload, rest) = split_frame(&frame).unwrap().unwrap();
            assert!(rest.is_empty());
            let (id, decoded) = decode_response(payload).unwrap();
            assert_eq!(id, 42);
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn corrupt_transport_error_tag_is_rejected() {
        let response = Response::Error(ProtocolError::Transport(TransportError::Overloaded {
            retry_after_ms: 2,
        }));
        let frame = encode_response(42, &response);
        let (payload, _) = split_frame(&frame).unwrap().unwrap();
        // Payload layout: 10-byte header (version u8 + request_id u64 + kind
        // u8), then the protocol-error tag (8 = Transport) at [10] and the
        // transport-error tag at [11].
        assert_eq!(payload[10], 8);
        assert_eq!(payload[11], 2);
        let mut corrupted = payload.to_vec();
        corrupted[11] = 9;
        assert!(matches!(
            decode_response(&corrupted),
            Err(CodecError::Malformed(msg)) if msg.contains("transport-error tag 9")
        ));
        // Truncating the retry hint mid-u64 is a typed Truncated, not a panic.
        assert!(matches!(
            decode_response(&payload[..payload.len() - 3]),
            Err(CodecError::Truncated)
        ));
    }

    #[test]
    fn fleet_envelopes_round_trip_and_reject_corruption() {
        let mut rng = StdRng::seed_from_u64(23);
        let register = Request::RegisterNode(arb_node_registration(&mut rng));
        let beat = Request::NodeHeartbeat(NodeHeartbeat {
            node_id: 9,
            metrics: arb_metrics_snapshot(&mut rng),
        });
        let assignment = Response::ShardAssignment(arb_shard_assignment(&mut rng));

        for request in [&register, &beat] {
            let frame = encode_request(17, request);
            let (payload, rest) = split_frame(&frame).unwrap().unwrap();
            assert!(rest.is_empty());
            let (id, decoded) = decode_request(payload).unwrap();
            assert_eq!(id, 17);
            assert_eq!(&decoded, request);
            // Every payload truncation is a typed error, never a panic.
            for cut in 0..payload.len() {
                assert!(decode_request(&payload[..cut]).is_err(), "cut at {cut}");
            }
        }

        let frame = encode_response(17, &assignment);
        let (payload, rest) = split_frame(&frame).unwrap().unwrap();
        assert!(rest.is_empty());
        assert_eq!(decode_response(payload).unwrap(), (17, assignment));
        for cut in 0..payload.len() {
            assert!(decode_response(&payload[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn heartbeat_rejects_unknown_telemetry_level() {
        let mut rng = StdRng::seed_from_u64(29);
        let beat = Request::NodeHeartbeat(NodeHeartbeat {
            node_id: 3,
            metrics: arb_metrics_snapshot(&mut rng),
        });
        let frame = encode_request(7, &beat);
        let (payload, _) = split_frame(&frame).unwrap().unwrap();
        // Body layout: node_id u64 at [10..18], then the metrics snapshot
        // whose level byte leads it at [18].
        let mut corrupted = payload.to_vec();
        corrupted[18] = 9;
        assert!(matches!(
            decode_request(&corrupted),
            Err(CodecError::Malformed(msg)) if msg.contains("telemetry level")
        ));
    }

    #[test]
    fn shard_assignment_rejects_trailing_garbage() {
        let assignment = Response::ShardAssignment(ShardAssignment {
            node_id: 1,
            shards: vec![0, 2],
            epoch: 4,
            heartbeat_interval_ms: 50,
            failure_deadline_ms: 200,
        });
        let mut frame = encode_response(3, &assignment);
        frame.extend_from_slice(&[0x5a]);
        let len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&len.to_le_bytes());
        let (payload, _) = split_frame(&frame).unwrap().unwrap();
        assert!(matches!(
            decode_response(payload),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn codec_error_display() {
        assert!(CodecError::Truncated.to_string().contains("truncated"));
        assert!(CodecError::UnknownVersion(9).to_string().contains('9'));
        assert!(CodecError::UnknownKind(0x42).to_string().contains("42"));
        assert!(CodecError::Malformed("x".into()).to_string().contains('x'));
        assert!(CodecError::ResponseMismatch {
            expected: "Search".into(),
            found: "Ack".into()
        }
        .to_string()
        .contains("Search"));
    }
}
