//! The user actor (§3): obtains trapdoors, builds randomized queries, analyses results, and
//! retrieves documents through blinded key decryption.

use crate::counters::OperationCounters;
use crate::messages::{
    BatchQueryMessage, BlindDecryptReply, BlindDecryptRequest, DocumentRequest,
    EncryptedDocumentTransfer, QueryMessage, SearchReply, TrapdoorReply, TrapdoorRequest,
};
use crate::ProtocolError;
use mkse_core::bins::{bins_for_keywords, get_bin, BinId};
use mkse_core::keys::{trapdoor_from_bin_key, Trapdoor, BIN_KEY_LEN};
use mkse_core::params::SystemParams;
use mkse_core::query::QueryBuilder;
use mkse_crypto::aes::{AesCtr, KEY_SIZE};
use mkse_crypto::bigint::BigUint;
use mkse_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use rand::Rng;
use std::collections::BTreeMap;

/// Client-side state needed to finish a blinded decryption: the blinding factor `c`.
pub struct BlindingState {
    blinding: BigUint,
}

/// The user actor.
pub struct User {
    id: u64,
    params: SystemParams,
    /// The user's own RSA key pair, used to sign requests and to receive encrypted bin keys.
    rsa: RsaKeyPair,
    /// The data owner's public key, used for blinding.
    owner_public: RsaPublicKey,
    /// Bin keys learned so far (the user caches them — §3 notes the trapdoor exchange "does
    /// not need to be performed every time").
    bin_keys: BTreeMap<BinId, Vec<u8>>,
    /// Trapdoors of the random-keyword pool, shared by the data owner with authorized users.
    pool_trapdoors: Vec<Trapdoor>,
    counters: OperationCounters,
}

impl User {
    /// Create a user with a fresh signature key pair.
    pub fn new<R: Rng + ?Sized>(
        id: u64,
        params: SystemParams,
        owner_public: RsaPublicKey,
        rsa_modulus_bits: usize,
        rng: &mut R,
    ) -> Self {
        User {
            id,
            params,
            rsa: RsaKeyPair::generate(rsa_modulus_bits, rng),
            owner_public,
            bin_keys: BTreeMap::new(),
            pool_trapdoors: Vec::new(),
            counters: OperationCounters::new(),
        }
    }

    /// This user's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The user's public (verification/encryption) key, to be registered with the data owner.
    pub fn public_key(&self) -> &RsaPublicKey {
        self.rsa.public_key()
    }

    /// Receive the random-keyword-pool trapdoors from the data owner (authorization step).
    pub fn set_random_pool(&mut self, pool: Vec<Trapdoor>) {
        self.pool_trapdoors = pool;
    }

    /// Bins whose keys this user still needs for the given keywords.
    pub fn missing_bins(&self, keywords: &[&str]) -> Vec<BinId> {
        bins_for_keywords(&self.params, keywords)
            .into_iter()
            .filter(|b| !self.bin_keys.contains_key(b))
            .collect()
    }

    /// Build a signed trapdoor request for the given keywords (§4.2, step 1 of Figure 1).
    /// Returns `None` if every needed bin key is already cached.
    pub fn make_trapdoor_request(&mut self, keywords: &[&str]) -> Option<TrapdoorRequest> {
        let bins = self.missing_bins(keywords);
        if bins.is_empty() {
            return None;
        }
        let payload = TrapdoorRequest::signed_payload(self.id, &bins);
        self.counters.modular_exponentiations += 1; // signing
        Some(TrapdoorRequest {
            user_id: self.id,
            bin_ids: bins,
            signature: self.rsa.sign(&payload),
        })
    }

    /// Ingest the data owner's reply: decrypt each bin key with the user's private key and
    /// cache it.
    pub fn ingest_trapdoor_reply(&mut self, reply: &TrapdoorReply) -> Result<(), ProtocolError> {
        for (bin, ciphertext) in &reply.encrypted_bin_keys {
            let key = self.rsa.decrypt_value(ciphertext)?;
            self.counters.modular_exponentiations += 1;
            self.bin_keys
                .insert(*bin, key.to_bytes_be_padded(BIN_KEY_LEN));
        }
        Ok(())
    }

    /// Compute the trapdoor of one keyword from a cached bin key.
    pub fn trapdoor_for(&mut self, keyword: &str) -> Result<Trapdoor, ProtocolError> {
        let bin = get_bin(&self.params, keyword);
        let key = self.bin_keys.get(&bin).ok_or_else(|| {
            ProtocolError::Crypto(format!("missing bin key {bin} for keyword trapdoor"))
        })?;
        self.counters.hashes += 1;
        Ok(trapdoor_from_bin_key(&self.params, key, keyword))
    }

    /// Build the r-bit query index (with randomization when the pool is available) for the
    /// given keywords, requesting at most `top` matches.
    pub fn build_query<R: Rng + ?Sized>(
        &mut self,
        keywords: &[&str],
        top: Option<usize>,
        rng: &mut R,
    ) -> Result<QueryMessage, ProtocolError> {
        let mut trapdoors = Vec::with_capacity(keywords.len());
        for kw in keywords {
            trapdoors.push(self.trapdoor_for(kw)?);
        }
        self.counters.bitwise_products += keywords.len() as u64;
        let mut builder = QueryBuilder::new(&self.params).add_trapdoors(&trapdoors);
        if self.pool_trapdoors.len() >= self.params.query_random_keywords
            && self.params.query_random_keywords > 0
        {
            builder = builder.with_randomization(&self.pool_trapdoors);
            self.counters.bitwise_products += self.params.query_random_keywords as u64;
        }
        let query = builder.build(rng);
        Ok(QueryMessage {
            query: query.bits().clone(),
            top,
        })
    }

    /// Build one batched message carrying a query index per keyword set, so several
    /// logical searches travel in a single round trip. Every member query is built
    /// exactly like [`User::build_query`] builds it (randomization included), so the
    /// server's per-query answers are indistinguishable from individually sent ones.
    pub fn build_batch_query<R: Rng + ?Sized>(
        &mut self,
        keyword_sets: &[Vec<&str>],
        top: Option<usize>,
        rng: &mut R,
    ) -> Result<BatchQueryMessage, ProtocolError> {
        let mut queries = Vec::with_capacity(keyword_sets.len());
        for keywords in keyword_sets {
            queries.push(self.build_query(keywords, top, rng)?.query);
        }
        Ok(BatchQueryMessage { queries, top })
    }

    /// Pick the `theta` best-ranked documents out of a search reply.
    pub fn choose_documents(
        &self,
        reply: &SearchReply,
        theta: usize,
    ) -> Result<DocumentRequest, ProtocolError> {
        if reply.matches.len() < theta {
            return Err(ProtocolError::NotEnoughMatches {
                requested: theta,
                available: reply.matches.len(),
            });
        }
        Ok(DocumentRequest {
            document_ids: reply
                .matches
                .iter()
                .take(theta)
                .map(|m| m.document_id)
                .collect(),
        })
    }

    /// Start a blinded decryption of one RSA-encrypted document key (§4.4): blind, sign, and
    /// keep the blinding factor for [`User::finish_blind_decrypt`].
    pub fn begin_blind_decrypt<R: Rng + ?Sized>(
        &mut self,
        encrypted_key: &BigUint,
        rng: &mut R,
    ) -> Result<(BlindDecryptRequest, BlindingState), ProtocolError> {
        let blinding = self.owner_public.random_blinding(rng);
        let blinded = self.owner_public.blind(encrypted_key, &blinding)?;
        // Blinding costs one modular exponentiation (cᵉ) and one multiplication (·y).
        self.counters.modular_exponentiations += 1;
        self.counters.modular_multiplications += 1;
        let payload = BlindDecryptRequest::signed_payload(self.id, &blinded);
        self.counters.modular_exponentiations += 1; // signing
        Ok((
            BlindDecryptRequest {
                user_id: self.id,
                blinded_ciphertext: blinded,
                signature: self.rsa.sign(&payload),
            },
            BlindingState { blinding },
        ))
    }

    /// Finish a blinded decryption: unblind the owner's reply into the 128-bit document key.
    pub fn finish_blind_decrypt(
        &mut self,
        reply: &BlindDecryptReply,
        state: BlindingState,
    ) -> Result<[u8; KEY_SIZE], ProtocolError> {
        let recovered = self
            .owner_public
            .unblind(&reply.blinded_plaintext, &state.blinding)?;
        self.counters.modular_multiplications += 1; // multiplication by c⁻¹
        let bytes = recovered.to_bytes_be();
        if bytes.len() > KEY_SIZE {
            return Err(ProtocolError::Crypto(
                "recovered key longer than the symmetric key size".into(),
            ));
        }
        let mut key = [0u8; KEY_SIZE];
        key[KEY_SIZE - bytes.len()..].copy_from_slice(&bytes);
        Ok(key)
    }

    /// Decrypt a retrieved document with its recovered symmetric key.
    pub fn decrypt_document(
        &mut self,
        transfer: &EncryptedDocumentTransfer,
        key: &[u8; KEY_SIZE],
    ) -> Result<Vec<u8>, ProtocolError> {
        self.counters.symmetric_decryptions += 1;
        Ok(AesCtr::new(key).decrypt(&transfer.ciphertext)?)
    }

    /// Operation counters accumulated so far.
    pub fn counters(&self) -> &OperationCounters {
        &self.counters
    }

    /// Reset the counters.
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    /// Number of bin keys cached so far.
    pub fn cached_bins(&self) -> usize {
        self.bin_keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_owner::{DataOwner, OwnerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (DataOwner, User, StdRng) {
        let mut rng = StdRng::seed_from_u64(33);
        let mut owner = DataOwner::new(OwnerConfig::fast_for_tests(), &mut rng);
        let user = User::new(
            1,
            owner.params().clone(),
            owner.public_key().clone(),
            256,
            &mut rng,
        );
        owner.register_user(user.id(), user.public_key().clone());
        (owner, user, rng)
    }

    #[test]
    fn trapdoor_exchange_lets_user_reproduce_owner_trapdoors() {
        let (mut owner, mut user, _) = setup();
        let keywords = ["privacy", "cloud"];
        let request = user.make_trapdoor_request(&keywords).expect("bins missing");
        let reply = owner.handle_trapdoor_request(&request).unwrap();
        user.ingest_trapdoor_reply(&reply).unwrap();
        assert!(user.cached_bins() >= 1);

        for kw in keywords {
            let user_td = user.trapdoor_for(kw).unwrap();
            let owner_td = owner.scheme_keys().trapdoor_for(owner.params(), kw);
            assert_eq!(user_td, owner_td, "trapdoor mismatch for {kw}");
        }
    }

    #[test]
    fn cached_bins_suppress_repeat_requests() {
        let (mut owner, mut user, _) = setup();
        let request = user.make_trapdoor_request(&["privacy"]).unwrap();
        let reply = owner.handle_trapdoor_request(&request).unwrap();
        user.ingest_trapdoor_reply(&reply).unwrap();
        // Asking for the same keyword again needs no new request.
        assert!(user.make_trapdoor_request(&["privacy"]).is_none());
        assert!(user.missing_bins(&["privacy"]).is_empty());
    }

    #[test]
    fn query_without_bin_key_fails() {
        let (_, mut user, mut rng) = setup();
        assert!(user.build_query(&["unknown"], None, &mut rng).is_err());
        assert!(user.trapdoor_for("unknown").is_err());
    }

    #[test]
    fn query_uses_randomization_when_pool_is_available() {
        let (mut owner, mut user, mut rng) = setup();
        let request = user.make_trapdoor_request(&["privacy"]).unwrap();
        let reply = owner.handle_trapdoor_request(&request).unwrap();
        user.ingest_trapdoor_reply(&reply).unwrap();

        let plain = user.build_query(&["privacy"], None, &mut rng).unwrap();
        user.set_random_pool(owner.random_pool_trapdoors());
        let randomized = user.build_query(&["privacy"], None, &mut rng).unwrap();
        assert!(randomized.query.count_zeros() > plain.query.count_zeros());
    }

    #[test]
    fn batch_query_carries_one_index_per_keyword_set() {
        let (mut owner, mut user, mut rng) = setup();
        let request = user.make_trapdoor_request(&["privacy", "cloud"]).unwrap();
        let reply = owner.handle_trapdoor_request(&request).unwrap();
        user.ingest_trapdoor_reply(&reply).unwrap();

        let sets = vec![vec!["privacy"], vec!["cloud"], vec!["privacy", "cloud"]];
        let batch = user.build_batch_query(&sets, Some(5), &mut rng).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.top, Some(5));
        // Each member query is r bits; the batch costs their sum.
        assert_eq!(
            batch.bits(),
            3 * u64::from(batch.queries[0].serialized_bits() as u32)
        );
        // A set with no obtainable trapdoor fails the whole batch.
        assert!(user
            .build_batch_query(&[vec!["privacy"], vec!["unknown"]], None, &mut rng)
            .is_err());
    }

    #[test]
    fn blind_decryption_recovers_document_key() {
        let (mut owner, mut user, mut rng) = setup();
        let sk = [0xabu8; KEY_SIZE];
        let encrypted = owner.public_key().encrypt_bytes(&sk).unwrap();
        let (request, state) = user.begin_blind_decrypt(&encrypted, &mut rng).unwrap();
        // The owner sees only the blinded value, never `encrypted` itself.
        assert_ne!(request.blinded_ciphertext, encrypted);
        let reply = owner.handle_blind_decrypt(&request).unwrap();
        let key = user.finish_blind_decrypt(&reply, state).unwrap();
        assert_eq!(key, sk);
    }

    #[test]
    fn blind_decryption_handles_keys_with_leading_zero_bytes() {
        let (mut owner, mut user, mut rng) = setup();
        let mut sk = [0x55u8; KEY_SIZE];
        sk[0] = 0; // leading zero must survive the integer round trip
        let encrypted = owner.public_key().encrypt_bytes(&sk).unwrap();
        let (request, state) = user.begin_blind_decrypt(&encrypted, &mut rng).unwrap();
        let reply = owner.handle_blind_decrypt(&request).unwrap();
        assert_eq!(user.finish_blind_decrypt(&reply, state).unwrap(), sk);
    }

    #[test]
    fn document_decryption_round_trip() {
        let (_, mut user, _) = setup();
        let key = [7u8; KEY_SIZE];
        let body = b"the secret report".to_vec();
        let ciphertext = AesCtr::new(&key).encrypt(&[1u8; 8], &body);
        let transfer = EncryptedDocumentTransfer {
            document_id: 0,
            ciphertext,
            encrypted_key: BigUint::from_u64(0),
        };
        assert_eq!(user.decrypt_document(&transfer, &key).unwrap(), body);
        assert_eq!(user.counters().symmetric_decryptions, 1);
    }

    #[test]
    fn choose_documents_respects_theta() {
        let (_, user, _) = setup();
        let reply = SearchReply {
            matches: vec![
                crate::messages::SearchResultEntry {
                    document_id: 5,
                    rank: 3,
                    metadata: vec![],
                },
                crate::messages::SearchResultEntry {
                    document_id: 9,
                    rank: 1,
                    metadata: vec![],
                },
            ],
            cache: crate::messages::CacheReport::default(),
        };
        let req = user.choose_documents(&reply, 1).unwrap();
        assert_eq!(req.document_ids, vec![5]);
        assert!(matches!(
            user.choose_documents(&reply, 3),
            Err(ProtocolError::NotEnoughMatches {
                requested: 3,
                available: 2
            })
        ));
    }

    #[test]
    fn user_counters_track_operations() {
        let (mut owner, mut user, mut rng) = setup();
        let request = user.make_trapdoor_request(&["kw"]).unwrap();
        let reply = owner.handle_trapdoor_request(&request).unwrap();
        user.ingest_trapdoor_reply(&reply).unwrap();
        let _ = user.build_query(&["kw"], None, &mut rng).unwrap();
        assert!(user.counters().hashes >= 1);
        assert!(user.counters().modular_exponentiations >= 2);
        user.reset_counters();
        assert_eq!(user.counters(), &OperationCounters::new());
    }
}
