//! Renderers for [`MetricsSnapshot`]: a Prometheus-style text exposition and a
//! JSON document, both built from the same snapshot a
//! [`crate::Request::MetricsSnapshot`] envelope carries over the wire.
//!
//! The exposition follows the Prometheus conventions: counters get a `_total`
//! suffix, histograms are **cumulative** with an explicit `+Inf` bucket, and
//! dimensioned series (per lane, per shard) carry labels. Every family is
//! prefixed `mkse_` so a scrape of a mixed fleet stays unambiguous.
//!
//! Bucket upper bounds: the registry buckets durations by `floor(log2(ns))`
//! ([`mkse_core::telemetry::bucket_index`]), so bucket `i` covers
//! `[2^i, 2^(i+1))` ns and its inclusive Prometheus `le` bound is
//! `2^(i+1) − 1`.

use mkse_core::telemetry::MetricsSnapshot;
use std::fmt::Write as _;

/// Inclusive `le` upper bound of log₂ bucket `i` (`2^(i+1) − 1` ns, saturating
/// at `u64::MAX` for the last bucket).
fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// Render a snapshot as Prometheus-style text exposition.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# HELP mkse_telemetry_level Recording level of the registry (0=off, 1=counters, 2=spans).\n\
         # TYPE mkse_telemetry_level gauge\n\
         mkse_telemetry_level{{level=\"{}\"}} {}",
        snapshot.level.name(),
        snapshot.level as u8
    );
    for (name, value) in &snapshot.counters {
        let _ = writeln!(
            out,
            "# TYPE mkse_{name}_total counter\nmkse_{name}_total {value}"
        );
    }
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(out, "# TYPE mkse_{name} gauge\nmkse_{name} {value}");
    }
    for h in &snapshot.histograms {
        let family = "mkse_stage_duration_ns";
        let _ = writeln!(out, "# TYPE {family} histogram");
        let mut cumulative = 0u64;
        for (i, count) in h.buckets.iter().enumerate() {
            cumulative += count;
            let _ = writeln!(
                out,
                "{family}_bucket{{stage=\"{}\",le=\"{}\"}} {cumulative}",
                h.stage,
                bucket_upper_bound(i)
            );
        }
        let _ = writeln!(
            out,
            "{family}_bucket{{stage=\"{}\",le=\"+Inf\"}} {}",
            h.stage, h.count
        );
        let _ = writeln!(out, "{family}_sum{{stage=\"{}\"}} {}", h.stage, h.sum_ns);
        let _ = writeln!(out, "{family}_count{{stage=\"{}\"}} {}", h.stage, h.count);
    }
    for v in &snapshot.values {
        // Unit-free log₂ histograms get their own family per series — they are
        // counts (e.g. batch occupancy), not nanoseconds, so they must never
        // share the stage-duration family.
        let family = format!("mkse_{}", v.series);
        let _ = writeln!(out, "# TYPE {family} histogram");
        let mut cumulative = 0u64;
        for (i, count) in v.buckets.iter().enumerate() {
            cumulative += count;
            let _ = writeln!(
                out,
                "{family}_bucket{{le=\"{}\"}} {cumulative}",
                bucket_upper_bound(i)
            );
        }
        let _ = writeln!(out, "{family}_bucket{{le=\"+Inf\"}} {}", v.count);
        let _ = writeln!(out, "{family}_sum {}", v.sum);
        let _ = writeln!(out, "{family}_count {}", v.count);
    }
    for lane in &snapshot.lanes {
        for (name, value) in [
            ("executed", lane.executed),
            ("stolen", lane.stolen),
            ("failed_steals", lane.failed_steals),
            ("idle_polls", lane.idle_polls),
        ] {
            let _ = writeln!(
                out,
                "mkse_lane_{name}_total{{lane=\"{}\"}} {value}",
                lane.lane
            );
        }
    }
    for shard in &snapshot.shard_caches {
        for (name, value) in [
            ("hits", shard.hits),
            ("misses", shard.misses),
            ("invalidations", shard.invalidations),
        ] {
            let _ = writeln!(
                out,
                "mkse_shard_cache_{name}_total{{shard=\"{}\"}} {value}",
                shard.shard
            );
        }
    }
    for conn in &snapshot.connections {
        for (name, value) in [
            ("frames_in", conn.frames_in),
            ("frames_out", conn.frames_out),
            ("bytes_in", conn.bytes_in),
            ("bytes_out", conn.bytes_out),
        ] {
            let _ = writeln!(
                out,
                "mkse_connection_{name}_total{{connection=\"{}\"}} {value}",
                conn.connection
            );
        }
    }
    out
}

/// Render a snapshot as one JSON document. Every key and every string value is
/// a registry-controlled `snake_case` identifier, so no escaping is needed.
pub fn render_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"level\":\"{}\"", snapshot.level.name());
    let kv_map = |out: &mut String, key: &str, entries: &[(String, u64)]| {
        let _ = write!(out, ",\"{key}\":{{");
        for (i, (name, value)) in entries.iter().enumerate() {
            let comma = if i > 0 { "," } else { "" };
            let _ = write!(out, "{comma}\"{name}\":{value}");
        }
        out.push('}');
    };
    kv_map(&mut out, "counters", &snapshot.counters);
    kv_map(&mut out, "gauges", &snapshot.gauges);
    let _ = write!(out, ",\"histograms\":[");
    for (i, h) in snapshot.histograms.iter().enumerate() {
        let comma = if i > 0 { "," } else { "" };
        let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
        let _ = write!(
            out,
            "{comma}{{\"stage\":\"{}\",\"count\":{},\"sum_ns\":{},\"buckets\":[{}]}}",
            h.stage,
            h.count,
            h.sum_ns,
            buckets.join(",")
        );
    }
    let _ = write!(out, "],\"values\":[");
    for (i, v) in snapshot.values.iter().enumerate() {
        let comma = if i > 0 { "," } else { "" };
        let buckets: Vec<String> = v.buckets.iter().map(|b| b.to_string()).collect();
        let _ = write!(
            out,
            "{comma}{{\"series\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
            v.series,
            v.count,
            v.sum,
            buckets.join(",")
        );
    }
    let _ = write!(out, "],\"lanes\":[");
    for (i, l) in snapshot.lanes.iter().enumerate() {
        let comma = if i > 0 { "," } else { "" };
        let _ = write!(
            out,
            "{comma}{{\"lane\":{},\"executed\":{},\"stolen\":{},\"failed_steals\":{},\"idle_polls\":{}}}",
            l.lane, l.executed, l.stolen, l.failed_steals, l.idle_polls
        );
    }
    let _ = write!(out, "],\"shard_caches\":[");
    for (i, s) in snapshot.shard_caches.iter().enumerate() {
        let comma = if i > 0 { "," } else { "" };
        let _ = write!(
            out,
            "{comma}{{\"shard\":{},\"hits\":{},\"misses\":{},\"invalidations\":{}}}",
            s.shard, s.hits, s.misses, s.invalidations
        );
    }
    let _ = write!(out, "],\"connections\":[");
    for (i, c) in snapshot.connections.iter().enumerate() {
        let comma = if i > 0 { "," } else { "" };
        let _ = write!(
            out,
            "{comma}{{\"connection\":{},\"frames_in\":{},\"frames_out\":{},\"bytes_in\":{},\"bytes_out\":{}}}",
            c.connection, c.frames_in, c.frames_out, c.bytes_in, c.bytes_out
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkse_core::telemetry::{
        Counter, Gauge, LaneStats, Series, Stage, Telemetry, TelemetryLevel, HISTOGRAM_BUCKETS,
    };

    fn populated_snapshot() -> MetricsSnapshot {
        let tel = Telemetry::new();
        tel.set_level(TelemetryLevel::Spans);
        tel.add(Counter::Queries, 3);
        tel.add(Counter::WireBytesOut, 1024);
        tel.set_gauge(Gauge::ScanLanes, 2);
        tel.record_duration(Stage::UnitScan, 5); // bucket 2
        tel.record_duration(Stage::UnitScan, 900); // bucket 9
        tel.record_value(Series::BatchOccupancy, 1); // bucket 0
        tel.record_value(Series::BatchOccupancy, 6); // bucket 2
        tel.record_lane(
            1,
            &LaneStats {
                executed: 4,
                stolen: 2,
                failed_cas: 1,
                idle_polls: 3,
            },
        );
        tel.record_cache_lookup(0, true);
        tel.record_cache_lookup(0, false);
        tel.record_conn_frame_in(3, 96);
        tel.record_conn_frame_out(3, 200);
        tel.snapshot()
    }

    #[test]
    fn bucket_upper_bounds_are_inclusive_log2_edges() {
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(1), 3);
        assert_eq!(bucket_upper_bound(9), 1023);
        assert_eq!(bucket_upper_bound(62), (1u64 << 63) - 1);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn prometheus_exposition_is_cumulative_and_labelled() {
        let text = render_prometheus(&populated_snapshot());
        assert!(text.contains("mkse_telemetry_level{level=\"spans\"} 2"));
        assert!(text.contains("# TYPE mkse_queries_total counter"));
        assert!(text.contains("mkse_queries_total 3"));
        assert!(text.contains("mkse_scan_lanes 2"));
        // Cumulative buckets: the 5 ns sample is <= 7, the 900 ns one <= 1023.
        assert!(text.contains("mkse_stage_duration_ns_bucket{stage=\"unit_scan\",le=\"7\"} 1"));
        assert!(text.contains("mkse_stage_duration_ns_bucket{stage=\"unit_scan\",le=\"1023\"} 2"));
        assert!(text.contains("mkse_stage_duration_ns_bucket{stage=\"unit_scan\",le=\"+Inf\"} 2"));
        assert!(text.contains("mkse_stage_duration_ns_count{stage=\"unit_scan\"} 2"));
        assert!(text.contains("mkse_lane_stolen_total{lane=\"1\"} 2"));
        assert!(text.contains("mkse_shard_cache_hits_total{shard=\"0\"} 1"));
        assert!(text.contains("mkse_shard_cache_misses_total{shard=\"0\"} 1"));
        // Unit-free value histograms get their own family: the occupancy 1 is
        // <= 1, the occupancy 6 <= 7, cumulative.
        assert!(text.contains("# TYPE mkse_batch_occupancy histogram"));
        assert!(text.contains("mkse_batch_occupancy_bucket{le=\"1\"} 1"));
        assert!(text.contains("mkse_batch_occupancy_bucket{le=\"7\"} 2"));
        assert!(text.contains("mkse_batch_occupancy_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("mkse_batch_occupancy_sum 7"));
        assert!(text.contains("mkse_batch_occupancy_count 2"));
        // Per-connection wire traffic is labelled by connection slot.
        assert!(text.contains("mkse_connection_frames_in_total{connection=\"3\"} 1"));
        assert!(text.contains("mkse_connection_bytes_out_total{connection=\"3\"} 200"));
    }

    #[test]
    fn json_document_is_balanced_and_complete() {
        let snapshot = populated_snapshot();
        let json = render_json(&snapshot);
        assert!(json.starts_with("{\"level\":\"spans\""));
        assert!(json.contains("\"queries\":3"));
        assert!(json.contains("\"stage\":\"unit_scan\""));
        assert!(json.contains("\"lane\":1"));
        assert!(json.contains("\"shard\":0,\"hits\":1,\"misses\":1"));
        assert!(json.contains("\"series\":\"batch_occupancy\",\"count\":2,\"sum\":7"));
        assert!(json.contains(
            "\"connection\":3,\"frames_in\":1,\"frames_out\":1,\"bytes_in\":96,\"bytes_out\":200"
        ));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        // An empty registry still renders complete counter/gauge maps.
        let empty = render_json(&Telemetry::new().snapshot());
        assert!(empty.contains("\"requests_served\":0"));
        assert!(empty.contains("\"histograms\":[]"));
    }
}
