//! The envelope client: the one front door to any [`Service`], speaking only
//! framed [`Request`] / [`Response`] envelopes — with pipelining.
//!
//! A [`Client`] owns its service endpoint (in this repository the "transport" is
//! an in-process byte buffer, but every exchange genuinely round-trips through
//! the framed codec of [`crate::wire`]): requests are encoded into an outbox,
//! [`Client::flush`] ships the whole outbox to the service in one go, and the
//! reply frames are decoded back and correlated by request id — in **any**
//! order, which is what makes the client pipelined rather than merely batched.
//!
//! ```text
//! submit ─▶ outbox (frames) ──flush──▶ Service::call per frame ──▶ reply frames
//!    ▲                                                                  │
//!    └──────────────── take(id): correlate out of order ◀───── ingest ──┘
//! ```
//!
//! Because every byte crosses the codec, the client knows the system's *real*
//! communication cost: [`Client::wire_stats`] counts frames and framed bytes in
//! both directions, which [`crate::SearchSession`] records next to the analytic
//! Table 1 bit counts.
//!
//! For local operators the client also [`Deref`](std::ops::Deref)s to the
//! wrapped service, so in-process admin/introspection (`num_shards()`,
//! `cache_stats()`, …) stays ergonomic; a remote deployment would route those
//! through their envelope variants instead.

use crate::envelope::{Request, Response, ServerInfo, Service};
use crate::messages::{
    BatchQueryMessage, BatchSearchReply, BlindDecryptReply, BlindDecryptRequest, DocumentReply,
    DocumentRequest, EncryptedDocumentTransfer, QueryMessage, SearchReply, TrapdoorReply,
    TrapdoorRequest, UploadMessage,
};
use crate::wire::{self, CodecError};
use crate::ProtocolError;
use mkse_core::cache::CacheStats;
use mkse_core::document_index::RankedDocumentIndex;
use mkse_core::telemetry::{Counter, MetricsSnapshot, Stage};
use std::collections::BTreeMap;

/// Frames and framed bytes a client has moved in each direction — the measured
/// communication cost, as opposed to the analytic Table 1 bit counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Request frames encoded and shipped.
    pub frames_sent: u64,
    /// Response frames received and decoded.
    pub frames_received: u64,
    /// Total framed request bytes (length prefix + header + body).
    pub bytes_sent: u64,
    /// Total framed response bytes.
    pub bytes_received: u64,
    /// Nanoseconds spent blocked waiting for replies (zero for in-process
    /// clients; the socket client accumulates its parked reply waits here).
    pub wait_ns: u64,
}

impl WireStats {
    /// The difference `self − earlier` (field-wise); `earlier` must be a prior
    /// snapshot of the same counter set.
    pub fn since(&self, earlier: &WireStats) -> WireStats {
        WireStats {
            frames_sent: self.frames_sent - earlier.frames_sent,
            frames_received: self.frames_received - earlier.frames_received,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            bytes_received: self.bytes_received - earlier.bytes_received,
            wait_ns: self.wait_ns - earlier.wait_ns,
        }
    }

    /// Field-wise sum.
    pub fn plus(&self, other: &WireStats) -> WireStats {
        WireStats {
            frames_sent: self.frames_sent + other.frames_sent,
            frames_received: self.frames_received + other.frames_received,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_received: self.bytes_received + other.bytes_received,
            wait_ns: self.wait_ns + other.wait_ns,
        }
    }
}

/// Drive a service over a raw request wire: decode each frame, execute it, and
/// return the concatenated reply frames (each echoing its request id).
///
/// This is the server side of the transport — the loop a network listener would
/// run per connection. A frame that fails to decode aborts the wire with a
/// [`CodecError`] (there is no trustworthy request id to correlate an error
/// reply to).
///
/// When the service exposes a telemetry registry ([`Service::telemetry`]),
/// the transport records the framed traffic it moves (frames and framed bytes
/// in both directions) and — at the `Spans` level — the decode/encode
/// durations. Recording only touches the registry: reply bytes are identical
/// whether or not a registry is present.
pub fn serve<S: Service>(service: &mut S, request_wire: &[u8]) -> Result<Vec<u8>, CodecError> {
    let telemetry = service.telemetry().cloned();
    let decoded = {
        let _decode_span = telemetry.as_ref().and_then(|t| t.span(Stage::FrameDecode));
        wire::decode_request_stream(request_wire)?
    };
    let frames = decoded.len() as u64;
    if let Some(t) = &telemetry {
        t.add(Counter::WireFramesIn, frames);
        t.add(Counter::WireBytesIn, request_wire.len() as u64);
    }
    let mut reply_wire = Vec::new();
    for (request_id, request) in decoded {
        let response = service.call(request);
        let _encode_span = telemetry.as_ref().and_then(|t| t.span(Stage::FrameEncode));
        reply_wire.extend_from_slice(&wire::encode_response(request_id, &response));
    }
    if let Some(t) = &telemetry {
        t.add(Counter::WireFramesOut, frames);
        t.add(Counter::WireBytesOut, reply_wire.len() as u64);
    }
    Ok(reply_wire)
}

/// A pipelined envelope client over a [`Service`].
pub struct Client<S: Service> {
    service: S,
    next_id: u64,
    outbox: Vec<u8>,
    outbox_frames: u64,
    inbox: BTreeMap<u64, Response>,
    stats: WireStats,
}

impl<S: Service> Client<S> {
    /// Wrap a service endpoint. Request ids start at 1 and increase by 1 per
    /// submitted request.
    pub fn new(service: S) -> Self {
        Client {
            service,
            next_id: 1,
            outbox: Vec::new(),
            outbox_frames: 0,
            inbox: BTreeMap::new(),
            stats: WireStats::default(),
        }
    }

    /// Unwrap the service endpoint.
    pub fn into_service(self) -> S {
        self.service
    }

    /// The id the next [`Client::submit`] will assign (useful for reporting
    /// which ids a round of work used).
    pub fn next_request_id(&self) -> u64 {
        self.next_id
    }

    /// Frames/bytes moved so far, both directions.
    pub fn wire_stats(&self) -> WireStats {
        self.stats
    }

    /// Encode `request` into the outbox and return its request id. Nothing is
    /// executed until [`Client::flush`].
    pub fn submit(&mut self, request: &Request) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let frame = wire::encode_request(id, request);
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += frame.len() as u64;
        self.outbox_frames += 1;
        self.outbox.extend_from_slice(&frame);
        id
    }

    /// Number of responses decoded and waiting to be [`Client::take`]n.
    pub fn ready(&self) -> usize {
        self.inbox.len()
    }

    /// Ship the outbox to the service and ingest every reply frame. Returns the
    /// number of replies received.
    pub fn flush(&mut self) -> Result<usize, ProtocolError> {
        if self.outbox.is_empty() {
            return Ok(0);
        }
        let request_wire = std::mem::take(&mut self.outbox);
        self.outbox_frames = 0;
        let reply_wire = serve(&mut self.service, &request_wire)?;
        self.ingest(&reply_wire)
    }

    /// Decode reply frames (in whatever order they arrive) into the inbox,
    /// correlating each by its echoed request id.
    pub fn ingest(&mut self, reply_wire: &[u8]) -> Result<usize, ProtocolError> {
        let replies = wire::decode_response_stream(reply_wire)?;
        let count = replies.len();
        for (request_id, response) in replies {
            self.stats.frames_received += 1;
            self.inbox.insert(request_id, response);
        }
        // Frame overhead is part of the measured cost: count the raw wire bytes,
        // not the decoded payloads.
        self.stats.bytes_received += reply_wire.len() as u64;
        Ok(count)
    }

    /// Take the reply correlated to `request_id`, if it has arrived.
    pub fn take(&mut self, request_id: u64) -> Option<Response> {
        self.inbox.remove(&request_id)
    }

    /// Drop every queued-but-unflushed request frame and every unclaimed reply.
    ///
    /// Error-recovery hatch for pipelined callers: if a window fails between
    /// `submit` and `flush` (or replies are left untaken after an error),
    /// abandoning the window guarantees the next flush executes nothing stale
    /// and the inbox does not accumulate orphaned replies. Already-flushed
    /// requests were executed by the service and are not undone. Abandoned
    /// request frames were never shipped, so their bytes are removed from
    /// `wire_stats` again.
    pub fn abandon(&mut self) {
        self.stats.bytes_sent -= self.outbox.len() as u64;
        self.stats.frames_sent -= self.outbox_frames;
        self.outbox_frames = 0;
        self.outbox.clear();
        self.inbox.clear();
    }

    /// Submit one request, flush, and return its reply — the non-pipelined
    /// convenience every typed helper below builds on. Any previously submitted
    /// requests are flushed (and their replies parked in the inbox) first.
    pub fn call(&mut self, request: &Request) -> Result<Response, ProtocolError> {
        let id = self.submit(request);
        self.flush()?;
        self.take(id).ok_or_else(|| {
            ProtocolError::Codec(CodecError::Malformed(format!(
                "no reply correlated to request id {id}"
            )))
        })
    }

    fn expect<T>(
        response: Response,
        expected: &'static str,
        extract: impl FnOnce(Response) -> Option<T>,
    ) -> Result<T, ProtocolError> {
        let found = response.name();
        if let Response::Error(e) = response {
            return Err(e);
        }
        extract(response).ok_or_else(|| {
            ProtocolError::Codec(CodecError::ResponseMismatch {
                expected: expected.to_string(),
                found: found.to_string(),
            })
        })
    }

    /// Resolve an already-taken reply as a [`SearchReply`] (pipelined reads).
    pub fn expect_search(response: Response) -> Result<SearchReply, ProtocolError> {
        Self::expect(response, "Search", |r| match r {
            Response::Search(reply) => Some(reply),
            _ => None,
        })
    }

    /// Resolve an already-taken reply as a [`BlindDecryptReply`] (pipelined reads).
    pub fn expect_blind_decrypt(response: Response) -> Result<BlindDecryptReply, ProtocolError> {
        Self::expect(response, "BlindDecrypt", |r| match r {
            Response::BlindDecrypt(reply) => Some(reply),
            _ => None,
        })
    }

    // --- typed request/reply helpers (one per server operation) --------------

    /// One ranked query (§4.3): `Request::Query` → the reply's matches.
    pub fn query(&mut self, message: &QueryMessage) -> Result<SearchReply, ProtocolError> {
        let response = self.call(&Request::Query(message.clone()))?;
        Self::expect_search(response)
    }

    /// Many queries in one round trip: `Request::BatchQuery`.
    pub fn batch_query(
        &mut self,
        message: &BatchQueryMessage,
    ) -> Result<BatchSearchReply, ProtocolError> {
        let response = self.call(&Request::BatchQuery(message.clone()))?;
        Self::expect(response, "BatchSearch", |r| match r {
            Response::BatchSearch(reply) => Some(reply),
            _ => None,
        })
    }

    /// Retrieve documents by id: `Request::Documents`.
    pub fn fetch_documents(
        &mut self,
        request: &DocumentRequest,
    ) -> Result<DocumentReply, ProtocolError> {
        let response = self.call(&Request::Documents(request.clone()))?;
        Self::expect(response, "Documents", |r| match r {
            Response::Documents(reply) => Some(reply),
            _ => None,
        })
    }

    /// Request bin keys from the data owner: `Request::Trapdoor`.
    pub fn request_trapdoors(
        &mut self,
        request: &TrapdoorRequest,
    ) -> Result<TrapdoorReply, ProtocolError> {
        let response = self.call(&Request::Trapdoor(request.clone()))?;
        Self::expect(response, "Trapdoor", |r| match r {
            Response::Trapdoor(reply) => Some(reply),
            _ => None,
        })
    }

    /// One blinded decryption round: `Request::BlindDecrypt`.
    pub fn blind_decrypt(
        &mut self,
        request: &BlindDecryptRequest,
    ) -> Result<BlindDecryptReply, ProtocolError> {
        let response = self.call(&Request::BlindDecrypt(request.clone()))?;
        Self::expect_blind_decrypt(response)
    }

    /// The offline-phase upload: `Request::Upload`. Returns the number of
    /// documents stored after the upload.
    pub fn upload(
        &mut self,
        indices: Vec<RankedDocumentIndex>,
        documents: Vec<EncryptedDocumentTransfer>,
    ) -> Result<u64, ProtocolError> {
        let response = self.call(&Request::Upload(UploadMessage { indices, documents }))?;
        Self::expect(response, "Uploaded", |r| match r {
            Response::Uploaded { documents } => Some(documents),
            _ => None,
        })
    }

    /// Enable the server's result cache: `Request::EnableCache`.
    pub fn enable_cache(&mut self, capacity_per_shard: u64) -> Result<(), ProtocolError> {
        let response = self.call(&Request::EnableCache { capacity_per_shard })?;
        Self::expect(response, "Ack", |r| match r {
            Response::Ack => Some(()),
            _ => None,
        })
    }

    /// Disable the server's result cache: `Request::DisableCache`.
    pub fn disable_cache(&mut self) -> Result<(), ProtocolError> {
        let response = self.call(&Request::DisableCache)?;
        Self::expect(response, "Ack", |r| match r {
            Response::Ack => Some(()),
            _ => None,
        })
    }

    /// Read the cumulative cache counters over the wire: `Request::CacheStats`.
    pub fn remote_cache_stats(&mut self) -> Result<Option<CacheStats>, ProtocolError> {
        let response = self.call(&Request::CacheStats)?;
        Self::expect(response, "CacheStats", |r| match r {
            Response::CacheStats(stats) => Some(stats),
            _ => None,
        })
    }

    /// Snapshot the server's index over the wire: `Request::SnapshotIndex`.
    pub fn snapshot(&mut self) -> Result<Vec<u8>, ProtocolError> {
        let response = self.call(&Request::SnapshotIndex)?;
        Self::expect(response, "Snapshot", |r| match r {
            Response::Snapshot(bytes) => Some(bytes),
            _ => None,
        })
    }

    /// Restore an index snapshot over the wire: `Request::RestoreIndex`.
    /// Returns the number of documents appended.
    pub fn restore(&mut self, snapshot: Vec<u8>) -> Result<u64, ProtocolError> {
        let response = self.call(&Request::RestoreIndex(snapshot))?;
        Self::expect(response, "Restored", |r| match r {
            Response::Restored { documents } => Some(documents),
            _ => None,
        })
    }

    /// Read the remote party's operation counters: `Request::Counters`.
    pub fn remote_counters(&mut self) -> Result<crate::OperationCounters, ProtocolError> {
        let response = self.call(&Request::Counters)?;
        Self::expect(response, "Counters", |r| match r {
            Response::Counters(c) => Some(c),
            _ => None,
        })
    }

    /// Reset the remote party's operation counters: `Request::ResetCounters`.
    pub fn reset_remote_counters(&mut self) -> Result<(), ProtocolError> {
        let response = self.call(&Request::ResetCounters)?;
        Self::expect(response, "Ack", |r| match r {
            Response::Ack => Some(()),
            _ => None,
        })
    }

    /// Read static deployment facts: `Request::ServerInfo`.
    pub fn server_info(&mut self) -> Result<ServerInfo, ProtocolError> {
        let response = self.call(&Request::ServerInfo)?;
        Self::expect(response, "Info", |r| match r {
            Response::Info(info) => Some(info),
            _ => None,
        })
    }

    /// Snapshot the remote party's telemetry registry:
    /// `Request::MetricsSnapshot`. The reply round-trips the framed codec like
    /// every other envelope, so the dashboard view is exactly what a remote
    /// operator would see.
    pub fn metrics_snapshot(&mut self) -> Result<MetricsSnapshot, ProtocolError> {
        let response = self.call(&Request::MetricsSnapshot)?;
        Self::expect(response, "MetricsReport", |r| match r {
            Response::MetricsReport(snapshot) => Some(snapshot),
            _ => None,
        })
    }
}

impl<S: Service> std::ops::Deref for Client<S> {
    type Target = S;
    fn deref(&self) -> &S {
        &self.service
    }
}

impl<S: Service> std::ops::DerefMut for Client<S> {
    fn deref_mut(&mut self) -> &mut S {
        &mut self.service
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolError;
    use mkse_core::telemetry::{Telemetry, TelemetryLevel};

    /// A loopback service answering every request with `Ack` (enough to test
    /// the client's transport mechanics without a full server).
    struct AckService {
        calls: u64,
    }

    impl Service for AckService {
        fn call(&mut self, _request: Request) -> Response {
            self.calls += 1;
            Response::Ack
        }
    }

    /// An `Ack` loopback that additionally exposes a telemetry registry, so
    /// the transport-level recording in [`serve`] can be observed.
    struct MeteredAck {
        telemetry: Telemetry,
    }

    impl Service for MeteredAck {
        fn call(&mut self, _request: Request) -> Response {
            Response::Ack
        }

        fn telemetry(&self) -> Option<&Telemetry> {
            Some(&self.telemetry)
        }
    }

    #[test]
    fn serve_records_framed_wire_traffic_in_the_registry() {
        let telemetry = Telemetry::new();
        telemetry.set_level(TelemetryLevel::Counters);
        let mut client = Client::new(MeteredAck {
            telemetry: telemetry.clone(),
        });
        client.submit(&Request::CacheStats);
        client.submit(&Request::ServerInfo);
        client.flush().unwrap();

        // The registry's wire counters agree exactly with the client-side
        // measured WireStats: both observe the same frames and framed bytes.
        let snap = telemetry.snapshot();
        let stats = client.wire_stats();
        assert_eq!(snap.counter("wire_frames_in"), 2);
        assert_eq!(snap.counter("wire_frames_out"), 2);
        assert_eq!(snap.counter("wire_bytes_in"), stats.bytes_sent);
        assert_eq!(snap.counter("wire_bytes_out"), stats.bytes_received);
        // No spans at the Counters level.
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn garbage_reply_wire_is_a_typed_codec_error() {
        let mut client = Client::new(AckService { calls: 0 });
        let err = client.ingest(&[1, 2, 3]).unwrap_err();
        assert!(matches!(err, ProtocolError::Codec(CodecError::Truncated)));
    }

    #[test]
    fn flush_without_submissions_is_a_no_op() {
        let mut client = Client::new(AckService { calls: 0 });
        assert_eq!(client.flush().unwrap(), 0);
        assert_eq!(client.calls, 0);
        assert_eq!(client.wire_stats(), WireStats::default());
    }

    #[test]
    fn submit_defers_execution_until_flush() {
        let mut client = Client::new(AckService { calls: 0 });
        let a = client.submit(&Request::CacheStats);
        let b = client.submit(&Request::ServerInfo);
        assert_eq!((a, b), (1, 2));
        assert_eq!(client.calls, 0, "nothing runs before the flush");
        assert_eq!(client.wire_stats().frames_received, 0);

        assert_eq!(client.flush().unwrap(), 2);
        assert_eq!(client.calls, 2);
        // Correlation is by id: take the second reply first.
        assert_eq!(client.take(b), Some(Response::Ack));
        assert_eq!(client.take(a), Some(Response::Ack));
        assert_eq!(client.take(a), None, "a reply can be taken once");

        let stats = client.wire_stats();
        assert_eq!(stats.frames_sent, 2);
        assert_eq!(stats.frames_received, 2);
        assert!(stats.bytes_sent > 0 && stats.bytes_received > 0);
    }

    #[test]
    fn abandon_drops_unflushed_frames_and_orphaned_replies() {
        let mut client = Client::new(AckService { calls: 0 });
        // One flushed-but-untaken reply plus one unflushed frame.
        client.submit(&Request::CacheStats);
        client.flush().unwrap();
        client.submit(&Request::ServerInfo);
        assert_eq!(client.ready(), 1);

        client.abandon();
        assert_eq!(client.ready(), 0);
        // The next flush executes nothing stale.
        assert_eq!(client.flush().unwrap(), 0);
        assert_eq!(client.calls, 1, "abandoned frame must never execute");
        // The unshipped frame's bytes are removed from the stats again; the
        // executed exchange stays counted.
        let stats = client.wire_stats();
        assert_eq!(stats.frames_sent, 1);
        assert_eq!(stats.frames_received, 1);
    }

    #[test]
    fn wire_stats_arithmetic() {
        let a = WireStats {
            frames_sent: 5,
            frames_received: 4,
            bytes_sent: 100,
            bytes_received: 90,
            wait_ns: 900,
        };
        let b = WireStats {
            frames_sent: 2,
            frames_received: 2,
            bytes_sent: 40,
            bytes_received: 30,
            wait_ns: 400,
        };
        assert_eq!(
            a.since(&b),
            WireStats {
                frames_sent: 3,
                frames_received: 2,
                bytes_sent: 60,
                bytes_received: 60,
                wait_ns: 500,
            }
        );
        assert_eq!(
            b.plus(&b),
            WireStats {
                frames_sent: 4,
                frames_received: 4,
                bytes_sent: 80,
                bytes_received: 60,
                wait_ns: 800,
            }
        );
    }

    #[test]
    fn mismatched_reply_variant_is_a_typed_error() {
        // AckService answers Ack to everything — a typed query helper must turn
        // that into a ResponseMismatch, not a panic.
        let mut client = Client::new(AckService { calls: 0 });
        let err = client.remote_counters().unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::Codec(CodecError::ResponseMismatch { .. })
        ));
    }
}
