//! RSA with blinding and hash-and-sign signatures.
//!
//! §4.4 of the paper: every document is encrypted with its own symmetric key `sk`; the data
//! owner stores `RSA_e(sk)` next to the ciphertext. To decrypt, the user *blinds* the
//! ciphertext with a random factor `c` as `z = cᵉ·y mod N`, sends `z` to the data owner, who
//! returns `z̄ = z^d mod N`, and the user un-blinds with `sk = z̄·c⁻¹ mod N`. The data owner
//! therefore decrypts without learning which key it decrypted.
//!
//! §7 (Theorem 4): user→owner messages are signed; we provide a hash-and-sign scheme
//! (SHA-256 digest, deterministic padding, exponentiation with the private key).
//!
//! The paper uses a 1024-bit modulus built from two 512-bit primes. Key generation for that
//! size takes a few seconds in debug builds, so tests use smaller keys; the experiment
//! binaries use the paper's parameters.

use crate::bigint::BigUint;
use crate::prime::generate_prime;
use crate::sha256::Sha256;
use crate::CryptoError;
use rand::Rng;

/// Public RSA exponent used throughout (F4).
pub const PUBLIC_EXPONENT: u64 = 65537;

/// An RSA public key `(n, e)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
}

/// An RSA key pair (public modulus/exponent plus the private exponent).
#[derive(Clone)]
pub struct RsaKeyPair {
    public: RsaPublicKey,
    d: BigUint,
    bits: usize,
}

/// A detached RSA signature over a message digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaSignature {
    value: BigUint,
}

impl RsaPublicKey {
    /// The modulus `N`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent `e`.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// Size of the modulus in bits.
    pub fn modulus_bits(&self) -> usize {
        self.n.bit_len()
    }

    /// Size of the modulus in bytes (rounded up).
    pub fn modulus_bytes(&self) -> usize {
        self.modulus_bits().div_ceil(8)
    }

    /// Raw ("textbook") RSA encryption of a message already encoded as an integer `< N`.
    pub fn encrypt_value(&self, m: &BigUint) -> Result<BigUint, CryptoError> {
        if m >= &self.n {
            return Err(CryptoError::MessageTooLarge);
        }
        Ok(m.modpow(&self.e, &self.n))
    }

    /// Encrypt a byte string (must be shorter than the modulus).
    pub fn encrypt_bytes(&self, msg: &[u8]) -> Result<BigUint, CryptoError> {
        let m = BigUint::from_bytes_be(msg);
        self.encrypt_value(&m)
    }

    /// Blind a ciphertext with the blinding factor `c`: returns `cᵉ·y mod N`.
    ///
    /// This is the first half of the oblivious-decryption protocol of §4.4.
    pub fn blind(&self, ciphertext: &BigUint, blinding: &BigUint) -> Result<BigUint, CryptoError> {
        let ce = self.encrypt_value(&blinding.rem(&self.n))?;
        Ok(ce.mulmod(ciphertext, &self.n))
    }

    /// Remove the blinding factor from a blinded decryption: returns `z̄·c⁻¹ mod N`.
    pub fn unblind(
        &self,
        blinded_plain: &BigUint,
        blinding: &BigUint,
    ) -> Result<BigUint, CryptoError> {
        let inv = blinding
            .rem(&self.n)
            .modinv(&self.n)
            .ok_or(CryptoError::NotInvertible)?;
        Ok(blinded_plain.mulmod(&inv, &self.n))
    }

    /// Sample a blinding factor uniformly from `[2, N)` that is invertible mod `N`.
    pub fn random_blinding<R: Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        loop {
            let c = BigUint::random_below(rng, &self.n);
            if !c.is_one() && c.gcd(&self.n).is_one() {
                return c;
            }
        }
    }

    /// Verify a signature over `message`.
    pub fn verify(&self, message: &[u8], signature: &RsaSignature) -> Result<(), CryptoError> {
        if signature.value >= self.n {
            return Err(CryptoError::InvalidSignature);
        }
        let recovered = signature.value.modpow(&self.e, &self.n);
        let expected = encode_digest(message, self.modulus_bytes());
        if recovered == expected {
            Ok(())
        } else {
            Err(CryptoError::InvalidSignature)
        }
    }
}

impl RsaKeyPair {
    /// Generate a fresh key pair with a modulus of (about) `modulus_bits` bits.
    ///
    /// The paper uses `modulus_bits = 1024` (two 512-bit primes).
    pub fn generate<R: Rng + ?Sized>(modulus_bits: usize, rng: &mut R) -> Self {
        assert!(modulus_bits >= 64, "modulus too small");
        let e = BigUint::from_u64(PUBLIC_EXPONENT);
        loop {
            let p = generate_prime(modulus_bits / 2, rng);
            let q = generate_prime(modulus_bits - modulus_bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let phi = p.sub(&BigUint::one()).mul(&q.sub(&BigUint::one()));
            let Some(d) = e.modinv(&phi) else { continue };
            return RsaKeyPair {
                public: RsaPublicKey { n, e: e.clone() },
                d,
                bits: modulus_bits,
            };
        }
    }

    /// The public half of this key pair.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public
    }

    /// The modulus size requested at generation time.
    pub fn modulus_bits(&self) -> usize {
        self.bits
    }

    /// Raw RSA decryption: `c^d mod N`.
    pub fn decrypt_value(&self, c: &BigUint) -> Result<BigUint, CryptoError> {
        if c >= &self.public.n {
            return Err(CryptoError::MessageTooLarge);
        }
        Ok(c.modpow(&self.d, &self.public.n))
    }

    /// Decrypt to the original byte string (length recovered from the integer encoding).
    pub fn decrypt_bytes(&self, c: &BigUint) -> Result<Vec<u8>, CryptoError> {
        Ok(self.decrypt_value(c)?.to_bytes_be())
    }

    /// Sign a message: `encode(SHA-256(message))^d mod N`.
    pub fn sign(&self, message: &[u8]) -> RsaSignature {
        let encoded = encode_digest(message, self.public.modulus_bytes());
        RsaSignature {
            value: encoded.modpow(&self.d, &self.public.n),
        }
    }
}

impl RsaSignature {
    /// The signature as an integer (for serialization / cost accounting).
    pub fn value(&self) -> &BigUint {
        &self.value
    }

    /// The signature as big-endian bytes padded to `len` bytes.
    pub fn to_bytes(&self, len: usize) -> Vec<u8> {
        self.value.to_bytes_be_padded(len)
    }

    /// Rebuild a signature from its integer value (e.g. after transport).
    pub fn from_value(value: BigUint) -> Self {
        RsaSignature { value }
    }
}

/// Deterministic full-domain-style encoding of a message digest for signing:
/// `0x01 || 0xFF.. || 0x00 || SHA-256(msg)` truncated/padded to one byte less than the modulus.
fn encode_digest(message: &[u8], modulus_len: usize) -> BigUint {
    let digest = Sha256::digest(message);
    // One byte of headroom guarantees the encoded integer stays below the modulus; the digest
    // is truncated if the modulus is too small to hold it in full (test-sized keys only).
    let target = modulus_len.saturating_sub(1).max(3);
    let digest_len = digest.len().min(target - 2);
    let mut out = Vec::with_capacity(target);
    out.push(0x01);
    while out.len() < target - digest_len - 1 {
        out.push(0xff);
    }
    out.push(0x00);
    out.extend_from_slice(&digest[..digest_len]);
    BigUint::from_bytes_be(&out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_keypair(seed: u64) -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        RsaKeyPair::generate(256, &mut rng)
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let kp = test_keypair(1);
        let msg = b"doc-key-0123456789";
        let c = kp.public_key().encrypt_bytes(msg).unwrap();
        assert_eq!(kp.decrypt_bytes(&c).unwrap(), msg);
    }

    #[test]
    fn decryption_with_wrong_key_fails() {
        let kp1 = test_keypair(2);
        let kp2 = test_keypair(3);
        let msg = b"secret";
        let c = kp1.public_key().encrypt_bytes(msg).unwrap();
        // Either decryption "succeeds" with garbage, or the ciphertext falls outside
        // the wrong key's modulus range and is rejected — never the plaintext.
        match kp2.decrypt_bytes(&c) {
            Ok(recovered) => assert_ne!(recovered, msg.to_vec()),
            Err(e) => assert!(matches!(e, CryptoError::MessageTooLarge)),
        }
    }

    #[test]
    fn message_larger_than_modulus_is_rejected() {
        let kp = test_keypair(4);
        let too_big = vec![0xffu8; kp.public_key().modulus_bytes() + 1];
        assert_eq!(
            kp.public_key().encrypt_bytes(&too_big),
            Err(CryptoError::MessageTooLarge)
        );
    }

    #[test]
    fn blind_decryption_recovers_plaintext() {
        // The §4.4 flow: user blinds, owner decrypts, user unblinds.
        let mut rng = StdRng::seed_from_u64(5);
        let owner = RsaKeyPair::generate(256, &mut rng);
        let sk = b"per-document-key";
        let y = owner.public_key().encrypt_bytes(sk).unwrap();

        // User side.
        let c = owner.public_key().random_blinding(&mut rng);
        let z = owner.public_key().blind(&y, &c).unwrap();

        // Data owner side: plain decryption of the blinded value.
        let z_bar = owner.decrypt_value(&z).unwrap();

        // User side: unblind.
        let recovered = owner.public_key().unblind(&z_bar, &c).unwrap();
        assert_eq!(recovered.to_bytes_be(), sk.to_vec());
    }

    #[test]
    fn blinded_ciphertext_differs_from_original() {
        // The owner must not see the original ciphertext (unlinkability).
        let mut rng = StdRng::seed_from_u64(6);
        let owner = RsaKeyPair::generate(256, &mut rng);
        let y = owner.public_key().encrypt_bytes(b"key").unwrap();
        let c = owner.public_key().random_blinding(&mut rng);
        let z = owner.public_key().blind(&y, &c).unwrap();
        assert_ne!(y, z);
    }

    #[test]
    fn different_blindings_give_different_blinded_values() {
        let mut rng = StdRng::seed_from_u64(7);
        let owner = RsaKeyPair::generate(256, &mut rng);
        let y = owner.public_key().encrypt_bytes(b"key").unwrap();
        let c1 = owner.public_key().random_blinding(&mut rng);
        let c2 = owner.public_key().random_blinding(&mut rng);
        assert_ne!(
            owner.public_key().blind(&y, &c1).unwrap(),
            owner.public_key().blind(&y, &c2).unwrap()
        );
    }

    #[test]
    fn signature_verifies_and_tampering_is_detected() {
        let kp = test_keypair(8);
        let msg = b"trapdoor request: bins 3, 7, 11";
        let sig = kp.sign(msg);
        assert!(kp.public_key().verify(msg, &sig).is_ok());
        assert_eq!(
            kp.public_key()
                .verify(b"trapdoor request: bins 3, 7, 12", &sig),
            Err(CryptoError::InvalidSignature)
        );
        let forged = RsaSignature::from_value(sig.value().add(&BigUint::one()));
        assert_eq!(
            kp.public_key().verify(msg, &forged),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn signature_from_other_key_is_rejected() {
        let kp1 = test_keypair(9);
        let kp2 = test_keypair(10);
        let msg = b"hello";
        let sig = kp1.sign(msg);
        assert!(kp2.public_key().verify(msg, &sig).is_err());
    }

    #[test]
    fn signature_round_trips_through_bytes() {
        let kp = test_keypair(11);
        let msg = b"serialize me";
        let sig = kp.sign(msg);
        let len = kp.public_key().modulus_bytes();
        let bytes = sig.to_bytes(len);
        assert_eq!(bytes.len(), len);
        let sig2 = RsaSignature::from_value(BigUint::from_bytes_be(&bytes));
        assert!(kp.public_key().verify(msg, &sig2).is_ok());
    }

    #[test]
    fn keypair_has_requested_modulus_size() {
        let kp = test_keypair(12);
        let bits = kp.public_key().modulus_bits();
        assert!((255..=256).contains(&bits), "got {bits}");
        assert_eq!(kp.modulus_bits(), 256);
    }

    #[test]
    fn public_exponent_is_f4() {
        let kp = test_keypair(13);
        assert_eq!(kp.public_key().exponent().to_u64(), Some(65537));
    }
}
