//! HMAC (RFC 2104) over the SHA-2 family.
//!
//! The MKSE scheme derives every keyword index from `HMAC_k(keyword)` where `k` is the secret
//! key of the keyword's bin (§4.1–4.2). [`HmacSha256`] and [`HmacSha512`] are the two
//! instantiations; [`crate::prf::LongPrf`] expands them to the `l`-bit output the scheme needs.

use crate::sha256::{self, Sha256};
use crate::sha512::{self, Sha512};

const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

macro_rules! define_hmac {
    ($name:ident, $hash:ident, $hash_mod:ident, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone)]
        pub struct $name {
            inner: $hash,
            opad_key: [u8; $hash_mod::BLOCK_LEN],
        }

        impl $name {
            /// Create a MAC instance keyed with `key` (any length; longer keys are hashed
            /// first, as required by RFC 2104).
            pub fn new(key: &[u8]) -> Self {
                let mut block_key = [0u8; $hash_mod::BLOCK_LEN];
                if key.len() > $hash_mod::BLOCK_LEN {
                    let digest = $hash::digest(key);
                    block_key[..digest.len()].copy_from_slice(&digest);
                } else {
                    block_key[..key.len()].copy_from_slice(key);
                }
                let mut ipad_key = [0u8; $hash_mod::BLOCK_LEN];
                let mut opad_key = [0u8; $hash_mod::BLOCK_LEN];
                for i in 0..$hash_mod::BLOCK_LEN {
                    ipad_key[i] = block_key[i] ^ IPAD;
                    opad_key[i] = block_key[i] ^ OPAD;
                }
                let mut inner = $hash::new();
                inner.update(&ipad_key);
                $name { inner, opad_key }
            }

            /// Feed message bytes into the MAC.
            pub fn update(&mut self, data: &[u8]) {
                self.inner.update(data);
            }

            /// Finish and return the authentication tag.
            pub fn finalize(self) -> [u8; $hash_mod::DIGEST_LEN] {
                let inner_digest = self.inner.finalize();
                let mut outer = $hash::new();
                outer.update(&self.opad_key);
                outer.update(&inner_digest);
                outer.finalize()
            }

            /// One-shot convenience.
            pub fn mac(key: &[u8], data: &[u8]) -> [u8; $hash_mod::DIGEST_LEN] {
                let mut h = Self::new(key);
                h.update(data);
                h.finalize()
            }

            /// Verify a tag in constant time.
            pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
                crate::ct_eq(&Self::mac(key, data), tag)
            }
        }
    };
}

define_hmac!(
    HmacSha256,
    Sha256,
    sha256,
    "HMAC-SHA-256 (RFC 2104 / RFC 4231)."
);
define_hmac!(
    HmacSha512,
    Sha512,
    sha512,
    "HMAC-SHA-512 (RFC 2104 / RFC 4231)."
);

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let data = b"Hi There";
        assert_eq!(
            hex(&HmacSha256::mac(&key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex(&HmacSha512::mac(&key, data)),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let key = b"Jefe";
        let data = b"what do ya want for nothing?";
        assert_eq!(
            hex(&HmacSha256::mac(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        assert_eq!(
            hex(&HmacSha512::mac(key, data)),
            "164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7ea250554\
             9758bf75c05a994a6d034f65f8f0e6fdcaeab1a34d4a6b4b636e070a38bce737"
        );
    }

    // RFC 4231 test case 3: 20-byte 0xaa key, 50 bytes of 0xdd data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&HmacSha256::mac(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex(&HmacSha256::mac(&key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
        assert_eq!(
            hex(&HmacSha512::mac(&key, data)),
            "80b24263c7c1a3ebb71493c1dd7be8b49b46d1f41b4aeec1121b013783f8f352\
             6b56d037e05f2598bd0fd2215d6a1e5295e64f73f63f0aec8b915a985d786598"
        );
    }

    #[test]
    fn verify_accepts_correct_tag_and_rejects_wrong() {
        let key = b"bin-key-17";
        let tag = HmacSha256::mac(key, b"keyword");
        assert!(HmacSha256::verify(key, b"keyword", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!HmacSha256::verify(key, b"keyword", &bad));
        assert!(!HmacSha256::verify(b"other-key", b"keyword", &tag));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"k";
        let data = b"splitting a message into pieces must not change the MAC";
        let mut h = HmacSha256::new(key);
        for chunk in data.chunks(5) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), HmacSha256::mac(key, data));
    }

    #[test]
    fn different_keys_give_different_macs() {
        let a = HmacSha256::mac(b"key-a", b"payload");
        let b = HmacSha256::mac(b"key-b", b"payload");
        assert_ne!(a, b);
    }
}
