//! AES-128 block cipher and CTR-mode symmetric encryption.
//!
//! §3 of the paper: "We use symmetric-key encryption as the encryption method since it can
//! handle large document sizes efficiently." Each document is encrypted under its own
//! symmetric key; that key is what the RSA blind-decryption protocol of §4.4 later releases to
//! the user. [`AesCtr`] is the document cipher used by the protocol crate.

/// AES block size in bytes.
pub const BLOCK_SIZE: usize = 16;
/// AES-128 key size in bytes.
pub const KEY_SIZE: usize = 16;
/// CTR nonce size in bytes (the remaining 8 bytes of the counter block are the block counter).
pub const NONCE_SIZE: usize = 8;

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// AES-128 block cipher (encryption direction only — CTR mode never needs the inverse cipher).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expand a 16-byte key into the 11 round keys.
    pub fn new(key: &[u8; KEY_SIZE]) -> Self {
        let mut round_keys = [[0u8; 16]; 11];
        round_keys[0].copy_from_slice(key);
        for round in 1..11 {
            let prev = round_keys[round - 1];
            let mut temp = [prev[12], prev[13], prev[14], prev[15]];
            // RotWord + SubWord + Rcon
            temp.rotate_left(1);
            for b in temp.iter_mut() {
                *b = SBOX[*b as usize];
            }
            temp[0] ^= RCON[round - 1];
            let mut rk = [0u8; 16];
            for i in 0..4 {
                rk[i] = prev[i] ^ temp[i];
            }
            for i in 4..16 {
                rk[i] = prev[i] ^ rk[i - 4];
            }
            round_keys[round] = rk;
        }
        Aes128 { round_keys }
    }

    /// Encrypt a single 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_SIZE]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// State is column-major: byte `i` is row `i % 4`, column `i / 4`.
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    // Row 1: shift left by 1.
    state[1] = s[5];
    state[5] = s[9];
    state[9] = s[13];
    state[13] = s[1];
    // Row 2: shift left by 2.
    state[2] = s[10];
    state[6] = s[14];
    state[10] = s[2];
    state[14] = s[6];
    // Row 3: shift left by 3.
    state[3] = s[15];
    state[7] = s[3];
    state[11] = s[7];
    state[15] = s[11];
}

fn xtime(b: u8) -> u8 {
    let shifted = b << 1;
    if b & 0x80 != 0 {
        shifted ^ 0x1b
    } else {
        shifted
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for col in 0..4 {
        let base = col * 4;
        let a0 = state[base];
        let a1 = state[base + 1];
        let a2 = state[base + 2];
        let a3 = state[base + 3];
        state[base] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
        state[base + 1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
        state[base + 2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
        state[base + 3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
    }
}

/// AES-128 in counter (CTR) mode.
///
/// The ciphertext layout is `nonce (8 bytes) || keystream-XOR(plaintext)`; CTR is its own
/// inverse so [`AesCtr::decrypt`] simply re-derives the keystream.
#[derive(Clone)]
pub struct AesCtr {
    cipher: Aes128,
}

impl AesCtr {
    /// Create a CTR-mode cipher from a 16-byte key.
    pub fn new(key: &[u8; KEY_SIZE]) -> Self {
        AesCtr {
            cipher: Aes128::new(key),
        }
    }

    /// Create from a byte slice, validating the length.
    pub fn from_slice(key: &[u8]) -> Result<Self, crate::CryptoError> {
        if key.len() != KEY_SIZE {
            return Err(crate::CryptoError::InvalidKeyLength {
                expected: KEY_SIZE,
                actual: key.len(),
            });
        }
        let mut k = [0u8; KEY_SIZE];
        k.copy_from_slice(key);
        Ok(Self::new(&k))
    }

    /// Encrypt `plaintext` under the given 8-byte nonce. The nonce is prepended to the output.
    pub fn encrypt(&self, nonce: &[u8; NONCE_SIZE], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(NONCE_SIZE + plaintext.len());
        out.extend_from_slice(nonce);
        out.extend_from_slice(plaintext);
        self.apply_keystream(nonce, &mut out[NONCE_SIZE..]);
        out
    }

    /// Decrypt a ciphertext produced by [`AesCtr::encrypt`].
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, crate::CryptoError> {
        if ciphertext.len() < NONCE_SIZE {
            return Err(crate::CryptoError::MalformedCiphertext);
        }
        let mut nonce = [0u8; NONCE_SIZE];
        nonce.copy_from_slice(&ciphertext[..NONCE_SIZE]);
        let mut out = ciphertext[NONCE_SIZE..].to_vec();
        self.apply_keystream(&nonce, &mut out);
        Ok(out)
    }

    fn apply_keystream(&self, nonce: &[u8; NONCE_SIZE], data: &mut [u8]) {
        let mut counter_block = [0u8; BLOCK_SIZE];
        counter_block[..NONCE_SIZE].copy_from_slice(nonce);
        for (block_idx, chunk) in data.chunks_mut(BLOCK_SIZE).enumerate() {
            counter_block[NONCE_SIZE..].copy_from_slice(&(block_idx as u64).to_be_bytes());
            let mut keystream = counter_block;
            self.cipher.encrypt_block(&mut keystream);
            for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
                *b ^= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS-197 Appendix B example.
    #[test]
    fn fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(hex(&block), "3925841d02dc09fbdc118597196a0b32");
    }

    // FIPS-197 Appendix C.1 (key 000102...0f, plaintext 00112233...ff).
    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let mut block: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(hex(&block), "69c4e0d86a7b0430d8cdb78070b4c55a");
    }

    // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, first block.
    #[test]
    fn sp800_38a_ctr_keystream_first_block() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        // The reference counter block f0f1f2...ff; our CTR layout differs (nonce || counter),
        // so check the raw block-cipher output instead, which is what SP 800-38A tabulates.
        let mut block = [
            0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa, 0xfb, 0xfc, 0xfd,
            0xfe, 0xff,
        ];
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(hex(&block), "ec8cdf7398607cb0f2d21675ea9ea1e4");
    }

    #[test]
    fn ctr_round_trip_various_lengths() {
        let key = [7u8; KEY_SIZE];
        let ctr = AesCtr::new(&key);
        let nonce = [1u8; NONCE_SIZE];
        for len in [0usize, 1, 15, 16, 17, 100, 1000, 4096] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let ct = ctr.encrypt(&nonce, &plaintext);
            assert_eq!(ct.len(), len + NONCE_SIZE);
            assert_eq!(ctr.decrypt(&ct).unwrap(), plaintext, "len {len}");
        }
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let ctr = AesCtr::new(&[9u8; KEY_SIZE]);
        let pt = b"the content of a sensitive document".to_vec();
        let ct = ctr.encrypt(&[0u8; NONCE_SIZE], &pt);
        assert_ne!(&ct[NONCE_SIZE..], &pt[..]);
    }

    #[test]
    fn wrong_key_garbles_plaintext() {
        let ct = AesCtr::new(&[1u8; KEY_SIZE]).encrypt(&[0u8; NONCE_SIZE], b"hello world");
        let wrong = AesCtr::new(&[2u8; KEY_SIZE]).decrypt(&ct).unwrap();
        assert_ne!(wrong, b"hello world".to_vec());
    }

    #[test]
    fn different_nonces_give_different_ciphertexts() {
        let ctr = AesCtr::new(&[3u8; KEY_SIZE]);
        let a = ctr.encrypt(&[0u8; NONCE_SIZE], b"same plaintext");
        let b = ctr.encrypt(&[1u8; NONCE_SIZE], b"same plaintext");
        assert_ne!(a[NONCE_SIZE..], b[NONCE_SIZE..]);
    }

    #[test]
    fn truncated_ciphertext_is_rejected() {
        let ctr = AesCtr::new(&[3u8; KEY_SIZE]);
        assert!(ctr.decrypt(&[1, 2, 3]).is_err());
    }

    #[test]
    fn from_slice_validates_length() {
        assert!(AesCtr::from_slice(&[0u8; 16]).is_ok());
        assert!(AesCtr::from_slice(&[0u8; 15]).is_err());
        assert!(AesCtr::from_slice(&[0u8; 32]).is_err());
    }
}
