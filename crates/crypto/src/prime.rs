//! Primality testing and prime generation for RSA key generation.
//!
//! The paper uses a 1024-bit RSA modulus built from two random 512-bit primes (§8.1). This
//! module provides Miller–Rabin primality testing with a small-prime trial-division prefilter
//! and a generator for random primes of a requested bit length.

use crate::bigint::BigUint;
use rand::Rng;

/// Small primes used for trial division before the (much more expensive) Miller–Rabin rounds.
const SMALL_PRIMES: [u32; 60] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281,
];

/// Number of Miller–Rabin rounds. 32 rounds push the error probability below 2⁻⁶⁴ for the
/// key sizes used here, far below the probability of hardware failure.
const MILLER_RABIN_ROUNDS: usize = 16;

/// Returns `true` if `n` is (probably) prime.
///
/// Deterministically correct for all `n < 283²` (covered by trial division); probabilistic
/// with error < 4^-rounds beyond that.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = BigUint::from_u64(p as u64);
        if n == &pb {
            return true;
        }
        if n.div_rem_u32(p).1 == 0 {
            return false;
        }
    }
    miller_rabin(n, MILLER_RABIN_ROUNDS, rng)
}

/// Miller–Rabin with `rounds` random bases. `n` must be odd and > 3 when this is called.
fn miller_rabin<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    let one = BigUint::one();
    let two = BigUint::from_u64(2);
    let n_minus_1 = n.sub(&one);
    // Write n-1 = d * 2^s with d odd.
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }
    'witness: for _ in 0..rounds {
        // Random base in [2, n-2].
        let a = loop {
            let candidate = BigUint::random_below(rng, &n_minus_1);
            if candidate > one {
                break candidate;
            }
        };
        let mut x = a.modpow(&d, n);
        if x == one || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = x.modpow(&two, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generate a random (probable) prime with exactly `bits` bits.
///
/// The candidate's top bit and lowest bit are forced to 1 so the product of two such primes
/// has exactly `2·bits` bits, as RSA key generation expects.
pub fn generate_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 8, "prime size too small to be meaningful");
    loop {
        let mut candidate = BigUint::random_bits(rng, bits);
        if candidate.is_even() {
            candidate = candidate.add(&BigUint::one());
        }
        // Force the second-highest bit too so p*q keeps the full modulus length.
        candidate.set_bit(bits - 1);
        candidate.set_bit(bits - 2);
        if is_probable_prime(&candidate, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn small_primes_are_prime() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [2u64, 3, 5, 7, 11, 13, 97, 101, 257, 65537, 1009, 104729] {
            assert!(is_probable_prime(&big(p), &mut rng), "{p} should be prime");
        }
    }

    #[test]
    fn small_composites_are_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        for c in [
            0u64, 1, 4, 6, 9, 15, 21, 25, 91, 561, 1105, 6601, 65536, 100000,
        ] {
            assert!(
                !is_probable_prime(&big(c), &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_are_rejected() {
        // Carmichael numbers fool the Fermat test but not Miller–Rabin.
        let mut rng = StdRng::seed_from_u64(3);
        for c in [
            561u64, 1105, 1729, 2465, 2821, 6601, 8911, 10585, 15841, 29341,
        ] {
            assert!(!is_probable_prime(&big(c), &mut rng), "{c} is Carmichael");
        }
    }

    #[test]
    fn large_known_prime_is_accepted() {
        // 2^61 - 1 is a Mersenne prime.
        let mut rng = StdRng::seed_from_u64(4);
        let p = big((1u64 << 61) - 1);
        assert!(is_probable_prime(&p, &mut rng));
        // 2^67 - 1 = 193707721 × 761838257287 is composite (Mersenne's famous error).
        let c = BigUint::one().shl(67).sub(&BigUint::one());
        assert!(!is_probable_prime(&c, &mut rng));
    }

    #[test]
    fn product_of_two_primes_is_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = generate_prime(64, &mut rng);
        let q = generate_prime(64, &mut rng);
        assert!(!is_probable_prime(&p.mul(&q), &mut rng));
    }

    #[test]
    fn generated_primes_have_requested_length() {
        let mut rng = StdRng::seed_from_u64(6);
        for bits in [16usize, 32, 64, 128] {
            let p = generate_prime(bits, &mut rng);
            assert_eq!(p.bit_len(), bits, "bits {bits}");
            assert!(!p.is_even());
            assert!(is_probable_prime(&p, &mut rng));
        }
    }

    #[test]
    fn generated_primes_differ() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = generate_prime(64, &mut rng);
        let b = generate_prime(64, &mut rng);
        assert_ne!(a, b);
    }
}
