//! Arbitrary-precision unsigned integers.
//!
//! This is the arithmetic substrate for the RSA operations of §4.4 (blind decryption of
//! per-document keys) and §7 (signatures). It provides exactly what RSA needs — comparison,
//! addition/subtraction, schoolbook multiplication, binary long division, modular
//! exponentiation through Montgomery multiplication, and modular inverses through the extended
//! Euclidean algorithm — with `u32` limbs and `u64` intermediates so it is portable and easy to
//! audit.

use rand::Rng;
use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer (little-endian `u32` limbs, always normalized:
/// no trailing zero limbs; zero is the empty limb vector).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Construct from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut n = BigUint {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        n.normalize();
        n
    }

    /// Construct from big-endian bytes (as produced by hash functions and key material).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(4));
        let mut chunk_start = bytes.len();
        while chunk_start > 0 {
            let start = chunk_start.saturating_sub(4);
            let mut limb = 0u32;
            for &b in &bytes[start..chunk_start] {
                limb = (limb << 8) | b as u32;
            }
            limbs.push(limb);
            chunk_start = start;
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serialize to big-endian bytes with no leading zeros (empty vector for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zero bytes of the most significant limb.
                let mut skipping = true;
                for b in bytes {
                    if skipping && b == 0 {
                        continue;
                    }
                    skipping = false;
                    out.push(b);
                }
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serialize to exactly `len` big-endian bytes, left-padded with zeros.
    ///
    /// Panics if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Lossy conversion to `u64` (returns `None` if the value does not fit).
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | ((self.limbs[1] as u64) << 32)),
            _ => None,
        }
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even (0 is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// The `i`-th bit (bit 0 is the least significant).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 32)) & 1 == 1
    }

    /// Set the `i`-th bit to 1.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 32;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % 32);
    }

    fn normalize(&mut self) {
        while let Some(&0) = self.limbs.last() {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in long.iter().enumerate() {
            let sum = limb as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
            out.push(sum as u32);
            carry = sum >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`. Panics in debug builds if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        debug_assert!(self >= other, "BigUint::sub underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let diff =
                self.limbs[i] as i64 - other.limbs.get(i).copied().unwrap_or(0) as i64 - borrow;
            if diff < 0 {
                out.push((diff + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(diff as u32);
                borrow = 0;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self * other` (schoolbook multiplication).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Multiply by a single `u32`.
    pub fn mul_u32(&self, m: u32) -> BigUint {
        if m == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for &l in &self.limbs {
            let cur = l as u64 * m as u64 + carry;
            out.push(cur as u32);
            carry = cur >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Add a single `u32`.
    pub fn add_u32(&self, a: u32) -> BigUint {
        self.add(&BigUint::from_u64(a as u64))
    }

    /// Shift left by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            let mut n = self.clone();
            n.normalize();
            return n;
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Shift right by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (32 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Divide by a single `u32`, returning quotient and remainder. Panics if `d == 0`.
    pub fn div_rem_u32(&self, d: u32) -> (BigUint, u32) {
        assert!(d != 0, "division by zero");
        let mut quotient = vec![0u32; self.limbs.len()];
        let mut rem = 0u64;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 32) | self.limbs[i] as u64;
            quotient[i] = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        let mut q = BigUint { limbs: quotient };
        q.normalize();
        (q, rem as u32)
    }

    /// Divide `self` by `divisor`, returning `(quotient, remainder)`.
    ///
    /// Binary long division: O(bits × limbs). RSA only divides in key generation and in
    /// out-of-Montgomery reductions, so clarity wins over a Knuth-D implementation.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u32(divisor.limbs[0]);
            return (q, BigUint::from_u64(r as u64));
        }
        let mut quotient = BigUint::zero();
        let mut remainder = BigUint::zero();
        for i in (0..self.bit_len()).rev() {
            remainder = remainder.shl(1);
            if self.bit(i) {
                if remainder.limbs.is_empty() {
                    remainder.limbs.push(1);
                } else {
                    remainder.limbs[0] |= 1;
                }
            }
            if &remainder >= divisor {
                remainder = remainder.sub(divisor);
                quotient.set_bit(i);
            }
        }
        quotient.normalize();
        remainder.normalize();
        (quotient, remainder)
    }

    /// `self mod modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// `(self * other) mod modulus` without Montgomery (used for even moduli and setup).
    pub fn mulmod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// `self^exponent mod modulus`.
    ///
    /// Uses Montgomery multiplication for odd moduli (the RSA case) and falls back to plain
    /// square-and-multiply with division for even moduli.
    pub fn modpow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modulus must be non-zero");
        if modulus.is_one() {
            return BigUint::zero();
        }
        if exponent.is_zero() {
            return BigUint::one();
        }
        if !modulus.is_even() {
            let ctx = MontgomeryCtx::new(modulus);
            return ctx.modpow(self, exponent);
        }
        // Fallback for even moduli.
        let mut base = self.rem(modulus);
        let mut result = BigUint::one();
        for i in 0..exponent.bit_len() {
            if exponent.bit(i) {
                result = result.mulmod(&base, modulus);
            }
            base = base.mulmod(&base, modulus);
        }
        result
    }

    /// Greatest common divisor (Euclid).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse: returns `x` with `self * x ≡ 1 (mod modulus)`, or `None` if
    /// `gcd(self, modulus) != 1`.
    pub fn modinv(&self, modulus: &BigUint) -> Option<BigUint> {
        if modulus.is_zero() || self.is_zero() {
            return None;
        }
        // Extended Euclid with signed coefficients tracked as (sign, magnitude).
        let mut r_prev = modulus.clone();
        let mut r = self.rem(modulus);
        if r.is_zero() {
            return None;
        }
        // t coefficients: t_prev = 0, t = 1.
        let mut t_prev = (false, BigUint::zero()); // (negative?, magnitude)
        let mut t = (false, BigUint::one());
        while !r.is_zero() {
            let (q, rem) = r_prev.div_rem(&r);
            // t_next = t_prev - q * t
            let qt = q.mul(&t.1);
            let t_next = signed_sub(&t_prev, &(t.0, qt));
            r_prev = r;
            r = rem;
            t_prev = t;
            t = t_next;
        }
        if !r_prev.is_one() {
            return None;
        }
        // t_prev is the inverse; reduce into [0, modulus).
        let mag = t_prev.1.rem(modulus);
        if t_prev.0 && !mag.is_zero() {
            Some(modulus.sub(&mag))
        } else {
            Some(mag)
        }
    }

    /// Sample a uniformly random value with exactly `bits` bits (the top bit is forced to 1).
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        assert!(bits > 0);
        let limbs_needed = bits.div_ceil(32);
        let mut limbs = Vec::with_capacity(limbs_needed);
        for _ in 0..limbs_needed {
            limbs.push(rng.gen::<u32>());
        }
        // Mask off excess bits and force the top bit.
        let top_bits = bits - (limbs_needed - 1) * 32;
        let mask: u32 = if top_bits == 32 {
            u32::MAX
        } else {
            (1u32 << top_bits) - 1
        };
        let last = limbs_needed - 1;
        limbs[last] &= mask;
        limbs[last] |= 1 << (top_bits - 1);
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Sample a uniformly random value in `[1, bound)`. Panics if `bound <= 1`.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(bound > &BigUint::one(), "bound must exceed 1");
        let bits = bound.bit_len();
        loop {
            let limbs_needed = bits.div_ceil(32);
            let mut limbs = Vec::with_capacity(limbs_needed);
            for _ in 0..limbs_needed {
                limbs.push(rng.gen::<u32>());
            }
            let top_bits = bits - (limbs_needed - 1) * 32;
            let mask: u32 = if top_bits == 32 {
                u32::MAX
            } else {
                (1u32 << top_bits) - 1
            };
            let last = limbs_needed - 1;
            limbs[last] &= mask;
            let mut candidate = BigUint { limbs };
            candidate.normalize();
            if !candidate.is_zero() && &candidate < bound {
                return candidate;
            }
        }
    }
}

/// `a - b` on signed-magnitude pairs `(negative?, magnitude)`.
fn signed_sub(a: &(bool, BigUint), b: &(bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        // a - b where both non-negative.
        (false, false) => {
            if a.1 >= b.1 {
                (false, a.1.sub(&b.1))
            } else {
                (true, b.1.sub(&a.1))
            }
        }
        // a - (-b) = a + b
        (false, true) => (false, a.1.add(&b.1)),
        // (-a) - b = -(a + b)
        (true, false) => (true, a.1.add(&b.1)),
        // (-a) - (-b) = b - a
        (true, true) => {
            if b.1 >= a.1 {
                (false, b.1.sub(&a.1))
            } else {
                (true, a.1.sub(&b.1))
            }
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl std::fmt::Debug for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BigUint(0x{self:x})")
    }
}

impl std::fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                write!(f, "{limb:x}")?;
            } else {
                write!(f, "{limb:08x}")?;
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Decimal conversion through repeated division by 10^9.
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut n = self.clone();
        while !n.is_zero() {
            let (q, r) = n.div_rem_u32(1_000_000_000);
            digits.push(r);
            n = q;
        }
        write!(f, "{}", digits.last().unwrap())?;
        for d in digits.iter().rev().skip(1) {
            write!(f, "{d:09}")?;
        }
        Ok(())
    }
}

/// Montgomery-multiplication context for a fixed odd modulus.
pub struct MontgomeryCtx {
    n: Vec<u32>,
    n_limbs: usize,
    n0_inv: u32,
    r2: BigUint,
    modulus: BigUint,
}

impl MontgomeryCtx {
    /// Build a context for an odd modulus.
    pub fn new(modulus: &BigUint) -> Self {
        assert!(!modulus.is_even(), "Montgomery requires an odd modulus");
        assert!(!modulus.is_zero());
        let n_limbs = modulus.limbs.len();
        // n0_inv = -(n[0]^-1) mod 2^32 via Newton iteration.
        let n0 = modulus.limbs[0];
        let mut inv: u32 = 1;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u32.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n0_inv = inv.wrapping_neg();
        // R^2 mod n where R = 2^(32*n_limbs).
        let r2 = BigUint::one().shl(64 * n_limbs).rem(modulus);
        MontgomeryCtx {
            n: modulus.limbs.clone(),
            n_limbs,
            n0_inv,
            r2,
            modulus: modulus.clone(),
        }
    }

    fn to_limbs(&self, v: &BigUint) -> Vec<u32> {
        let mut limbs = v.limbs.clone();
        limbs.resize(self.n_limbs, 0);
        limbs
    }

    fn limbs_into_biguint(&self, mut limbs: Vec<u32>) -> BigUint {
        let mut n = BigUint {
            limbs: std::mem::take(&mut limbs),
        };
        n.normalize();
        n
    }

    /// CIOS Montgomery multiplication: returns `a * b * R^-1 mod n` on limb vectors of
    /// length `n_limbs`.
    fn mont_mul(&self, a: &[u32], b: &[u32]) -> Vec<u32> {
        let k = self.n_limbs;
        let mut t = vec![0u64; k + 2];
        for &ai in a.iter().take(k) {
            // t += ai * b
            let mut carry = 0u64;
            for j in 0..k {
                let cur = t[j] + ai as u64 * b[j] as u64 + carry;
                t[j] = cur & 0xffff_ffff;
                carry = cur >> 32;
            }
            let cur = t[k] + carry;
            t[k] = cur & 0xffff_ffff;
            t[k + 1] += cur >> 32;

            // m = t[0] * n0_inv mod 2^32
            let m = (t[0] as u32).wrapping_mul(self.n0_inv) as u64;
            // t += m * n; then shift right one limb.
            let cur = t[0] + m * self.n[0] as u64;
            let mut carry = cur >> 32;
            for j in 1..k {
                let cur = t[j] + m * self.n[j] as u64 + carry;
                t[j - 1] = cur & 0xffff_ffff;
                carry = cur >> 32;
            }
            let cur = t[k] + carry;
            t[k - 1] = cur & 0xffff_ffff;
            t[k] = t[k + 1] + (cur >> 32);
            t[k + 1] = 0;
        }
        let mut result: Vec<u32> = t[..k].iter().map(|&x| x as u32).collect();
        let overflow = t[k] != 0;
        // Final conditional subtraction.
        if overflow || !less_than(&result, &self.n) {
            sub_in_place(&mut result, &self.n);
        }
        result
    }

    /// Convert into the Montgomery domain.
    fn to_mont(&self, v: &BigUint) -> Vec<u32> {
        let reduced = v.rem(&self.modulus);
        self.mont_mul(&self.to_limbs(&reduced), &self.to_limbs(&self.r2))
    }

    /// Convert out of the Montgomery domain.
    fn mont_into_biguint(&self, v: &[u32]) -> BigUint {
        let one = {
            let mut l = vec![0u32; self.n_limbs];
            l[0] = 1;
            l
        };
        self.limbs_into_biguint(self.mont_mul(v, &one))
    }

    /// `base^exponent mod n` using left-to-right square-and-multiply in the Montgomery domain.
    pub fn modpow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        if exponent.is_zero() {
            return BigUint::one().rem(&self.modulus);
        }
        let base_m = self.to_mont(base);
        let mut acc = self.to_mont(&BigUint::one());
        for i in (0..exponent.bit_len()).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exponent.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        self.mont_into_biguint(&acc)
    }
}

/// `a < b` for equal-length limb slices.
fn less_than(a: &[u32], b: &[u32]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

/// `a -= b` (mod 2^(32·len)) for equal-length limb slices.
///
/// A final borrow is allowed: in the Montgomery reduction the minuend may carry an implicit
/// extra top limb (the CIOS overflow word), which the borrow cancels.
fn sub_in_place(a: &mut [u32], b: &[u32]) {
    let mut borrow = 0i64;
    for i in 0..a.len() {
        let diff = a[i] as i64 - b[i] as i64 - borrow;
        if diff < 0 {
            a[i] = (diff + (1i64 << 32)) as u32;
            borrow = 1;
        } else {
            a[i] = diff as u32;
            borrow = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn construction_and_conversion() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(big(0).to_u64(), Some(0));
        assert_eq!(big(12345).to_u64(), Some(12345));
        assert_eq!(big(u64::MAX).to_u64(), Some(u64::MAX));
        assert_eq!(BigUint::from_bytes_be(&[]).to_u64(), Some(0));
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 1, 0]).to_u64(), Some(256));
    }

    #[test]
    fn byte_round_trip() {
        let n = BigUint::from_bytes_be(&[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]);
        assert_eq!(
            n.to_bytes_be(),
            vec![0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]
        );
        assert_eq!(n.to_bytes_be_padded(12)[..3], [0, 0, 0]);
    }

    #[test]
    fn bit_operations() {
        let n = big(0b1011_0010);
        assert_eq!(n.bit_len(), 8);
        assert!(n.bit(1));
        assert!(!n.bit(0));
        assert!(n.bit(7));
        assert!(!n.bit(100));
        let mut m = BigUint::zero();
        m.set_bit(100);
        assert_eq!(m.bit_len(), 101);
        assert!(m.bit(100));
    }

    #[test]
    fn addition_and_subtraction() {
        let a = big(u64::MAX);
        let b = big(1);
        let sum = a.add(&b);
        assert_eq!(sum.bit_len(), 65);
        assert_eq!(sum.sub(&b), a);
        assert_eq!(big(1000).sub(&big(999)).to_u64(), Some(1));
        assert_eq!(big(5).sub(&big(5)), BigUint::zero());
    }

    #[test]
    fn multiplication_small_cases() {
        assert_eq!(big(0).mul(&big(12345)), BigUint::zero());
        assert_eq!(big(7).mul(&big(6)).to_u64(), Some(42));
        assert_eq!(
            big(u32::MAX as u64).mul(&big(u32::MAX as u64)).to_u64(),
            Some((u32::MAX as u64) * (u32::MAX as u64))
        );
        assert_eq!(big(123456789).mul_u32(1000).to_u64(), Some(123456789000));
    }

    #[test]
    fn shifts() {
        assert_eq!(big(1).shl(70).bit_len(), 71);
        assert_eq!(big(1).shl(70).shr(70).to_u64(), Some(1));
        assert_eq!(big(0b1010).shr(1).to_u64(), Some(0b101));
        assert_eq!(big(12345).shl(0).to_u64(), Some(12345));
        assert_eq!(big(12345).shr(64), BigUint::zero());
    }

    #[test]
    fn division_small_cases() {
        let (q, r) = big(100).div_rem(&big(7));
        assert_eq!(q.to_u64(), Some(14));
        assert_eq!(r.to_u64(), Some(2));
        let (q, r) = big(5).div_rem(&big(100));
        assert_eq!(q, BigUint::zero());
        assert_eq!(r.to_u64(), Some(5));
        let (q, r) = big(u64::MAX).div_rem_u32(3);
        assert_eq!(q.to_u64(), Some(u64::MAX / 3));
        assert_eq!(r, (u64::MAX % 3) as u32);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = big(5).div_rem(&BigUint::zero());
    }

    #[test]
    fn modpow_small_known_values() {
        // 4^13 mod 497 = 445 (classic textbook example).
        assert_eq!(big(4).modpow(&big(13), &big(497)).to_u64(), Some(445));
        // Fermat: a^(p-1) mod p = 1 for prime p not dividing a.
        assert_eq!(big(2).modpow(&big(1008), &big(1009)).to_u64(), Some(1));
        // Even modulus fallback path.
        assert_eq!(big(3).modpow(&big(5), &big(16)).to_u64(), Some(243 % 16));
        // Exponent zero.
        assert_eq!(big(7).modpow(&BigUint::zero(), &big(13)).to_u64(), Some(1));
        // Modulus one.
        assert_eq!(big(7).modpow(&big(3), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn modpow_large_operands() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = BigUint::random_bits(&mut rng, 256);
        let m = if m.is_even() {
            m.add(&BigUint::one())
        } else {
            m
        };
        let a = BigUint::random_bits(&mut rng, 200);
        // a^1 = a mod m
        assert_eq!(a.modpow(&BigUint::one(), &m), a.rem(&m));
        // (a^2)^3 == a^6
        let a2 = a.modpow(&big(2), &m);
        assert_eq!(a2.modpow(&big(3), &m), a.modpow(&big(6), &m));
    }

    #[test]
    fn gcd_and_modinv() {
        assert_eq!(big(54).gcd(&big(24)).to_u64(), Some(6));
        assert_eq!(big(17).gcd(&big(31)).to_u64(), Some(1));
        let inv = big(3).modinv(&big(11)).unwrap();
        assert_eq!(inv.to_u64(), Some(4)); // 3*4 = 12 ≡ 1 mod 11
        let inv = big(65537).modinv(&big(1_000_000_007)).unwrap();
        assert_eq!(
            big(65537).mul(&inv).rem(&big(1_000_000_007)).to_u64(),
            Some(1)
        );
        // Not invertible.
        assert!(big(6).modinv(&big(9)).is_none());
        assert!(BigUint::zero().modinv(&big(7)).is_none());
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut rng = StdRng::seed_from_u64(42);
        for bits in [1usize, 7, 32, 33, 64, 100, 512] {
            let n = BigUint::random_bits(&mut rng, bits);
            assert_eq!(n.bit_len(), bits, "bits {bits}");
        }
    }

    #[test]
    fn random_below_is_in_range() {
        let mut rng = StdRng::seed_from_u64(43);
        let bound = big(1000);
        for _ in 0..100 {
            let n = BigUint::random_below(&mut rng, &bound);
            assert!(!n.is_zero() && n < bound);
        }
    }

    #[test]
    fn display_decimal_and_hex() {
        assert_eq!(format!("{}", BigUint::zero()), "0");
        assert_eq!(
            format!("{}", big(1234567890123456789)),
            "1234567890123456789"
        );
        assert_eq!(format!("{:x}", big(0xdeadbeef)), "deadbeef");
        let big_num = big(10).modpow(&big(0), &big(7)); // 1
        assert_eq!(format!("{big_num}"), "1");
        // A number spanning several limbs: 2^96.
        let n = BigUint::one().shl(96);
        assert_eq!(format!("{n}"), "79228162514264337593543950336");
    }

    #[test]
    fn montgomery_matches_naive_modmul() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let m = {
                let n = BigUint::random_bits(&mut rng, 128);
                if n.is_even() {
                    n.add(&BigUint::one())
                } else {
                    n
                }
            };
            let a = BigUint::random_bits(&mut rng, 120);
            let e = BigUint::random_bits(&mut rng, 40);
            let naive = {
                // plain square-and-multiply with division
                let mut base = a.rem(&m);
                let mut result = BigUint::one();
                for i in 0..e.bit_len() {
                    if e.bit(i) {
                        result = result.mulmod(&base, &m);
                    }
                    base = base.mulmod(&base, &m);
                }
                result
            };
            assert_eq!(a.modpow(&e, &m), naive);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_add_sub_round_trip(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
            let x = big(a);
            let y = big(b);
            prop_assert_eq!(x.add(&y).sub(&y), x);
        }

        #[test]
        fn prop_mul_matches_u128(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
            let expected = a as u128 * b as u128;
            let got = big(a).mul(&big(b));
            let hi = (expected >> 64) as u64;
            let lo = expected as u64;
            let expected_big = big(hi).shl(64).add(&big(lo));
            prop_assert_eq!(got, expected_big);
        }

        #[test]
        fn prop_div_rem_reconstructs(a in 0u64..u64::MAX, d in 1u64..u64::MAX) {
            let (q, r) = big(a).div_rem(&big(d));
            prop_assert_eq!(q.to_u64().unwrap(), a / d);
            prop_assert_eq!(r.to_u64().unwrap(), a % d);
        }

        #[test]
        fn prop_div_rem_identity_large(seed in 0u64..u64::MAX) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = BigUint::random_bits(&mut rng, 300);
            let d = BigUint::random_bits(&mut rng, 150);
            let (q, r) = a.div_rem(&d);
            prop_assert!(r < d);
            prop_assert_eq!(q.mul(&d).add(&r), a);
        }

        #[test]
        fn prop_modinv_is_inverse(seed in 0u64..u64::MAX) {
            let mut rng = StdRng::seed_from_u64(seed);
            // A random odd modulus and a random element; retry until coprime.
            let m = {
                let n = BigUint::random_bits(&mut rng, 96);
                if n.is_even() { n.add(&BigUint::one()) } else { n }
            };
            let a = BigUint::random_bits(&mut rng, 80);
            if a.gcd(&m).is_one() {
                let inv = a.modinv(&m).unwrap();
                prop_assert_eq!(a.mul(&inv).rem(&m), BigUint::one());
            }
        }

        #[test]
        fn prop_shl_shr_round_trip(v in 0u64..u64::MAX, s in 0usize..200) {
            let n = big(v);
            prop_assert_eq!(n.shl(s).shr(s), n);
        }

        #[test]
        fn prop_bytes_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let n = BigUint::from_bytes_be(&bytes);
            let round = BigUint::from_bytes_be(&n.to_bytes_be());
            prop_assert_eq!(n, round);
        }
    }
}
