//! # mkse-crypto — cryptographic substrate for the MKSE reproduction
//!
//! The paper (Örencik & Savaş, EDBT/PAIS 2012) relies on four cryptographic building blocks:
//!
//! 1. An HMAC with a long output (`HMAC : {0,1}* → {0,1}^l`, `l = 2688` bits in the paper,
//!    obtained by concatenating SHA-2 based HMAC outputs) used for keyword-index generation
//!    (§4.1). Provided by [`sha256`], [`sha512`], [`hmac`] and [`prf`].
//! 2. A symmetric cipher for encrypting the documents themselves (§3). Provided by [`aes`]
//!    (AES-128 in CTR mode).
//! 3. RSA with *blinding* so a user can have the data owner decrypt a per-document key
//!    without revealing which key it is (§4.4), and RSA signatures for non-impersonation
//!    (§7, Theorem 4). Provided by [`rsa`] on top of the arbitrary-precision arithmetic in
//!    [`bigint`] and the primality machinery in [`prime`].
//! 4. Randomness, taken from the caller through [`rand::Rng`] so every protocol run is
//!    reproducible under a seeded RNG.
//!
//! Everything in this crate is implemented from scratch on top of `std` (plus `rand` for
//! entropy); no external cryptography crates are used. The implementations favour clarity and
//! reviewability over raw speed, but are efficient enough that the paper's timing experiments
//! (tens of thousands of HMAC invocations, a handful of RSA operations per retrieval) run in
//! milliseconds-to-seconds on a laptop.
//!
//! ## Example: the long-output PRF used for keyword indices
//!
//! ```
//! use mkse_crypto::prf::LongPrf;
//!
//! let key = [7u8; 16];
//! let prf = LongPrf::new(&key);
//! let out = prf.evaluate(b"network", 336); // 336 bytes = 2688 bits, as in the paper
//! assert_eq!(out.len(), 336);
//! // Deterministic for the same key and input:
//! assert_eq!(out, prf.evaluate(b"network", 336));
//! ```

pub mod aes;
pub mod bigint;
pub mod hmac;
pub mod prf;
pub mod prime;
pub mod rsa;
pub mod sha256;
pub mod sha512;

pub use aes::{Aes128, AesCtr};
pub use bigint::BigUint;
pub use hmac::{HmacSha256, HmacSha512};
pub use prf::LongPrf;
pub use rsa::{RsaKeyPair, RsaPublicKey, RsaSignature};
pub use sha256::Sha256;
pub use sha512::Sha512;

/// Errors produced by the cryptographic substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// The message is too large for the RSA modulus.
    MessageTooLarge,
    /// A modular inverse does not exist (operands not coprime).
    NotInvertible,
    /// Signature verification failed.
    InvalidSignature,
    /// Key material has an unexpected length.
    InvalidKeyLength { expected: usize, actual: usize },
    /// Ciphertext is malformed (e.g. shorter than the nonce).
    MalformedCiphertext,
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::MessageTooLarge => write!(f, "message does not fit under the RSA modulus"),
            CryptoError::NotInvertible => write!(f, "modular inverse does not exist"),
            CryptoError::InvalidSignature => write!(f, "signature verification failed"),
            CryptoError::InvalidKeyLength { expected, actual } => {
                write!(
                    f,
                    "invalid key length: expected {expected} bytes, got {actual}"
                )
            }
            CryptoError::MalformedCiphertext => write!(f, "malformed ciphertext"),
        }
    }
}

impl std::error::Error for CryptoError {}

/// Constant-time byte-slice equality.
///
/// Used wherever secret-dependent comparisons occur (MAC verification, signature checks) so
/// that the comparison itself does not leak how many leading bytes matched.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_equal_slices() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn ct_eq_unequal_slices() {
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"abc", b""));
    }

    #[test]
    fn error_display_is_informative() {
        let e = CryptoError::InvalidKeyLength {
            expected: 16,
            actual: 3,
        };
        let s = format!("{e}");
        assert!(s.contains("16"));
        assert!(s.contains("3"));
        assert!(!format!("{}", CryptoError::MessageTooLarge).is_empty());
        assert!(!format!("{}", CryptoError::NotInvertible).is_empty());
        assert!(!format!("{}", CryptoError::InvalidSignature).is_empty());
        assert!(!format!("{}", CryptoError::MalformedCiphertext).is_empty());
    }
}
