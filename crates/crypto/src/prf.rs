//! Long-output PRF used for keyword-index generation.
//!
//! §4.1 of the paper needs `HMAC : {0,1}* → {0,1}^l` with `l = r·d` bits (2688 bits / 336
//! bytes for the reference parameters `r = 448`, `d = 6`). The authors obtain it "by
//! concatenating different SHA2-based HMAC functions". [`LongPrf`] reproduces that idea as a
//! counter-mode expansion that alternates HMAC-SHA-256 and HMAC-SHA-512 blocks, which keeps the
//! construction a PRF (each block is an independent HMAC invocation over a domain-separated
//! input) while producing any requested output length.

use crate::hmac::{HmacSha256, HmacSha512};

/// A deterministic, keyed pseudo-random function with arbitrary output length.
///
/// ```
/// use mkse_crypto::prf::LongPrf;
/// let prf = LongPrf::new(b"bin key 3");
/// let a = prf.evaluate(b"cloud", 336);
/// let b = prf.evaluate(b"cloud", 336);
/// let c = prf.evaluate(b"privacy", 336);
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
#[derive(Clone)]
pub struct LongPrf {
    key: Vec<u8>,
}

impl LongPrf {
    /// Create a PRF instance keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        LongPrf { key: key.to_vec() }
    }

    /// The key this PRF was constructed with.
    pub fn key(&self) -> &[u8] {
        &self.key
    }

    /// Evaluate the PRF on `input`, producing exactly `out_len` bytes.
    ///
    /// Output blocks alternate between HMAC-SHA-512 and HMAC-SHA-256 of
    /// `counter || input`, mirroring the paper's "concatenation of different SHA2-based
    /// HMACs". The counter provides domain separation between blocks.
    pub fn evaluate(&self, input: &[u8], out_len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(out_len);
        let mut counter: u32 = 0;
        while out.len() < out_len {
            let mut msg = Vec::with_capacity(4 + input.len());
            msg.extend_from_slice(&counter.to_be_bytes());
            msg.extend_from_slice(input);
            if counter.is_multiple_of(2) {
                out.extend_from_slice(&HmacSha512::mac(&self.key, &msg));
            } else {
                out.extend_from_slice(&HmacSha256::mac(&self.key, &msg));
            }
            counter += 1;
        }
        out.truncate(out_len);
        out
    }

    /// Evaluate the PRF and return the output as a vector of `bits` bits
    /// (most-significant bit of each byte first).
    pub fn evaluate_bits(&self, input: &[u8], bits: usize) -> Vec<bool> {
        let bytes = self.evaluate(input, bits.div_ceil(8));
        let mut out = Vec::with_capacity(bits);
        for i in 0..bits {
            let byte = bytes[i / 8];
            let bit = (byte >> (7 - (i % 8))) & 1;
            out.push(bit == 1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_has_requested_length() {
        let prf = LongPrf::new(b"k");
        for len in [0usize, 1, 31, 32, 33, 63, 64, 65, 96, 336, 1000] {
            assert_eq!(prf.evaluate(b"x", len).len(), len, "len {len}");
        }
    }

    #[test]
    fn deterministic_per_key_and_input() {
        let prf = LongPrf::new(b"key");
        assert_eq!(prf.evaluate(b"alpha", 100), prf.evaluate(b"alpha", 100));
    }

    #[test]
    fn different_inputs_differ() {
        let prf = LongPrf::new(b"key");
        assert_ne!(prf.evaluate(b"alpha", 64), prf.evaluate(b"beta", 64));
    }

    #[test]
    fn different_keys_differ() {
        let a = LongPrf::new(b"key-a").evaluate(b"alpha", 64);
        let b = LongPrf::new(b"key-b").evaluate(b"alpha", 64);
        assert_ne!(a, b);
    }

    #[test]
    fn prefix_property() {
        // Shorter outputs are prefixes of longer ones: the expansion is counter-mode.
        let prf = LongPrf::new(b"key");
        let long = prf.evaluate(b"doc", 336);
        let short = prf.evaluate(b"doc", 100);
        assert_eq!(&long[..100], &short[..]);
    }

    #[test]
    fn bit_output_matches_byte_output() {
        let prf = LongPrf::new(b"key");
        let bytes = prf.evaluate(b"w", 4);
        let bits = prf.evaluate_bits(b"w", 32);
        for (i, bit) in bits.iter().enumerate() {
            let expected = (bytes[i / 8] >> (7 - (i % 8))) & 1 == 1;
            assert_eq!(*bit, expected);
        }
    }

    #[test]
    fn bit_output_handles_non_byte_multiples() {
        let prf = LongPrf::new(b"key");
        assert_eq!(prf.evaluate_bits(b"w", 13).len(), 13);
        assert_eq!(prf.evaluate_bits(b"w", 0).len(), 0);
    }

    #[test]
    fn paper_parameters_output_is_uniform_looking() {
        // 2688-bit output: roughly half the bits should be set (loose sanity bound).
        let prf = LongPrf::new(b"paper-params");
        let bits = prf.evaluate_bits(b"keyword", 2688);
        let ones = bits.iter().filter(|b| **b).count();
        assert!(ones > 1100 && ones < 1600, "ones = {ones}");
    }
}
