//! # mkse-experiments — regenerating every table and figure of the paper
//!
//! One binary per experiment (see DESIGN.md §5 for the experiment index):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `exp_ranking_quality` | §5 ranking-quality comparison against Eq. (4) (E1) |
//! | `exp_fig2_histograms` | Figure 2(a) and 2(b) query-distance histograms (E2, E3) |
//! | `exp_fig3_far` | Figure 3 false accept rates (E4) |
//! | `exp_fig4_timing` | Figure 4(a) index construction and 4(b) search timings (E5, E6) |
//! | `exp_table1_communication` | Table 1 communication costs (E7) |
//! | `exp_table2_computation` | Table 2 computation costs (E8) |
//! | `exp_cao_comparison` | §8.1 comparison with Cao et al. MRSE (E9) |
//! | `exp_analytic_validation` | §6 analytic model vs. measurement (E10) |
//! | `exp_bruteforce_attack` | §4.1 brute-force attack on the shared-hash baseline (E11) |
//!
//! Every binary accepts an optional `--scale <factor>` argument (default 1.0) that shrinks or
//! grows the workload, and prints the paper's reference values next to the measured ones.
//! Run them in release mode: `cargo run --release -p mkse-experiments --bin <name>`.

use std::time::{Duration, Instant};

/// Parse the common `--scale <f64>` and `--seed <u64>` arguments.
///
/// Unknown arguments are ignored so binaries can add their own flags on top.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExpArgs {
    /// Workload scale factor (1.0 = the paper's sizes).
    pub scale: f64,
    /// RNG seed (experiments are deterministic under a fixed seed).
    pub seed: u64,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            scale: 1.0,
            seed: 42,
        }
    }
}

impl ExpArgs {
    /// Parse from an iterator of command-line arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = ExpArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    if let Some(v) = iter.next().and_then(|s| s.parse().ok()) {
                        out.scale = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = iter.next().and_then(|s| s.parse().ok()) {
                        out.seed = v;
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Parse from the process environment.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Scale a count, keeping at least `min`.
    pub fn scaled(&self, reference: usize, min: usize) -> usize {
        ((reference as f64 * self.scale).round() as usize).max(min)
    }
}

/// Time a closure and return `(result, elapsed)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Format a duration in milliseconds with three decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Format a duration in seconds with three decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Print a section header for experiment output.
pub fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_flags() {
        assert_eq!(ExpArgs::parse(Vec::<String>::new()), ExpArgs::default());
        let parsed = ExpArgs::parse(
            ["--scale", "0.5", "--seed", "7", "--other", "x"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(parsed.scale, 0.5);
        assert_eq!(parsed.seed, 7);
    }

    #[test]
    fn malformed_values_fall_back_to_defaults() {
        let parsed = ExpArgs::parse(["--scale", "abc"].iter().map(|s| s.to_string()));
        assert_eq!(parsed.scale, 1.0);
    }

    #[test]
    fn scaled_respects_minimum() {
        let args = ExpArgs {
            scale: 0.001,
            seed: 1,
        };
        assert_eq!(args.scaled(1000, 10), 10);
        let args = ExpArgs {
            scale: 2.0,
            seed: 1,
        };
        assert_eq!(args.scaled(1000, 10), 2000);
    }

    #[test]
    fn timed_measures_something() {
        let (value, elapsed) = timed(|| (0..1000u64).sum::<u64>());
        assert_eq!(value, 499_500);
        assert!(elapsed.as_nanos() > 0);
        assert!(!ms(elapsed).is_empty());
        assert!(!secs(elapsed).is_empty());
    }
}
