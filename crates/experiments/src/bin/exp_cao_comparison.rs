//! E9 — §8.1 comparison with Cao et al.'s MRSE baseline.
//!
//! The paper reports, for 6000 documents: index construction 4500 s (Cao et al.) versus 60 s
//! (MKSE at the highest rank level), and search 600 ms versus 1.5 ms — three orders of
//! magnitude in construction and two-plus in search. The gap comes from the cost structure:
//! MRSE multiplies every document's (n+2)-dimensional vector by two (n+2)×(n+2) matrices
//! (O(n²) per document, with a dictionary of thousands of keywords), while MKSE performs a few
//! dozen HMACs and r-bit ANDs per document.
//!
//! This binary measures *per-document* index-construction cost and *per-document* search cost
//! for both schemes at a configurable dictionary size and document count, then extrapolates to
//! the paper's 6000-document point. Run at `--scale 1` for dictionary 4000 / enough documents
//! to average over; the default workload keeps MRSE's cubic key setup affordable.

use mkse_baselines::MrseScheme;
use mkse_core::{CloudIndex, DocumentIndexer, QueryBuilder, SchemeKeys, SystemParams};
use mkse_experiments::{header, ms, timed, ExpArgs};
use mkse_textproc::corpus::{CorpusSpec, FrequencyModel, SyntheticCorpus};
use mkse_textproc::dictionary::Dictionary;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::from_env();
    // Dictionary of 2000 keywords keeps the MRSE key setup (two O(n³) inversions) to tens of
    // seconds; the paper's point — MRSE is O(n²) per document while MKSE does not depend on
    // the dictionary at all — is already unmistakable at this size.
    let dict_size = args.scaled(2000, 200);
    let num_docs = args.scaled(200, 20);
    let paper_docs = 6000f64;
    header(&format!(
        "E9  §8.1 comparison with Cao et al. MRSE — dictionary {dict_size}, {num_docs} documents (extrapolated to 6000)"
    ));

    let mut rng = StdRng::seed_from_u64(args.seed);
    let corpus = SyntheticCorpus::generate(
        &CorpusSpec {
            num_documents: num_docs,
            vocabulary_size: dict_size,
            keywords_per_document: 20,
            frequency_model: FrequencyModel::Uniform { lo: 1, hi: 15 },
        },
        &mut rng,
    );
    let query_keywords: Vec<&str> = corpus.documents[0].keywords().into_iter().take(3).collect();

    // ---------------- MKSE ----------------
    let params = SystemParams::with_five_levels();
    let keys = SchemeKeys::generate(&params, &mut rng);
    let indexer = DocumentIndexer::new(&params, &keys);
    let (mkse_indices, mkse_index_time) = timed(|| {
        corpus
            .documents
            .iter()
            .map(|d| indexer.index_document(d))
            .collect::<Vec<_>>()
    });
    let mut cloud = CloudIndex::new(params.clone());
    cloud.insert_all(mkse_indices).expect("upload");
    let trapdoors = keys.trapdoors_for(&params, &query_keywords);
    let pool = keys.random_pool_trapdoors(&params);
    let query = QueryBuilder::new(&params)
        .add_trapdoors(&trapdoors)
        .with_randomization(&pool)
        .build(&mut rng);
    let reps: u32 = 50;
    let (_, mkse_search_time) = timed(|| {
        for _ in 0..reps {
            std::hint::black_box(cloud.search(&query));
        }
    });
    let mkse_search_time = mkse_search_time / reps;

    // ---------------- Cao et al. MRSE ----------------
    let dictionary = Dictionary::generate(dict_size);
    let mrse = MrseScheme::new(dictionary);
    let (mrse_key, mrse_setup_time) = timed(|| mrse.generate_key(&mut rng));
    let (mrse_indices, mrse_index_time) = timed(|| {
        corpus
            .documents
            .iter()
            .map(|d| {
                let kws: Vec<&str> = d.keywords();
                mrse.build_index(&mrse_key, d.id, &kws, &mut rng)
            })
            .collect::<Vec<_>>()
    });
    let (mrse_trapdoor, _) = timed(|| mrse.trapdoor(&mrse_key, &query_keywords, &mut rng));
    let (_, mrse_search_time) = timed(|| {
        for _ in 0..reps {
            std::hint::black_box(mrse.search(&mrse_indices, &mrse_trapdoor, 10));
        }
    });
    let mrse_search_time = mrse_search_time / reps;

    // ---------------- Report ----------------
    let scale_to_paper = paper_docs / num_docs as f64;
    println!("\n  measured at {num_docs} documents (dictionary {dict_size}):");
    println!("                              MKSE (rank 5)     Cao et al. MRSE");
    println!(
        "  index construction        {:>12} ms    {:>12} ms   (MRSE one-off key setup: {} ms)",
        ms(mkse_index_time),
        ms(mrse_index_time),
        ms(mrse_setup_time)
    );
    println!(
        "  search (one query)        {:>12.1} us    {:>12.1} us",
        mkse_search_time.as_secs_f64() * 1e6,
        mrse_search_time.as_secs_f64() * 1e6
    );

    let mkse_6000 = mkse_index_time.as_secs_f64() * scale_to_paper;
    let mrse_6000 = mrse_index_time.as_secs_f64() * scale_to_paper;
    println!("\n  linear extrapolation to 6000 documents:");
    println!(
        "  index construction        {:>12.1} s     {:>12.1} s      (paper: 60 s vs 4500 s)",
        mkse_6000, mrse_6000
    );
    println!(
        "  search                    {:>12.3} ms    {:>12.3} ms     (paper: 1.5 ms vs 600 ms)",
        mkse_search_time.as_secs_f64() * 1e3 * scale_to_paper,
        mrse_search_time.as_secs_f64() * 1e3 * scale_to_paper
    );
    println!(
        "\n  construction speedup: {:.0}x    search speedup: {:.0}x   (paper: ~75x and ~400x at \
         dictionary 4000; the ratio grows with the dictionary size since MRSE is O(n²) per \
         document while MKSE is independent of the dictionary)",
        mrse_index_time.as_secs_f64() / mkse_index_time.as_secs_f64().max(1e-9),
        mrse_search_time.as_secs_f64() / mkse_search_time.as_secs_f64().max(1e-9)
    );
}
