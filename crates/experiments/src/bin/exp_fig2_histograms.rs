//! E2/E3 — Figure 2: query-distance histograms demonstrating search-pattern hiding.
//!
//! Figure 2(a): distances between query pairs built from *different* genuine keywords versus
//! pairs built from the *same* genuine keywords (different random keywords each time), with
//! the number of genuine keywords unknown to the adversary (2–6 per query). 1250 distances per
//! histogram, V = 30, U = 60, r = 448, d = 6.
//!
//! Figure 2(b): the same comparison when the adversary knows the query has exactly 5 genuine
//! keywords (1000 distances per histogram). The paper reports ≈ 20% of distances in the
//! indistinguishable middle bucket, ≈ 45% below it (adversary guesses "same" with 0.6
//! confidence) and ≈ 35% above it (guesses "different" with 0.7 confidence).

use mkse_core::{Histogram, QueryBuilder, SchemeKeys, SystemParams, Trapdoor};
use mkse_experiments::{header, ExpArgs};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Build one randomized query index from `keywords` under `keys`.
fn build_query(
    params: &SystemParams,
    keys: &SchemeKeys,
    pool: &[Trapdoor],
    keywords: &[String],
    rng: &mut StdRng,
) -> mkse_core::QueryIndex {
    let refs: Vec<&str> = keywords.iter().map(|s| s.as_str()).collect();
    let trapdoors = keys.trapdoors_for(params, &refs);
    QueryBuilder::new(params)
        .add_trapdoors(&trapdoors)
        .with_randomization(pool)
        .build(rng)
}

fn keyword_set(tag: &str, count: usize, rng: &mut StdRng) -> Vec<String> {
    (0..count)
        .map(|i| format!("{tag}-{i}-{}", rng.gen::<u32>()))
        .collect()
}

fn print_histogram(label: &str, hist: &Histogram) {
    println!("\n  {label}");
    println!("  distance bucket | frequency");
    for (i, &count) in hist.counts().iter().enumerate() {
        println!(
            "  [{:>3.0}, {:>3.0})      | {}",
            hist.bucket_start(i),
            hist.bucket_start(i) + 10.0,
            count
        );
    }
}

fn main() {
    let args = ExpArgs::from_env();
    let params = SystemParams::default(); // r=448, d=6, U=60, V=30
    let mut rng = StdRng::seed_from_u64(args.seed);
    let keys = SchemeKeys::generate(&params, &mut rng);
    let pool = keys.random_pool_trapdoors(&params);

    // ---------------- Figure 2(a): unknown number of genuine keywords ----------------
    let per_group = args.scaled(50, 5);
    header(&format!(
        "E2  Figure 2(a): {} indices per keyword-count group (2..=6 genuine keywords), V=30, U=60",
        per_group
    ));

    // Former set: per_group indices per genuine-keyword count 2..=6.
    let mut former: Vec<(usize, Vec<String>)> = Vec::new();
    for count in 2..=6usize {
        for _ in 0..per_group {
            former.push((count, keyword_set("former", count, &mut rng)));
        }
    }
    // Latter set: one index per keyword count 2..=6 (fresh keywords → "different query").
    let latter: Vec<(usize, Vec<String>)> = (2..=6usize)
        .map(|c| (c, keyword_set("latter", c, &mut rng)))
        .collect();

    let mut different_hist = Histogram::new(100.0, 200.0, 10);
    for (_, kws_a) in &former {
        for (_, kws_b) in &latter {
            let qa = build_query(&params, &keys, &pool, kws_a, &mut rng);
            let qb = build_query(&params, &keys, &pool, kws_b, &mut rng);
            different_hist.record(qa.bits().hamming_distance(qb.bits()) as f64);
        }
    }

    let mut same_hist = Histogram::new(100.0, 200.0, 10);
    let same_pairs = former.len() * latter.len();
    for i in 0..same_pairs {
        let (count, kws) = &former[i % former.len()];
        let _ = count;
        let qa = build_query(&params, &keys, &pool, kws, &mut rng);
        let qb = build_query(&params, &keys, &pool, kws, &mut rng);
        same_hist.record(qa.bits().hamming_distance(qb.bits()) as f64);
    }

    print_histogram(
        &format!("different queries ({} distances)", different_hist.total()),
        &different_hist,
    );
    print_histogram(
        &format!(
            "same genuine keywords, fresh randomization ({} distances)",
            same_hist.total()
        ),
        &same_hist,
    );
    println!(
        "\n  histogram overlap coefficient: {:.3}  (1.0 = indistinguishable; the paper's point \
         is that the two histograms overlap almost completely)",
        different_hist.overlap_coefficient(&same_hist)
    );

    // ---------------- Figure 2(b): the adversary knows there are 5 genuine keywords ----------
    let group = args.scaled(200, 20);
    header(&format!(
        "E3  Figure 2(b): known keyword count; {} indices per group, reference query has 5 keywords",
        group
    ));
    let reference_keywords = keyword_set("reference", 5, &mut rng);

    let mut different_hist_b = Histogram::new(100.0, 200.0, 10);
    for count in 2..=6usize {
        for _ in 0..group {
            let other = keyword_set("other", count, &mut rng);
            let qa = build_query(&params, &keys, &pool, &reference_keywords, &mut rng);
            let qb = build_query(&params, &keys, &pool, &other, &mut rng);
            different_hist_b.record(qa.bits().hamming_distance(qb.bits()) as f64);
        }
    }
    let mut same_hist_b = Histogram::new(100.0, 200.0, 10);
    for _ in 0..(5 * group) {
        let qa = build_query(&params, &keys, &pool, &reference_keywords, &mut rng);
        let qb = build_query(&params, &keys, &pool, &reference_keywords, &mut rng);
        same_hist_b.record(qa.bits().hamming_distance(qb.bits()) as f64);
    }
    print_histogram(
        &format!("different queries ({} distances)", different_hist_b.total()),
        &different_hist_b,
    );
    print_histogram(
        &format!("same query keywords ({} distances)", same_hist_b.total()),
        &same_hist_b,
    );

    let below = same_hist_b.fraction_below(150.0);
    let mid = same_hist_b.fraction_below(160.0) - below;
    let above = 1.0 - below - mid;
    println!("\n  same-query distance bands (paper: ~45% below 150, ~20% at 150, ~35% above):");
    println!("    below 150 : {:>5.1}%", 100.0 * below);
    println!("    [150,160) : {:>5.1}%", 100.0 * mid);
    println!("    >= 160    : {:>5.1}%", 100.0 * above);
    println!(
        "  overlap coefficient with known keyword count: {:.3} (smaller than Figure 2(a), as \
         the paper observes — keeping the keyword count secret matters)",
        different_hist_b.overlap_coefficient(&same_hist_b)
    );

    // The paper's Eq. (5) predictions for these pairs. Our measured same-query distances sit
    // below the Eq. (5) value because the equation's second term treats the shared keywords'
    // contribution on 1-bits as independent between the two queries; the paper's plotted
    // histograms follow its analytic model, ours follow the actual indices (see
    // EXPERIMENTS.md for the discussion).
    let x = 5 + params.query_random_keywords;
    let shared_same = 5 + (params.query_random_keywords / 2);
    let shared_diff = params.query_random_keywords / 2;
    println!(
        "\n  Eq. (5) predictions: same-keyword pairs Δ({x},{shared_same}) = {:.0}, \
         different-keyword pairs Δ({x},{shared_diff}) = {:.0}",
        mkse_core::expected_hamming_distance(&params, x, shared_same),
        mkse_core::expected_hamming_distance(&params, x, shared_diff),
    );
}
