//! E8 — Table 2: computation costs incurred by each party.
//!
//! Paper's Table 2 (per search with one retrieved document):
//!
//! * **User** — 1 hash + bitwise product (query generation), 2 modular multiplications and
//!   3 modular exponentiations (blinding, signing, unblinding path), 1 symmetric-key
//!   decryption per retrieved document.
//! * **Data owner** — initialization offline; 4 modular exponentiations per search
//!   (trapdoor reply and blinded decryption, each with a signature check).
//! * **Server** — `σ + η·(matches)` binary comparisons over r-bit indices, nothing else.

use mkse_experiments::{header, ExpArgs};
use mkse_protocol::{OwnerConfig, SearchSession};
use mkse_textproc::corpus::{CorpusSpec, FrequencyModel, SyntheticCorpus};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::from_env();
    let num_docs = args.scaled(200, 20);
    header(&format!(
        "E8  Table 2: computation costs — {num_docs} documents, 1-keyword query, theta = 1"
    ));

    let mut rng = StdRng::seed_from_u64(args.seed);
    let corpus = SyntheticCorpus::generate(
        &CorpusSpec {
            num_documents: num_docs,
            vocabulary_size: 2_000,
            keywords_per_document: 20,
            frequency_model: FrequencyModel::Uniform { lo: 1, hi: 15 },
        },
        &mut rng,
    );

    let mut session =
        SearchSession::setup(OwnerConfig::default(), &corpus.documents, &mut rng).expect("setup");
    let kws: Vec<&str> = corpus.documents[5].keywords().into_iter().take(1).collect();
    let report = session
        .run_query(&kws, 1, &mut rng)
        .expect("query round succeeds");

    let sigma = num_docs as u64;
    let eta = session.owner.params().rank_levels() as u64;
    let matches = report.matches.len() as u64;

    println!("\nuser operations (paper: 1 hash + bitwise product, 2 mod-mul, 3 mod-exp, 1 symmetric decryption):");
    println!("{}", report.user_ops.render());
    println!("data owner operations (paper: 4 modular exponentiations per search; initialization is offline):");
    println!("{}", report.owner_ops.render());
    println!("server operations (paper: σ·η binary comparisons over r-bit indices, worst case):");
    println!("{}", report.server_ops.render());
    println!(
        "  expected comparisons: between σ = {sigma} (no matches) and σ + η·α = {} (α = {matches} matches, η = {eta})",
        sigma + eta * matches
    );
    println!(
        "\nnote: the measured user trapdoor-phase exponentiations include decrypting the bin key\n\
         received from the data owner, which the paper folds into its per-document retrieval\n\
         figure; repeated queries reuse the cached trapdoor and skip that cost entirely."
    );
}
