//! E7 — Table 1: communication costs incurred by each party (in bits).
//!
//! Runs one complete protocol round (trapdoor exchange, query + result retrieval, blinded key
//! decryption) through the three-party simulation and prints the measured bits next to the
//! paper's analytic expressions:
//!
//! | party | trapdoor | search | decrypt |
//! |---|---|---|---|
//! | user | `32·γ + log N` | `r` (+ retrieval request) | `log N` (per document, plus signature) |
//! | data owner | `log N` | 0 | `log N` |
//! | server | 0 | `α·r + θ·(doc + log N)` | 0 |

use mkse_experiments::{header, ExpArgs};
use mkse_protocol::{OwnerConfig, Party, Phase, SearchSession};
use mkse_textproc::corpus::{CorpusSpec, FrequencyModel, SyntheticCorpus};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::from_env();
    let num_docs = args.scaled(200, 20);
    let theta = 2usize;
    header(&format!(
        "E7  Table 1: communication costs — {num_docs} documents, 2-keyword query, theta = {theta}, 1024-bit RSA"
    ));

    let mut rng = StdRng::seed_from_u64(args.seed);
    let corpus = SyntheticCorpus::generate(
        &CorpusSpec {
            num_documents: num_docs,
            vocabulary_size: 2_000,
            keywords_per_document: 20,
            frequency_model: FrequencyModel::Uniform { lo: 1, hi: 15 },
        },
        &mut rng,
    );

    let config = OwnerConfig::default(); // paper parameters: r = 448, 1024-bit RSA
    let mut session = SearchSession::setup(config, &corpus.documents, &mut rng).expect("setup");

    // Query two keywords that co-occur in at least one document.
    let kws: Vec<&str> = corpus.documents[3].keywords().into_iter().take(2).collect();
    let report = session
        .run_query(&kws, theta, &mut rng)
        .expect("query round succeeds");

    let modulus_bits = session.owner.public_key().modulus_bits() as u64;
    let r = session.owner.params().index_bits as u64;
    let eta = session.owner.params().rank_levels() as u64;
    let alpha = report.matches.len() as u64;
    let gamma_bins = 1u64.max(kws.len() as u64); // bins are deduplicated; ≤ γ

    println!("\nmeasured bits sent per party and phase:");
    println!("{}", report.communication.render_table());

    println!("paper's analytic expressions at these parameters:");
    println!(
        "  user, trapdoor : 32·γ + log N          = 32·{gamma_bins} + {modulus_bits} = {} (measured {})",
        32 * gamma_bins + modulus_bits,
        report.communication.bits_sent(Party::User, Phase::Trapdoor)
    );
    println!(
        "  user, search   : r                     = {r} (measured {}, includes the {}-bit retrieval request)",
        report.communication.bits_sent(Party::User, Phase::Search),
        64 * theta
    );
    println!(
        "  user, decrypt  : θ·2·log N             = {} (measured {}; the factor 2 is the signature)",
        theta as u64 * 2 * modulus_bits,
        report.communication.bits_sent(Party::User, Phase::Decrypt)
    );
    println!(
        "  owner, trapdoor: log N (per bin)       = {} (measured {})",
        gamma_bins * modulus_bits,
        report
            .communication
            .bits_sent(Party::DataOwner, Phase::Trapdoor)
    );
    println!(
        "  owner, decrypt : θ·log N               = {} (measured {})",
        theta as u64 * modulus_bits,
        report
            .communication
            .bits_sent(Party::DataOwner, Phase::Decrypt)
    );
    println!(
        "  server, search : α·η·r + θ·(doc+log N) ≈ {} + retrieved-document bytes (measured {})",
        alpha * eta * r,
        report.communication.bits_sent(Party::Server, Phase::Search)
    );
    println!("\n  α (matches) = {alpha}, η = {eta}, r = {r}, log N = {modulus_bits}");
}
