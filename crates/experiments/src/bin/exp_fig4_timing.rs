//! E5/E6 — Figure 4: index-construction time (data owner) and search time (server).
//!
//! Workload: corpora of 2000–10000 documents, 20 genuine + 60 random keywords each, with
//! η ∈ {1 ("without ranking"), 3, 5} ranking levels.
//!
//! Paper reference (Java, 2.93 GHz iMac): index construction grows linearly from ≈ 10 s at
//! 2000 documents to ≈ 60–100 s at 10000 documents depending on η; search takes ≈ 0.5–3 ms
//! over the same range and is also linear. Absolute numbers on different hardware/language
//! differ; the shapes (linear in σ, multiplicative in η for construction, small additive cost
//! of ranking for search) are what this experiment reproduces.

use mkse_core::{
    CloudIndex, DocumentIndexer, QueryBuilder, SchemeKeys, SearchEngine, SystemParams,
};
use mkse_experiments::{header, ms, secs, timed, ExpArgs};
use mkse_textproc::corpus::{CorpusSpec, FrequencyModel, SyntheticCorpus};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn params_for(levels: usize) -> SystemParams {
    match levels {
        1 => SystemParams::without_ranking(),
        3 => SystemParams::default(),
        5 => SystemParams::with_five_levels(),
        _ => unreachable!("only 1, 3, 5 levels are exercised"),
    }
}

fn main() {
    let args = ExpArgs::from_env();
    let sizes: Vec<usize> = [2000usize, 4000, 6000, 8000, 10000]
        .iter()
        .map(|&n| args.scaled(n, 200))
        .collect();
    header(&format!(
        "E5/E6  Figure 4: index construction and search timings, sizes {sizes:?}, 20+60 keywords per document"
    ));

    let mut rng = StdRng::seed_from_u64(args.seed);
    println!("\n  Figure 4(a): time to build the search indices (data-owner side, seconds)");
    println!("  #docs   | without ranking | rank 3 levels | rank 5 levels");

    // Pre-generate the largest corpus once and slice it for the smaller sizes.
    let max_size = *sizes.iter().max().unwrap();
    let corpus = SyntheticCorpus::generate(
        &CorpusSpec {
            num_documents: max_size,
            vocabulary_size: 25_000,
            keywords_per_document: 20,
            frequency_model: FrequencyModel::Uniform { lo: 1, hi: 15 },
        },
        &mut rng,
    );

    let mut built_indices = Vec::new(); // (levels, size, indices) for the search phase
    for &size in &sizes {
        let mut row = format!("  {size:>7} |");
        for levels in [1usize, 3, 5] {
            let params = params_for(levels);
            let keys = SchemeKeys::generate(&params, &mut rng);
            let indexer = DocumentIndexer::new(&params, &keys);
            let docs = &corpus.documents[..size];
            // Paper-faithful (uncached) indexing: one PRF evaluation per (level, keyword, doc).
            let (indices, elapsed) = timed(|| {
                docs.iter()
                    .map(|d| indexer.index_document(d))
                    .collect::<Vec<_>>()
            });
            row.push_str(&format!(" {:>15} |", secs(elapsed)));
            if size == max_size {
                built_indices.push((levels, keys, indices));
            }
        }
        println!("{row}");
    }

    println!("\n  Figure 4(b): server-side search time per query (milliseconds)");
    println!("  #docs   | without ranking | rank 3 levels | rank 5 levels");
    for &size in &sizes {
        let mut row = format!("  {size:>7} |");
        for (levels, keys, indices) in &built_indices {
            let params = params_for(*levels);
            let mut cloud = CloudIndex::new(params.clone());
            cloud
                .insert_all(indices.iter().take(size).cloned())
                .expect("upload");
            // A 2-keyword query drawn from a real document so matches exist.
            let kws: Vec<&str> = corpus.documents[size / 2]
                .keywords()
                .into_iter()
                .take(2)
                .collect();
            let trapdoors = keys.trapdoors_for(&params, &kws);
            let pool = keys.random_pool_trapdoors(&params);
            let query = QueryBuilder::new(&params)
                .add_trapdoors(&trapdoors)
                .with_randomization(&pool)
                .build(&mut rng);
            // Average over several repetitions to stabilize the millisecond-scale measurement.
            let reps: u32 = 20;
            let (_, elapsed) = timed(|| {
                for _ in 0..reps {
                    std::hint::black_box(cloud.search(&query));
                }
            });
            row.push_str(&format!(" {:>15} |", ms(elapsed / reps)));
        }
        println!("{row}");
    }

    println!("\n  Beyond the paper: shard-parallel search (engine layer), rank 3 levels, {max_size} documents");
    println!("  #shards | search time (ms) | speedup vs 1 shard");
    if let Some((_, keys, indices)) = built_indices.iter().find(|(levels, _, _)| *levels == 3) {
        let params = params_for(3);
        let kws: Vec<&str> = corpus.documents[max_size / 2]
            .keywords()
            .into_iter()
            .take(2)
            .collect();
        let trapdoors = keys.trapdoors_for(&params, &kws);
        let pool = keys.random_pool_trapdoors(&params);
        let query = QueryBuilder::new(&params)
            .add_trapdoors(&trapdoors)
            .with_randomization(&pool)
            .build(&mut rng);
        let mut baseline_ms = 0.0f64;
        for shards in [1usize, 2, 4, 8] {
            let mut engine = SearchEngine::sharded(params.clone(), shards);
            engine.insert_all(indices.iter().cloned()).expect("upload");
            let reps: u32 = 20;
            let (_, elapsed) = timed(|| {
                for _ in 0..reps {
                    std::hint::black_box(engine.search(&query));
                }
            });
            let per_query_ms = elapsed.as_secs_f64() * 1000.0 / reps as f64;
            if shards == 1 {
                baseline_ms = per_query_ms;
            }
            println!(
                "  {shards:>7} | {per_query_ms:>16.3} | {:>18.2}x",
                baseline_ms / per_query_ms.max(1e-9)
            );
        }
    }

    println!(
        "\n  paper shape: both metrics grow linearly with the number of documents; construction \
         cost grows with the number of ranking levels, while ranking adds only marginal search \
         cost (extra comparisons only for matching documents). The shard sweep is this \
         reproduction's addition: identical results, wall-clock divided across scan threads."
    );
}
