//! E1 — §5 ranking-quality experiment.
//!
//! Workload (paper defaults): 1000 equal-length files, 3 searched keywords, each appearing in
//! `f_t = 200` files, 20 files containing all three, term frequencies uniform in `[1, 15]`,
//! `η = 5` ranking levels. The MKSE level-based ranking is compared against the Eq. (4)
//! relevance score over repeated trials.
//!
//! Paper reference: top-1 agreement ≈ 40%, reference top-1 inside MKSE top-3 100% of the time,
//! ≥ 4 of the reference top-5 inside MKSE top-5 ≈ 80% of the time.

use mkse_baselines::metrics::RankingComparison;
use mkse_baselines::relevance::RelevanceRanker;
use mkse_core::{CloudIndex, DocumentIndexer, QueryBuilder, SchemeKeys, SystemParams};
use mkse_experiments::{header, timed, ExpArgs};
use mkse_textproc::corpus::RankingWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::from_env();
    let trials = args.scaled(40, 4);
    let num_docs = args.scaled(1000, 100);
    header(&format!(
        "E1  §5 ranking quality: {trials} trials, {num_docs} documents, eta = 5"
    ));

    let params = SystemParams::with_five_levels();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut comparison = RankingComparison::new();
    let mut exact_top1 = 0usize;

    let (_, total) = timed(|| {
        for trial in 0..trials {
            let workload = RankingWorkload::generate_with(
                &mut rng,
                num_docs,
                3,
                200.min(num_docs / 5).max(25),
                20.min(num_docs / 50).max(5),
                (1, 15),
            );
            let keys = SchemeKeys::generate(&params, &mut rng);
            let indexer = DocumentIndexer::new(&params, &keys);

            // Index only the full-match documents' competition: the whole corpus goes to the
            // server, exactly as in a deployment.
            let mut cloud = CloudIndex::new(params.clone());
            cloud
                .insert_all(indexer.index_documents(&workload.corpus.documents))
                .expect("upload");

            let query_keywords: Vec<&str> =
                workload.query_keywords.iter().map(|s| s.as_str()).collect();
            let trapdoors = keys.trapdoors_for(&params, &query_keywords);
            let pool = keys.random_pool_trapdoors(&params);
            let query = QueryBuilder::new(&params)
                .add_trapdoors(&trapdoors)
                .with_randomization(&pool)
                .build(&mut rng);

            // MKSE ranking restricted to the ground-truth full matches (the paper compares the
            // orderings of the documents that really contain all searched keywords).
            let truth: std::collections::HashSet<u64> =
                workload.full_match_ids.iter().copied().collect();
            let mkse_ranking: Vec<u64> = cloud
                .search(&query)
                .into_iter()
                .filter(|m| truth.contains(&m.document_id))
                .map(|m| m.document_id)
                .collect();

            // Eq. (4) reference ranking over the same documents.
            let full_docs: Vec<_> = workload
                .corpus
                .documents
                .iter()
                .filter(|d| truth.contains(&d.id))
                .cloned()
                .collect();
            let ranker = RelevanceRanker::from_documents_with_length(
                &workload.corpus.documents,
                Some(workload.document_length),
            );
            let reference: Vec<u64> = ranker
                .rank(&query_keywords, &full_docs)
                .into_iter()
                .map(|(id, _)| id)
                .collect();

            comparison.record(&reference, &mkse_ranking);
            if reference.first() == mkse_ranking.first() {
                exact_top1 += 1;
            }
            if trial == 0 {
                println!(
                    "  trial 0: {} full matches, MKSE returned {} of them",
                    workload.full_match_ids.len(),
                    mkse_ranking.len()
                );
            }
        }
    });

    println!(
        "\nresults over {trials} trials ({:.1}s total):",
        total.as_secs_f64()
    );
    println!(
        "  reference top-1 is MKSE top-1            : {:>5.1}%   (paper: ~40%)",
        100.0 * comparison.top1_agreement_rate()
    );
    println!(
        "  reference top-1 within MKSE top-3        : {:>5.1}%   (paper: 100%)",
        100.0 * comparison.top1_in_top3_rate()
    );
    println!(
        "  >=4 of reference top-5 within MKSE top-5 : {:>5.1}%   (paper: ~80%)",
        100.0 * comparison.four_of_top5_rate()
    );
    println!(
        "  exact top-1 id equality (strict ties)    : {:>5.1}%",
        100.0 * exact_top1 as f64 / trials as f64
    );
}
