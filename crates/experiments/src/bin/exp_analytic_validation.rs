//! E10 — §6: validating the analytic model against measurement.
//!
//! Checks three of the paper's analytic quantities against empirical averages over real keyword
//! indices: `F(x)` (expected zeros in an x-keyword index), `Δ(x, x̄)` (expected Hamming
//! distance between two x-keyword queries sharing x̄ keywords, Eq. 5) and `EO` (expected number
//! of shared random keywords between two queries, Eq. 6).

use mkse_core::{
    expected_hamming_distance, expected_random_overlap, expected_zeros, BitIndex, SchemeKeys,
    SystemParams,
};
use mkse_experiments::{header, ExpArgs};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_index(params: &SystemParams, keys: &SchemeKeys, keywords: &[String]) -> BitIndex {
    let mut idx = BitIndex::all_ones(params.index_bits);
    for kw in keywords {
        idx.bitwise_product_assign(keys.trapdoor_for(params, kw).index());
    }
    idx
}

fn main() {
    let args = ExpArgs::from_env();
    let trials = args.scaled(200, 20);
    let params = SystemParams::default();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let keys = SchemeKeys::generate(&params, &mut rng);
    header(&format!(
        "E10  §6 analytic model validation — r = 448, d = 6, {trials} trials per point"
    ));

    println!("\n  F(x): expected number of zero bits in an x-keyword index");
    println!("  x   | analytic F(x) | measured mean");
    for x in [1usize, 2, 5, 10, 20, 30, 40, 60, 63] {
        let mut total = 0usize;
        for t in 0..trials {
            let kws: Vec<String> = (0..x).map(|i| format!("f-{t}-{i}")).collect();
            total += build_index(&params, &keys, &kws).count_zeros();
        }
        println!(
            "  {x:>3} | {:>13.2} | {:>13.2}",
            expected_zeros(&params, x),
            total as f64 / trials as f64
        );
    }

    println!("\n  Δ(x, x̄): expected Hamming distance, Eq. (5)  (x = 33 ≈ 3 genuine + 30 random)");
    println!("  shared x̄ | analytic Δ | measured mean");
    let x = 33usize;
    for x_bar in [0usize, 10, 15, 20, 30, 33] {
        let mut total = 0usize;
        for t in 0..trials {
            let shared: Vec<String> = (0..x_bar).map(|i| format!("s-{t}-{i}")).collect();
            let mut left = shared.clone();
            left.extend((0..x - x_bar).map(|i| format!("l-{t}-{i}")));
            let mut right = shared.clone();
            right.extend((0..x - x_bar).map(|i| format!("r-{t}-{i}")));
            total += build_index(&params, &keys, &left)
                .hamming_distance(&build_index(&params, &keys, &right));
        }
        println!(
            "  {x_bar:>8} | {:>10.2} | {:>13.2}",
            expected_hamming_distance(&params, x, x_bar),
            total as f64 / trials as f64
        );
    }

    println!("\n  EO: expected number of shared random keywords between two queries (Eq. 6)");
    let pool = keys.random_pool();
    let mut total_overlap = 0usize;
    for _ in 0..trials {
        let a: std::collections::HashSet<usize> = pool
            .choose_subset(params.query_random_keywords, &mut rng)
            .into_iter()
            .collect();
        let b: std::collections::HashSet<usize> = pool
            .choose_subset(params.query_random_keywords, &mut rng)
            .into_iter()
            .collect();
        total_overlap += a.intersection(&b).count();
    }
    println!(
        "  analytic EO = V/2 = {:.1}, measured mean = {:.2}  (V = {}, U = {})",
        expected_random_overlap(params.query_random_keywords),
        total_overlap as f64 / trials as f64,
        params.query_random_keywords,
        params.doc_random_keywords
    );
}
