//! E11 — §4.1: brute-force keyword recovery against the shared-hash baseline.
//!
//! The paper motivates its trapdoor-based design by observing that the Wang et al. scheme —
//! where every user shares one secret hash — collapses once that hash reaches the server:
//! with ≈ 25 000 plausible keywords and 1–2 keywords per query, "approximately 2²⁷ trials will
//! be sufficient to break the system". This binary runs the attack against both schemes:
//! keyword recovery succeeds (and is fast) against the shared-hash baseline and recovers
//! nothing against MKSE queries built under the data owner's secret bin keys.

use mkse_baselines::wang::{BruteForceAttack, SharedHashScheme};
use mkse_core::{SchemeKeys, SystemParams};
use mkse_experiments::{header, ms, timed, ExpArgs};
use mkse_textproc::dictionary::Dictionary;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::from_env();
    let dict_size = args.scaled(2000, 200);
    header(&format!(
        "E11  §4.1 brute-force attack — dictionary of {dict_size} keywords (paper argues with 25 000)"
    ));

    let params = SystemParams::default().without_randomization();
    let scheme = SharedHashScheme::new(params.clone());
    let dictionary = Dictionary::generate(dict_size);
    let attack = BruteForceAttack::new(&scheme, &dictionary);

    // Secret keywords are picked inside the (possibly scaled-down) dictionary.
    let single_kw = dictionary.word(dict_size / 3).unwrap().to_string();
    let pair_kw = (
        dictionary.word(dict_size / 5).unwrap().to_string(),
        dictionary.word(dict_size / 2).unwrap().to_string(),
    );

    // Single-keyword query against the shared-hash baseline.
    let secret_single = scheme.query_index(&[&single_kw]);
    let (outcome, elapsed) = timed(|| attack.recover(&secret_single, 1));
    println!("\n  shared-hash baseline, 1-keyword query for {single_kw:?}:");
    println!(
        "    recovered: {:?}  after {} trials in {} ms (unique: {})",
        outcome.candidates,
        outcome.trials,
        ms(elapsed),
        outcome.is_unique_recovery()
    );

    // Two-keyword query against the shared-hash baseline.
    let secret_pair = scheme.query_index(&[&pair_kw.0, &pair_kw.1]);
    let (outcome2, elapsed2) = timed(|| attack.recover(&secret_pair, 2));
    println!(
        "\n  shared-hash baseline, 2-keyword query for ({:?}, {:?}):",
        pair_kw.0, pair_kw.1
    );
    println!(
        "    candidate combinations: {} (the true pair is among them: {})",
        outcome2.candidates.len(),
        outcome2
            .candidates
            .iter()
            .any(|c| c.contains(&pair_kw.0) && c.contains(&pair_kw.1))
    );
    println!(
        "    {} trials in {} ms — at the paper's 25 000-word dictionary this scales to ≈ 2^28 \
         trials, still entirely feasible offline",
        outcome2.trials,
        ms(elapsed2)
    );

    // The same attack against MKSE (secret per-bin keys) recovers nothing.
    let mut rng = StdRng::seed_from_u64(args.seed);
    let keys = SchemeKeys::generate(&params, &mut rng);
    let mkse_query = keys.trapdoor_for(&params, &single_kw).index().clone();
    let (outcome3, elapsed3) = timed(|| attack.recover(&mkse_query, 1));
    println!("\n  MKSE (trapdoor-based), 1-keyword query:");
    println!(
        "    recovered: {:?} after {} trials in {} ms — without the owner's 128-bit bin keys the \
         adversary would have to enumerate 2^127 hash keys (Theorem 2)",
        outcome3.candidates,
        outcome3.trials,
        ms(elapsed3)
    );
}
