//! E4 — Figure 3: false accept rates.
//!
//! `FAR = incorrect matches / all matches` for queries with 2–5 genuine keywords against
//! corpora whose documents carry 10, 20, 30 or 40 genuine keywords plus `U = 60` random
//! keywords each (`d = 6`, `r = 448`, `V = 30`).
//!
//! The paper does not state how popular the queried keywords are, but the FAR values it plots
//! (1–18%) imply that the denominator is dominated by *true* matches — i.e. the queried
//! keywords co-occur in a substantial fraction of the database (as in the §5 workload, where
//! each searched keyword appears in 20% of the files). We therefore plant the query keywords
//! together in 20% of the documents; the remaining 80% only carry random vocabulary, so every
//! match among them is a false accept.
//!
//! Paper reference (Figure 3): FAR stays in the low single-digit percents up to 30 keywords
//! per document and "rapidly increases after 40 keywords per document"; more query keywords
//! lower the FAR.

use mkse_core::{
    false_accept_rate, CloudIndex, DocumentIndexer, QueryBuilder, SchemeKeys, SystemParams,
};
use mkse_experiments::{header, ExpArgs};
use mkse_textproc::corpus::{CorpusSpec, FrequencyModel, SyntheticCorpus};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::from_env();
    let num_docs = args.scaled(1000, 100);
    let queries_per_cell = args.scaled(20, 3);
    let planted_fraction = 0.2;
    let params = SystemParams::without_ranking();
    header(&format!(
        "E4  Figure 3: false accept rates — {num_docs} documents, {queries_per_cell} queries per cell, \
         query keywords planted in {:.0}% of documents, d=6, r=448, U=60, V=30",
        planted_fraction * 100.0
    ));

    println!(
        "\n  keywords/doc | 2-kw query | 3-kw query | 4-kw query | 5-kw query   (mean FAR, %)"
    );
    let mut rng = StdRng::seed_from_u64(args.seed);
    for keywords_per_doc in [10usize, 20, 30, 40] {
        let mut row = format!("  {keywords_per_doc:>10}+60 |");
        for query_keywords in [2usize, 3, 4, 5] {
            let mut far_sum = 0.0;
            let mut far_count = 0usize;
            for q in 0..queries_per_cell {
                // Fresh corpus per query so planted keywords do not accumulate.
                let spec = CorpusSpec {
                    num_documents: num_docs,
                    vocabulary_size: 5_000,
                    keywords_per_document: keywords_per_doc,
                    frequency_model: FrequencyModel::Constant,
                };
                let mut corpus = SyntheticCorpus::generate(&spec, &mut rng);
                let query_kws: Vec<String> = (0..query_keywords)
                    .map(|i| format!("probe-{q}-{i}"))
                    .collect();
                // Plant the query keywords together into a random 20% of the documents (on top
                // of their `keywords_per_doc` vocabulary keywords).
                for doc in corpus.documents.iter_mut() {
                    if rng.gen_bool(planted_fraction) {
                        for kw in &query_kws {
                            doc.terms.add(kw);
                        }
                    }
                }
                let kw_refs: Vec<&str> = query_kws.iter().map(|s| s.as_str()).collect();
                let ground_truth = corpus.documents_containing_all(&kw_refs);

                let keys = SchemeKeys::generate(&params, &mut rng);
                let indexer = DocumentIndexer::new(&params, &keys);
                let mut cloud = CloudIndex::new(params.clone());
                cloud
                    .insert_all(indexer.index_documents(&corpus.documents))
                    .expect("upload");
                let pool = keys.random_pool_trapdoors(&params);

                let trapdoors = keys.trapdoors_for(&params, &kw_refs);
                let query = QueryBuilder::new(&params)
                    .add_trapdoors(&trapdoors)
                    .with_randomization(&pool)
                    .build(&mut rng);
                let matched = cloud.search_unranked(&query);
                if let Some(far) = false_accept_rate(&matched, &ground_truth) {
                    far_sum += far;
                    far_count += 1;
                }
            }
            let mean_far = if far_count > 0 {
                far_sum / far_count as f64
            } else {
                0.0
            };
            row.push_str(&format!(" {:>9.2}% |", 100.0 * mean_far));
        }
        println!("{row}");
    }
    println!(
        "\n  paper shape: single-digit FAR through 30+60 keywords/doc, sharp increase at 40+60;\n  \
         FAR decreases as the query carries more keywords."
    );
}
