//! Concurrent-client transport sweep (`fig4b_net`), recorded in
//! `BENCH_net.json`.
//!
//! One hub owning a 2-shard `CloudServer` answers a pipelined single-query
//! workload from 1/2/4/8 concurrent in-process clients (`MemoryLink`s — the
//! deterministic twin of the TCP path, so the sweep measures the dispatcher
//! and the batcher, not the kernel's loopback stack), with the cross-client
//! batcher on and off. With batching on, queries from different clients that
//! land within the collection window are executed as one fused scan-plane
//! pass; with it off every request executes on arrival — the gap is the
//! server-side memory-traffic amortization the batcher exists for.
//!
//! Before any configuration is timed, the same workload runs once with the
//! hub's execution journal on and every reply is asserted identical to a twin
//! server driven sequentially through `Service::call` — the transport and the
//! batcher must be invisible, or the timings compare different computations.
//!
//! The committed record carries `host_cores` honestly: on a single-core
//! container every "concurrent" client is time-sliced onto the same core, so
//! client-count scaling mostly measures scheduling overhead there, and the
//! record must say so rather than imply a wider machine. Smoke runs
//! (`--test`) never overwrite the committed record.

use criterion::{criterion_group, criterion_main, Criterion};
use mkse_bench::BenchFixture;
use mkse_core::{QueryBuilder, QueryIndex, TelemetryLevel};
use mkse_net::{Hub, HubConfig, HubHandle, NetClient};
use mkse_protocol::{CloudServer, QueryMessage, Request, Response, Service};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const NET_DOCS: usize = 8_000;
const POOL: usize = 8;
const WINDOW: usize = 8;
const PER_CLIENT_CHECK: usize = 16;
const PER_CLIENT_TIMED: usize = 64;
const WAIT: Duration = Duration::from_secs(60);

fn hub_config(batching: bool, journal: bool) -> HubConfig {
    HubConfig {
        batching,
        batch_window: Duration::from_micros(200),
        batch_depth: 16,
        journal,
        ..HubConfig::default()
    }
}

/// Drive `clients` concurrent pipelined clients (windows of [`WINDOW`]) for
/// `per_client` queries each; returns every (request id, reply) pair per
/// client, in take order.
fn drive(
    hub: &HubHandle,
    clients: usize,
    pool: &[QueryMessage],
    per_client: usize,
) -> Vec<Vec<(u64, Response)>> {
    // All connections are attached before any traffic flows, so every
    // configuration coalesces across the same set of open connections.
    let handles: Vec<NetClient> = (0..clients)
        .map(|k| {
            NetClient::from_memory(hub.connect_memory())
                .with_first_request_id(k as u64 * 1_000_000 + 1)
        })
        .collect();
    let workers: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(k, mut client)| {
            let pool: Vec<QueryMessage> = pool.to_vec();
            std::thread::spawn(move || {
                let mut replies = Vec::with_capacity(per_client);
                let mut served = 0usize;
                while served < per_client {
                    let window = WINDOW.min(per_client - served);
                    let ids: Vec<u64> = (0..window)
                        .map(|i| {
                            let q = &pool[(k + served + i) % pool.len()];
                            client.submit(&Request::Query(q.clone()))
                        })
                        .collect();
                    client.flush().expect("pipelined flush");
                    for id in ids {
                        replies.push((id, client.wait_take(id, WAIT).expect("reply")));
                    }
                    served += window;
                }
                replies
            })
        })
        .collect();
    workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect()
}

fn bench_net(_c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--test");
    let filtered_out = std::env::args()
        .skip(1)
        .any(|a| !a.starts_with('-') && !"fig4b_net".contains(a.as_str()));
    if filtered_out {
        return;
    }
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let report = |id: &str, ns: f64| {
        if quick {
            println!("fig4b_net/{id}  ok (smoke run)");
        } else {
            println!("fig4b_net/{id}  time: {:.3} µs/query", ns / 1e3);
        }
    };

    let fixture = BenchFixture::new(NET_DOCS, 3, 11);
    let indexer = fixture.indexer();
    let indices = indexer.index_documents(&fixture.corpus.documents);
    let r = fixture.params.index_bits;
    let random_pool = fixture.keys.random_pool_trapdoors(&fixture.params);
    let mut rng = StdRng::seed_from_u64(41);
    let pool: Vec<QueryMessage> = fixture
        .query_keyword_pool(POOL)
        .iter()
        .map(|kws| {
            let kw_refs: Vec<&str> = kws.iter().map(|s| s.as_str()).collect();
            let trapdoors = fixture.keys.trapdoors_for(&fixture.params, &kw_refs);
            let q: QueryIndex = QueryBuilder::new(&fixture.params)
                .add_trapdoors(&trapdoors)
                .with_randomization(&random_pool)
                .build(&mut rng);
            QueryMessage {
                query: q.bits().clone(),
                top: Some(10),
            }
        })
        .collect();

    let make_server = || {
        let mut server = CloudServer::with_shards(fixture.params.clone(), 2);
        server.set_telemetry_level(TelemetryLevel::Counters);
        server.upload(indices.clone(), vec![]).expect("seed upload");
        server
    };

    let mut entries: Vec<String> = Vec::new();
    for &clients in &[1usize, 2, 4, 8] {
        for &batching in &[true, false] {
            // Equivalence before timing: journal the concurrent run, replay it
            // sequentially on a twin, compare every reply a client received.
            let hub = Hub::spawn(make_server(), hub_config(batching, true));
            let received = drive(&hub, clients, &pool, PER_CLIENT_CHECK);
            let hub_report = hub.shutdown();
            assert_eq!(
                hub_report.requests,
                (clients * PER_CLIENT_CHECK) as u64,
                "clients={clients} batching={batching}: requests lost"
            );
            let mut twin = make_server();
            let mut expected = std::collections::BTreeMap::new();
            for entry in &hub_report.journal {
                expected.insert(entry.request_id, twin.call(entry.request.clone()));
            }
            for (id, reply) in received.iter().flatten() {
                assert_eq!(
                    Some(reply),
                    expected.get(id),
                    "clients={clients} batching={batching}: reply #{id} diverged \
                     from sequential Service::call"
                );
            }

            // Timed rounds: whole concurrent runs, best round kept (each round
            // spawns a fresh hub so no round inherits a warm batcher state).
            let rounds = if quick { 1 } else { 7 };
            let per_client = if quick { 2 } else { PER_CLIENT_TIMED };
            let total = (clients * per_client) as f64;
            let mut best = f64::MAX;
            let mut coalesced = 0u64;
            let mut solo = 0u64;
            for _ in 0..rounds {
                let hub = Hub::spawn(make_server(), hub_config(batching, false));
                let start = Instant::now();
                std::hint::black_box(drive(&hub, clients, &pool, per_client));
                best = best.min(start.elapsed().as_nanos() as f64 / total);
                // Diagnostics from the last round's registry (read over the
                // same transport), before the hub goes away.
                let mut admin =
                    NetClient::from_memory(hub.connect_memory()).with_first_request_id(9_000_000);
                if let Ok(Response::MetricsReport(snapshot)) =
                    admin.call(&Request::MetricsSnapshot, WAIT)
                {
                    coalesced = snapshot.counter("batcher_coalesced_queries");
                    solo = snapshot.counter("batcher_solo_dispatches");
                }
                drop(admin);
                hub.shutdown();
            }
            let ns = if quick { 0.0 } else { best };
            let mode = if batching { "batched" } else { "unbatched" };
            report(&format!("{mode}/clients{clients}"), ns);
            entries.push(format!(
                "    {{\"mode\": \"{mode}\", \"clients\": {clients}, \
                 \"ns_per_query\": {ns:.1}, \"coalesced_queries\": {coalesced}, \
                 \"solo_dispatches\": {solo}}}"
            ));
        }
    }
    println!();

    if quick {
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"fig4b_net\",\n  \"docs\": {NET_DOCS},\n  \"r\": {r},\n  \
         \"eta\": {},\n  \"host_cores\": {host_cores},\n  \"queries_per_client\": \
         {PER_CLIENT_TIMED},\n  \"entries\": [\n{}\n  ]\n}}\n",
        fixture.params.rank_levels(),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json");
    match std::fs::write(path, json) {
        Ok(()) => eprintln!("fig4b_net: wrote {path}"),
        Err(e) => eprintln!("fig4b_net: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
