//! §8.1: head-to-head per-document costs, MKSE versus the Cao et al. MRSE baseline.
//!
//! The paper's comparison point (6000 documents, dictionary of thousands of keywords) takes
//! MRSE over an hour to index, so the benchmark measures the *per-document* index cost and the
//! *per-query* search cost over a fixed store, at dictionary size 1000 — the asymmetry (MRSE
//! scales with the dictionary, MKSE does not) is already unmistakable there.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mkse_baselines::MrseScheme;
use mkse_bench::BenchFixture;
use mkse_core::{QueryBuilder, SearchEngine};
use mkse_textproc::dictionary::Dictionary;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DICT_SIZE: usize = 1000;
const NUM_DOCS: usize = 200;

fn bench_index_per_document(c: &mut Criterion) {
    let mut group = c.benchmark_group("cao_comparison_index_per_doc");
    group.sample_size(10);

    let fixture = BenchFixture::new(NUM_DOCS, 5, 23);
    let doc = fixture.corpus.documents[0].clone();

    group.bench_function("mkse_rank5", |b| {
        let indexer = fixture.indexer();
        b.iter(|| indexer.index_document(&doc));
    });

    let mut rng = StdRng::seed_from_u64(29);
    let mrse = MrseScheme::new(Dictionary::generate(DICT_SIZE));
    let key = mrse.generate_key(&mut rng);
    let keywords: Vec<String> = doc.keywords().into_iter().map(|s| s.to_string()).collect();
    let kw_refs: Vec<&str> = keywords.iter().map(|s| s.as_str()).collect();
    group.bench_function("mrse_dict1000", |b| {
        let mut rng = StdRng::seed_from_u64(31);
        b.iter(|| mrse.build_index(&key, 0, &kw_refs, &mut rng));
    });

    group.finish();
}

fn bench_search_over_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("cao_comparison_search");
    group.sample_size(10);
    group.throughput(Throughput::Elements(NUM_DOCS as u64));

    // MKSE store on the layered engine (4 scan shards).
    let fixture = BenchFixture::new(NUM_DOCS, 5, 37);
    let indexer = fixture.indexer();
    let mut cloud = SearchEngine::sharded(fixture.params.clone(), 4);
    cloud
        .insert_all(indexer.index_documents(&fixture.corpus.documents))
        .expect("upload");
    let mut rng = StdRng::seed_from_u64(41);
    let kws = fixture.query_keywords();
    let kw_refs: Vec<&str> = kws.iter().map(|s| s.as_str()).collect();
    let trapdoors = fixture.keys.trapdoors_for(&fixture.params, &kw_refs);
    let pool = fixture.keys.random_pool_trapdoors(&fixture.params);
    let query = QueryBuilder::new(&fixture.params)
        .add_trapdoors(&trapdoors)
        .with_randomization(&pool)
        .build(&mut rng);
    group.bench_function("mkse_rank5", |b| b.iter(|| cloud.search(&query)));

    // MRSE store over the same documents.
    let mrse = MrseScheme::new(Dictionary::generate(DICT_SIZE));
    let key = mrse.generate_key(&mut rng);
    let indices: Vec<_> = fixture
        .corpus
        .documents
        .iter()
        .map(|d| {
            let kws: Vec<&str> = d.keywords();
            mrse.build_index(&key, d.id, &kws, &mut rng)
        })
        .collect();
    let trapdoor = mrse.trapdoor(&key, &kw_refs, &mut rng);
    group.bench_function("mrse_dict1000", |b| {
        b.iter(|| mrse.search(&indices, &trapdoor, 10))
    });

    group.finish();
}

criterion_group!(benches, bench_index_per_document, bench_search_over_store);
criterion_main!(benches);
