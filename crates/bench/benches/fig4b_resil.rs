//! Resilience-cost sweep (`fig4b_resil`), recorded in `BENCH_resil.json`.
//!
//! One hub owning a 2-shard `CloudServer` answers a sequential single-query
//! workload from 2 concurrent `ResilientClient`s while their links run a
//! **deterministic seeded fault plan** — none / light / heavy byte-budget
//! kills plus torn writes — with the retry machinery on and off. The sweep
//! prices what resilience costs: the wrapper's overhead on a healthy link
//! (fault=none rows), the throughput tax of recovering from dying links
//! (retry=on under faults completes everything, slower per query), and what
//! is *lost* without retries (retry=off under faults completes only a
//! fraction — the completed column is the figure, not just the latency).
//!
//! Fault plans inject kills and tears only — never delays — so the timings
//! measure recovery work (reconnect + resubmit), not injected sleep.
//!
//! Before any configuration is timed, the same workload runs once with the
//! hub's execution journal on and every *completed* reply is asserted
//! identical to a twin server driven sequentially through `Service::call` —
//! chaos may cost retries, it must never change an answer. The per-client
//! conservation law `attempts == successes + sheds + link_faults` is asserted
//! in the same pass. Smoke runs (`--test`) never overwrite the committed
//! record.

use criterion::{criterion_group, criterion_main, Criterion};
use mkse_bench::BenchFixture;
use mkse_core::{QueryBuilder, QueryIndex, TelemetryLevel};
use mkse_net::{
    Connector, FaultPlan, FaultyLink, Hub, HubConfig, HubHandle, ResilienceStats, ResilientClient,
    RetryPolicy,
};
use mkse_protocol::{wire, CloudServer, QueryMessage, Request, Response, Service};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const RESIL_DOCS: usize = 8_000;
const POOL: usize = 8;
const CLIENTS: usize = 2;
const PER_CLIENT_CHECK: usize = 16;
const PER_CLIENT_TIMED: usize = 48;

/// A fault intensity: connection byte budget (in query frames) and torn-write
/// probability. `None` = clean links.
#[derive(Clone, Copy)]
struct FaultLevel {
    name: &'static str,
    frames_per_connection: Option<u64>,
    torn_write_per_mille: u32,
}

const LEVELS: [FaultLevel; 3] = [
    FaultLevel {
        name: "none",
        frames_per_connection: None,
        torn_write_per_mille: 0,
    },
    FaultLevel {
        name: "light",
        frames_per_connection: Some(16),
        torn_write_per_mille: 20,
    },
    FaultLevel {
        name: "heavy",
        frames_per_connection: Some(4),
        torn_write_per_mille: 80,
    },
];

fn hub_config(journal: bool) -> HubConfig {
    HubConfig {
        batch_window: Duration::from_micros(200),
        batch_depth: 16,
        journal,
        ..HubConfig::default()
    }
}

fn policy(retry: bool) -> RetryPolicy {
    RetryPolicy {
        // retry=off still reconnects on the *next* call — it only refuses to
        // resubmit the failed request itself.
        max_attempts: if retry { 24 } else { 1 },
        base_backoff: Duration::from_micros(200),
        backoff_cap: Duration::from_millis(5),
        attempt_timeout: Duration::from_secs(10),
        request_deadline: Duration::from_secs(60),
        retry_non_idempotent: false,
        jitter_per_mille: 250,
        jitter_seed: 0xF1C4,
    }
}

fn connector(hub: &HubHandle, level: FaultLevel, frame_len: u64, seed: u64) -> Connector {
    let dialer = hub.memory_dialer();
    Box::new(move |ordinal| {
        let (reader, writer) = dialer.connect().split();
        match level.frames_per_connection {
            None => Ok((Box::new(reader) as _, Box::new(writer) as _)),
            Some(frames) => {
                let plan = FaultPlan {
                    kill_after_bytes: Some(frames * frame_len + frame_len / 2),
                    torn_write_per_mille: level.torn_write_per_mille,
                    ..FaultPlan::healthy(seed.wrapping_add(ordinal.wrapping_mul(0x9e37)))
                };
                let (r, w, _handle) = FaultyLink::wrap(Box::new(reader), Box::new(writer), plan);
                Ok((Box::new(r) as _, Box::new(w) as _))
            }
        }
    })
}

struct DriveOutcome {
    received: Vec<(u64, Response)>,
    stats: ResilienceStats,
    completed: u64,
    issued: u64,
}

/// Drive `CLIENTS` concurrent resilient clients for `per_client` sequential
/// queries each; failed calls (retry budget exhausted) are counted, not
/// fatal.
fn drive(
    hub: &HubHandle,
    pool: &[QueryMessage],
    per_client: usize,
    level: FaultLevel,
    retry: bool,
    frame_len: u64,
    seed_round: u64,
) -> DriveOutcome {
    let workers: Vec<_> = (0..CLIENTS)
        .map(|k| {
            let conn = connector(
                hub,
                level,
                frame_len,
                seed_round.wrapping_add(k as u64 * 7919),
            );
            let pool: Vec<QueryMessage> = pool.to_vec();
            std::thread::spawn(move || {
                let mut client = ResilientClient::new(conn, policy(retry))
                    .with_first_request_id(k as u64 * 1_000_000 + 1);
                let mut received = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let q = &pool[(k + i) % pool.len()];
                    if let Ok((id, reply)) = client.call_traced(&Request::Query(q.clone())) {
                        received.push((id, reply));
                    }
                }
                (received, client.stats())
            })
        })
        .collect();
    let mut outcome = DriveOutcome {
        received: Vec::new(),
        stats: ResilienceStats::default(),
        completed: 0,
        issued: (CLIENTS * per_client) as u64,
    };
    for worker in workers {
        let (received, stats) = worker.join().expect("client thread");
        assert_eq!(
            stats.attempts,
            stats.successes + stats.sheds + stats.link_faults,
            "conservation law violated: {stats:?}"
        );
        outcome.completed += received.len() as u64;
        outcome.received.extend(received);
        outcome.stats.attempts += stats.attempts;
        outcome.stats.successes += stats.successes;
        outcome.stats.sheds += stats.sheds;
        outcome.stats.link_faults += stats.link_faults;
        outcome.stats.retries += stats.retries;
        outcome.stats.reconnects += stats.reconnects;
    }
    outcome
}

fn bench_resil(_c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--test");
    let filtered_out = std::env::args()
        .skip(1)
        .any(|a| !a.starts_with('-') && !"fig4b_resil".contains(a.as_str()));
    if filtered_out {
        return;
    }
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let report = |id: &str, ns: f64| {
        if quick {
            println!("fig4b_resil/{id}  ok (smoke run)");
        } else {
            println!("fig4b_resil/{id}  time: {:.3} µs/completed query", ns / 1e3);
        }
    };

    let fixture = BenchFixture::new(RESIL_DOCS, 3, 11);
    let indexer = fixture.indexer();
    let indices = indexer.index_documents(&fixture.corpus.documents);
    let r = fixture.params.index_bits;
    let random_pool = fixture.keys.random_pool_trapdoors(&fixture.params);
    let mut rng = StdRng::seed_from_u64(41);
    let pool: Vec<QueryMessage> = fixture
        .query_keyword_pool(POOL)
        .iter()
        .map(|kws| {
            let kw_refs: Vec<&str> = kws.iter().map(|s| s.as_str()).collect();
            let trapdoors = fixture.keys.trapdoors_for(&fixture.params, &kw_refs);
            let q: QueryIndex = QueryBuilder::new(&fixture.params)
                .add_trapdoors(&trapdoors)
                .with_randomization(&random_pool)
                .build(&mut rng);
            QueryMessage {
                query: q.bits().clone(),
                top: Some(10),
            }
        })
        .collect();
    let frame_len = wire::encode_request(1, &Request::Query(pool[0].clone())).len() as u64;

    let make_server = || {
        let mut server = CloudServer::with_shards(fixture.params.clone(), 2);
        server.set_telemetry_level(TelemetryLevel::Counters);
        server.upload(indices.clone(), vec![]).expect("seed upload");
        server
    };

    let mut entries: Vec<String> = Vec::new();
    for level in LEVELS {
        for &retry in &[true, false] {
            // Equivalence before timing: journal the chaotic run, replay it
            // sequentially on a twin, compare every *completed* reply.
            let hub = Hub::spawn(make_server(), hub_config(true));
            let checked = drive(&hub, &pool, PER_CLIENT_CHECK, level, retry, frame_len, 0xA5);
            let hub_report = hub.shutdown();
            assert_eq!(hub_report.sheds, 0, "no budget pressure in this sweep");
            let mut twin = make_server();
            let mut expected = std::collections::BTreeMap::new();
            for entry in &hub_report.journal {
                expected.insert(entry.request_id, twin.call(entry.request.clone()));
            }
            for (id, reply) in &checked.received {
                assert_eq!(
                    Some(reply),
                    expected.get(id),
                    "fault={} retry={retry}: completed reply #{id} diverged \
                     from sequential Service::call",
                    level.name
                );
            }
            if retry || level.frames_per_connection.is_none() {
                assert_eq!(
                    checked.completed, checked.issued,
                    "fault={} retry={retry}: with retries on, chaos may cost \
                     attempts but never answers",
                    level.name
                );
            }

            // Timed rounds: whole concurrent runs against fresh hubs, best
            // round kept; cost is per *completed* query.
            let rounds = if quick { 1 } else { 5 };
            let per_client = if quick { 2 } else { PER_CLIENT_TIMED };
            let mut best = f64::MAX;
            let mut last = DriveOutcome {
                received: Vec::new(),
                stats: ResilienceStats::default(),
                completed: 0,
                issued: 0,
            };
            for round in 0..rounds {
                let hub = Hub::spawn(make_server(), hub_config(false));
                let start = Instant::now();
                let outcome = drive(
                    &hub,
                    &pool,
                    per_client,
                    level,
                    retry,
                    frame_len,
                    0xBEEF + round as u64,
                );
                let elapsed = start.elapsed().as_nanos() as f64;
                hub.shutdown();
                best = best.min(elapsed / outcome.completed.max(1) as f64);
                last = outcome;
            }
            let ns = if quick { 0.0 } else { best };
            let mode = if retry { "retry" } else { "noretry" };
            report(&format!("{mode}/fault_{}", level.name), ns);
            entries.push(format!(
                "    {{\"fault\": \"{}\", \"retry\": {retry}, \
                 \"ns_per_completed\": {ns:.1}, \"completed\": {}, \"issued\": {}, \
                 \"attempts\": {}, \"retries\": {}, \"reconnects\": {}, \
                 \"link_faults\": {}}}",
                level.name,
                last.completed,
                last.issued,
                last.stats.attempts,
                last.stats.retries,
                last.stats.reconnects,
                last.stats.link_faults,
            ));
        }
    }
    println!();

    if quick {
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"fig4b_resil\",\n  \"docs\": {RESIL_DOCS},\n  \"r\": {r},\n  \
         \"eta\": {},\n  \"host_cores\": {host_cores},\n  \"clients\": {CLIENTS},\n  \
         \"queries_per_client\": {PER_CLIENT_TIMED},\n  \"query_frame_bytes\": {frame_len},\n  \
         \"entries\": [\n{}\n  ]\n}}\n",
        fixture.params.rank_levels(),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_resil.json");
    match std::fs::write(path, json) {
        Ok(()) => eprintln!("fig4b_resil: wrote {path}"),
        Err(e) => eprintln!("fig4b_resil: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_resil);
criterion_main!(benches);
