//! Figure 4(b): server-side search time per query, on the layered engine.
//!
//! Two sweeps over the shard-parallel [`SearchEngine`]:
//!
//! * the paper's figure — ranked search over stores of 2000–10000 documents at
//!   ranking depths 1, 3 and 5, on a single shard (the sequential reference);
//! * the scaling dimension the paper leaves to "highly parallelized nature" remarks —
//!   the same query on a 50000-document store sharded 1/2/4/8 ways, plus a
//!   16-query batch to show the one-pass-per-shard batching path;
//! * a **result-cache sweep**: a skewed (Zipf-like) repeated-query workload over a
//!   fixed query pool, served with the cache off and on at several capacities.
//!   Results are asserted byte-identical before timing, and the hit/miss counts of
//!   the cached runs are printed afterwards.
//!
//! The store is built once per configuration (with keyword-index memoization — only
//! the search is timed); queries carry 2 genuine keywords plus the V = 30 random
//! keywords. Shard counts change wall-clock time only: results are bit-for-bit
//! identical across all configurations (asserted before timing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mkse_bench::{BenchFixture, ZipfSampler};
use mkse_core::{CacheConfig, QueryBuilder, QueryIndex, SearchEngine};
use mkse_protocol::{Client, CloudServer, QueryMessage, Request};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_query(fixture: &BenchFixture, seed: u64) -> QueryIndex {
    let mut rng = StdRng::seed_from_u64(seed);
    let kws = fixture.query_keywords();
    let kw_refs: Vec<&str> = kws.iter().map(|s| s.as_str()).collect();
    let trapdoors = fixture.keys.trapdoors_for(&fixture.params, &kw_refs);
    let pool = fixture.keys.random_pool_trapdoors(&fixture.params);
    QueryBuilder::new(&fixture.params)
        .add_trapdoors(&trapdoors)
        .with_randomization(&pool)
        .build(&mut rng)
}

/// Build every query of the pool **once** (randomization included): a repeated
/// workload re-issues the same query index bits, which is exactly the search
/// pattern the server observes and the fingerprint cache keys on.
fn build_query_pool(fixture: &BenchFixture, pool_size: usize) -> Vec<QueryIndex> {
    let mut rng = StdRng::seed_from_u64(41);
    let random_pool = fixture.keys.random_pool_trapdoors(&fixture.params);
    fixture
        .query_keyword_pool(pool_size)
        .iter()
        .map(|kws| {
            let kw_refs: Vec<&str> = kws.iter().map(|s| s.as_str()).collect();
            let trapdoors = fixture.keys.trapdoors_for(&fixture.params, &kw_refs);
            QueryBuilder::new(&fixture.params)
                .add_trapdoors(&trapdoors)
                .with_randomization(&random_pool)
                .build(&mut rng)
        })
        .collect()
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4b_search");
    group.sample_size(20);

    for &num_docs in &[2000usize, 6000, 10000] {
        for &levels in &[1usize, 3, 5] {
            let fixture = BenchFixture::new(num_docs, levels, 11);
            let indexer = fixture.indexer();
            let mut engine = SearchEngine::sharded(fixture.params.clone(), 1);
            engine
                .insert_all(indexer.index_documents(&fixture.corpus.documents))
                .expect("upload");
            let query = build_query(&fixture, 13);

            group.throughput(Throughput::Elements(num_docs as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("eta{levels}"), num_docs),
                &(engine, query),
                |b, (engine, query)| b.iter(|| engine.search(query)),
            );
        }
    }
    group.finish();

    // Shard-scaling sweep: same store content, same query, 1/2/4/8 scan lanes.
    // 50k documents — the scan has to dominate per-query coordination for the
    // sweep to say anything about scaling.
    let mut group = c.benchmark_group("fig4b_search_sharded");
    group.sample_size(20);
    const SWEEP_DOCS: usize = 50_000;
    let fixture = BenchFixture::new(SWEEP_DOCS, 3, 11);
    let indexer = fixture.indexer();
    let indices = indexer.index_documents(&fixture.corpus.documents);
    let query = build_query(&fixture, 13);

    let reference = {
        let mut engine = SearchEngine::sharded(fixture.params.clone(), 1);
        engine.insert_all(indices.iter().cloned()).expect("upload");
        engine.search(&query)
    };
    for &shards in &[1usize, 2, 4, 8] {
        let mut engine = SearchEngine::sharded(fixture.params.clone(), shards);
        engine.insert_all(indices.iter().cloned()).expect("upload");
        // Exact equivalence before timing: sharding must never change results.
        assert_eq!(engine.search(&query), reference);

        group.throughput(Throughput::Elements(SWEEP_DOCS as u64));
        group.bench_with_input(
            BenchmarkId::new("shards", shards),
            &(engine, query.clone()),
            |b, (engine, query)| b.iter(|| engine.search(query)),
        );
    }

    // Batched execution: 16 queries answered in one pass over each shard.
    let mut engine = SearchEngine::sharded(fixture.params.clone(), 4);
    engine.insert_all(indices).expect("upload");
    let batch: Vec<QueryIndex> = (0..16).map(|i| build_query(&fixture, 100 + i)).collect();
    group.throughput(Throughput::Elements(16 * SWEEP_DOCS as u64));
    group.bench_with_input(
        BenchmarkId::new("batch16_shards", 4),
        &(engine, batch),
        |b, (engine, batch)| b.iter(|| engine.search_batch(batch)),
    );
    group.finish();

    // Result-cache sweep: a skewed repeated-query workload (the cache's reason to
    // exist) over a 20k-document 4-shard store. The pool queries are built once,
    // so repeats carry identical bits; a Zipf(1.1) sampler concentrates traffic on
    // the head of the pool the way real query logs do.
    let mut group = c.benchmark_group("fig4b_search_cached");
    group.sample_size(20);
    const CACHE_DOCS: usize = 20_000;
    const QUERY_POOL: usize = 32;
    const WORKLOAD: usize = 256;
    let fixture = BenchFixture::new(CACHE_DOCS, 3, 11);
    let indexer = fixture.indexer();
    let indices = indexer.index_documents(&fixture.corpus.documents);
    let query_pool = build_query_pool(&fixture, QUERY_POOL);
    let workload: Vec<usize> =
        ZipfSampler::new(QUERY_POOL, 1.1).sample_many(&mut StdRng::seed_from_u64(7), WORKLOAD);

    let mut uncached = SearchEngine::sharded(fixture.params.clone(), 4);
    uncached
        .insert_all(indices.iter().cloned())
        .expect("upload");
    // Exact equivalence before timing, for every pool query: the cache must never
    // change a reply byte.
    {
        let cached = {
            let mut engine = SearchEngine::sharded(fixture.params.clone(), 4)
                .with_result_cache(CacheConfig::default());
            engine.insert_all(indices.iter().cloned()).expect("upload");
            engine
        };
        for query in &query_pool {
            let reference = uncached.search_ranked_with_stats(query);
            assert_eq!(cached.search_ranked_with_stats(query), reference); // admits
            assert_eq!(cached.search_ranked_with_stats(query), reference); // hits
        }
    }

    group.throughput(Throughput::Elements(WORKLOAD as u64));
    group.bench_with_input(
        BenchmarkId::new("skewed", "cache_off"),
        &(&uncached, &workload, &query_pool),
        |b, (engine, workload, pool)| {
            b.iter(|| {
                for &q in workload.iter() {
                    std::hint::black_box(engine.search(&pool[q]));
                }
            })
        },
    );

    for &capacity in &[8usize, 64] {
        let mut engine =
            SearchEngine::sharded(fixture.params.clone(), 4).with_result_cache(CacheConfig {
                capacity_per_shard: capacity,
            });
        engine.insert_all(indices.iter().cloned()).expect("upload");
        group.bench_with_input(
            BenchmarkId::new("skewed", format!("cache_{capacity}")),
            &(&engine, &workload, &query_pool),
            |b, (engine, workload, pool)| {
                b.iter(|| {
                    for &q in workload.iter() {
                        std::hint::black_box(engine.search(&pool[q]));
                    }
                })
            },
        );
        let stats = engine.cache_stats().expect("cache enabled");
        let lookups = stats.hits + stats.misses;
        eprintln!(
            "fig4b_search_cached capacity={capacity}: {} hits / {} misses ({:.1}% hit rate), \
             {} evictions, {} r-bit comparisons saved",
            stats.hits,
            stats.misses,
            100.0 * stats.hits as f64 / lookups.max(1) as f64,
            stats.evictions,
            stats.saved_comparisons,
        );
    }
    group.finish();

    // Pipelined envelope-client sweep: the same query workload through the
    // protocol front door (framed Request/Response envelopes), at pipeline
    // depths 1/4/16. Depth 1 is the request-per-flush baseline; deeper windows
    // amortize the per-flush transport round trip. Throughput is replies/sec;
    // framed bytes per reply are printed from the client's wire stats after
    // each configuration.
    let mut group = c.benchmark_group("fig4b_search_pipelined");
    group.sample_size(10);
    const PIPE_DOCS: usize = 10_000;
    const PIPE_WORKLOAD: usize = 32;
    let fixture = BenchFixture::new(PIPE_DOCS, 3, 11);
    let indexer = fixture.indexer();
    let indices = indexer.index_documents(&fixture.corpus.documents);
    let query_pool = build_query_pool(&fixture, 16);
    let messages: Vec<QueryMessage> = query_pool
        .iter()
        .map(|q| QueryMessage {
            query: q.bits().clone(),
            top: Some(10), // a dashboard wants the best few, not every match
        })
        .collect();

    for &depth in &[1usize, 4, 16] {
        let mut client = Client::new(CloudServer::with_shards(fixture.params.clone(), 4));
        client
            .upload(indices.clone(), vec![])
            .expect("framed upload");
        // Per-query wire accounting starts after the (one-off, huge) upload frame.
        let after_upload = client.wire_stats();
        // Reply equivalence across depths is covered by the protocol test
        // suites; here we only measure.
        group.throughput(Throughput::Elements(PIPE_WORKLOAD as u64));
        group.bench_function(BenchmarkId::new("depth", depth), |b| {
            b.iter(|| {
                let mut served = 0usize;
                while served < PIPE_WORKLOAD {
                    let window = depth.min(PIPE_WORKLOAD - served);
                    let ids: Vec<u64> = (0..window)
                        .map(|i| {
                            let message = &messages[(served + i) % messages.len()];
                            client.submit(&Request::Query(message.clone()))
                        })
                        .collect();
                    client.flush().expect("pipelined flush");
                    for id in ids {
                        std::hint::black_box(client.take(id).expect("correlated reply"));
                    }
                    served += window;
                }
            })
        });
        let wire = client.wire_stats().since(&after_upload);
        eprintln!(
            "fig4b_search_pipelined depth={depth}: {} replies across all timed iterations \
             ({PIPE_WORKLOAD}/iteration), {} framed request bytes/query, \
             {} framed reply bytes/query",
            wire.frames_received,
            wire.bytes_sent / wire.frames_sent.max(1),
            wire.bytes_received / wire.frames_received.max(1),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
