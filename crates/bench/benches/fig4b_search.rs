//! Figure 4(b): server-side search time per query, on the layered engine.
//!
//! Two sweeps over the shard-parallel [`SearchEngine`]:
//!
//! * the paper's figure — ranked search over stores of 2000–10000 documents at
//!   ranking depths 1, 3 and 5, on a single shard (the sequential reference);
//! * the scaling dimension the paper leaves to "highly parallelized nature" remarks —
//!   the same query on a 50000-document store sharded 1/2/4/8 ways, plus a
//!   16-query batch to show the one-pass-per-shard batching path;
//! * a **result-cache sweep**: a skewed (Zipf-like) repeated-query workload over a
//!   fixed query pool, served with the cache off and on at several capacities.
//!   Results are asserted byte-identical before timing, and the hit/miss counts of
//!   the cached runs are printed afterwards;
//! * a **layout sweep** (`fig4b_scan_layout`): the PR-3 AoS scan vs the block-major
//!   scan plane on a 64k-document r = 448 store, single-thread head-to-head plus
//!   plane-backed shard counts 1/2/4, with every configuration recorded in the
//!   machine-readable `BENCH_scan.json` at the workspace root (committed per PR as
//!   the perf-trajectory record; smoke runs never overwrite it);
//! * a **scheduler sweep + churn scenario** (`fig4b_sched_sweep` /
//!   `fig4b_sched_churn`): the PR-6 work-stealing chunk-range scheduler vs the
//!   static shard-per-lane fan-out at shards 1/2/4/8 × lanes 1/2/4, plus a
//!   Zipf(1.1) query mix with interleaved inserts at shards 4 / lanes 2,
//!   recorded in `BENCH_sched.json`;
//! * an **observability-overhead scenario** (`fig4b_obs_overhead`): the same
//!   64k-document scan with the telemetry registry at `Off`, `Counters` and
//!   `Spans`, recorded in `BENCH_obs.json`, failing the run if always-on
//!   `Counters` recording costs more than 3% over `Off`.
//!
//! The store is built once per configuration (with keyword-index memoization — only
//! the search is timed); queries carry 2 genuine keywords plus the V = 30 random
//! keywords. Shard counts change wall-clock time only: results are bit-for-bit
//! identical across all configurations (asserted before timing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mkse_bench::{BenchFixture, ZipfSampler};
use mkse_core::search::scan_ranked;
use mkse_core::{
    CacheConfig, IndexStore, QueryBuilder, QueryIndex, ScanScheduler, SearchEngine, ShardedStore,
    TelemetryLevel,
};
use mkse_protocol::{Client, CloudServer, QueryMessage, Request};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn build_query(fixture: &BenchFixture, seed: u64) -> QueryIndex {
    let mut rng = StdRng::seed_from_u64(seed);
    let kws = fixture.query_keywords();
    let kw_refs: Vec<&str> = kws.iter().map(|s| s.as_str()).collect();
    let trapdoors = fixture.keys.trapdoors_for(&fixture.params, &kw_refs);
    let pool = fixture.keys.random_pool_trapdoors(&fixture.params);
    QueryBuilder::new(&fixture.params)
        .add_trapdoors(&trapdoors)
        .with_randomization(&pool)
        .build(&mut rng)
}

/// Build every query of the pool **once** (randomization included): a repeated
/// workload re-issues the same query index bits, which is exactly the search
/// pattern the server observes and the fingerprint cache keys on.
fn build_query_pool(fixture: &BenchFixture, pool_size: usize) -> Vec<QueryIndex> {
    let mut rng = StdRng::seed_from_u64(41);
    let random_pool = fixture.keys.random_pool_trapdoors(&fixture.params);
    fixture
        .query_keyword_pool(pool_size)
        .iter()
        .map(|kws| {
            let kw_refs: Vec<&str> = kws.iter().map(|s| s.as_str()).collect();
            let trapdoors = fixture.keys.trapdoors_for(&fixture.params, &kw_refs);
            QueryBuilder::new(&fixture.params)
                .add_trapdoors(&trapdoors)
                .with_randomization(&random_pool)
                .build(&mut rng)
        })
        .collect()
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4b_search");
    group.sample_size(20);

    for &num_docs in &[2000usize, 6000, 10000] {
        for &levels in &[1usize, 3, 5] {
            let fixture = BenchFixture::new(num_docs, levels, 11);
            let indexer = fixture.indexer();
            let mut engine = SearchEngine::sharded(fixture.params.clone(), 1);
            engine
                .insert_all(indexer.index_documents(&fixture.corpus.documents))
                .expect("upload");
            let query = build_query(&fixture, 13);

            group.throughput(Throughput::Elements(num_docs as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("eta{levels}"), num_docs),
                &(engine, query),
                |b, (engine, query)| b.iter(|| engine.search(query)),
            );
        }
    }
    group.finish();

    // Shard-scaling sweep: same store content, same query, 1/2/4/8 scan lanes.
    // 50k documents — the scan has to dominate per-query coordination for the
    // sweep to say anything about scaling.
    let mut group = c.benchmark_group("fig4b_search_sharded");
    group.sample_size(20);
    const SWEEP_DOCS: usize = 50_000;
    let fixture = BenchFixture::new(SWEEP_DOCS, 3, 11);
    let indexer = fixture.indexer();
    let indices = indexer.index_documents(&fixture.corpus.documents);
    let query = build_query(&fixture, 13);

    let reference = {
        let mut engine = SearchEngine::sharded(fixture.params.clone(), 1);
        engine.insert_all(indices.iter().cloned()).expect("upload");
        engine.search(&query)
    };
    for &shards in &[1usize, 2, 4, 8] {
        let mut engine = SearchEngine::sharded(fixture.params.clone(), shards);
        engine.insert_all(indices.iter().cloned()).expect("upload");
        // Exact equivalence before timing: sharding must never change results.
        assert_eq!(engine.search(&query), reference);

        group.throughput(Throughput::Elements(SWEEP_DOCS as u64));
        group.bench_with_input(
            BenchmarkId::new("shards", shards),
            &(engine, query.clone()),
            |b, (engine, query)| b.iter(|| engine.search(query)),
        );
    }

    // Batched execution: 16 queries answered in one pass over each shard.
    let mut engine = SearchEngine::sharded(fixture.params.clone(), 4);
    engine.insert_all(indices).expect("upload");
    let batch: Vec<QueryIndex> = (0..16).map(|i| build_query(&fixture, 100 + i)).collect();
    group.throughput(Throughput::Elements(16 * SWEEP_DOCS as u64));
    group.bench_with_input(
        BenchmarkId::new("batch16_shards", 4),
        &(engine, batch),
        |b, (engine, batch)| b.iter(|| engine.search_batch(batch)),
    );
    group.finish();

    // Result-cache sweep: a skewed repeated-query workload (the cache's reason to
    // exist) over a 20k-document 4-shard store. The pool queries are built once,
    // so repeats carry identical bits; a Zipf(1.1) sampler concentrates traffic on
    // the head of the pool the way real query logs do.
    let mut group = c.benchmark_group("fig4b_search_cached");
    group.sample_size(20);
    const CACHE_DOCS: usize = 20_000;
    const QUERY_POOL: usize = 32;
    const WORKLOAD: usize = 256;
    let fixture = BenchFixture::new(CACHE_DOCS, 3, 11);
    let indexer = fixture.indexer();
    let indices = indexer.index_documents(&fixture.corpus.documents);
    let query_pool = build_query_pool(&fixture, QUERY_POOL);
    let workload: Vec<usize> =
        ZipfSampler::new(QUERY_POOL, 1.1).sample_many(&mut StdRng::seed_from_u64(7), WORKLOAD);

    let mut uncached = SearchEngine::sharded(fixture.params.clone(), 4);
    uncached
        .insert_all(indices.iter().cloned())
        .expect("upload");
    // Exact equivalence before timing, for every pool query: the cache must never
    // change a reply byte.
    {
        let cached = {
            let mut engine = SearchEngine::sharded(fixture.params.clone(), 4)
                .with_result_cache(CacheConfig::default());
            engine.insert_all(indices.iter().cloned()).expect("upload");
            engine
        };
        for query in &query_pool {
            let reference = uncached.search_ranked_with_stats(query);
            assert_eq!(cached.search_ranked_with_stats(query), reference); // admits
            assert_eq!(cached.search_ranked_with_stats(query), reference); // hits
        }
    }

    group.throughput(Throughput::Elements(WORKLOAD as u64));
    group.bench_with_input(
        BenchmarkId::new("skewed", "cache_off"),
        &(&uncached, &workload, &query_pool),
        |b, (engine, workload, pool)| {
            b.iter(|| {
                for &q in workload.iter() {
                    std::hint::black_box(engine.search(&pool[q]));
                }
            })
        },
    );

    for &capacity in &[8usize, 64] {
        let mut engine =
            SearchEngine::sharded(fixture.params.clone(), 4).with_result_cache(CacheConfig {
                capacity_per_shard: capacity,
            });
        engine.insert_all(indices.iter().cloned()).expect("upload");
        group.bench_with_input(
            BenchmarkId::new("skewed", format!("cache_{capacity}")),
            &(&engine, &workload, &query_pool),
            |b, (engine, workload, pool)| {
                b.iter(|| {
                    for &q in workload.iter() {
                        std::hint::black_box(engine.search(&pool[q]));
                    }
                })
            },
        );
        let stats = engine.cache_stats().expect("cache enabled");
        let lookups = stats.hits + stats.misses;
        eprintln!(
            "fig4b_search_cached capacity={capacity}: {} hits / {} misses ({:.1}% hit rate), \
             {} evictions, {} r-bit comparisons saved",
            stats.hits,
            stats.misses,
            100.0 * stats.hits as f64 / lookups.max(1) as f64,
            stats.evictions,
            stats.saved_comparisons,
        );
    }
    group.finish();

    // Pipelined envelope-client sweep: the same query workload through the
    // protocol front door (framed Request/Response envelopes), at pipeline
    // depths 1/4/16. Depth 1 is the request-per-flush baseline; deeper windows
    // amortize the per-flush transport round trip. Throughput is replies/sec;
    // framed bytes per reply are printed from the client's wire stats after
    // each configuration.
    let mut group = c.benchmark_group("fig4b_search_pipelined");
    group.sample_size(10);
    const PIPE_DOCS: usize = 10_000;
    const PIPE_WORKLOAD: usize = 32;
    let fixture = BenchFixture::new(PIPE_DOCS, 3, 11);
    let indexer = fixture.indexer();
    let indices = indexer.index_documents(&fixture.corpus.documents);
    let query_pool = build_query_pool(&fixture, 16);
    let messages: Vec<QueryMessage> = query_pool
        .iter()
        .map(|q| QueryMessage {
            query: q.bits().clone(),
            top: Some(10), // a dashboard wants the best few, not every match
        })
        .collect();

    for &depth in &[1usize, 4, 16] {
        let mut client = Client::new(CloudServer::with_shards(fixture.params.clone(), 4));
        client
            .upload(indices.clone(), vec![])
            .expect("framed upload");
        // Per-query wire accounting starts after the (one-off, huge) upload frame.
        let after_upload = client.wire_stats();
        // Reply equivalence across depths is covered by the protocol test
        // suites; here we only measure.
        group.throughput(Throughput::Elements(PIPE_WORKLOAD as u64));
        group.bench_function(BenchmarkId::new("depth", depth), |b| {
            b.iter(|| {
                let mut served = 0usize;
                while served < PIPE_WORKLOAD {
                    let window = depth.min(PIPE_WORKLOAD - served);
                    let ids: Vec<u64> = (0..window)
                        .map(|i| {
                            let message = &messages[(served + i) % messages.len()];
                            client.submit(&Request::Query(message.clone()))
                        })
                        .collect();
                    client.flush().expect("pipelined flush");
                    for id in ids {
                        std::hint::black_box(client.take(id).expect("correlated reply"));
                    }
                    served += window;
                }
            })
        });
        let wire = client.wire_stats().since(&after_upload);
        eprintln!(
            "fig4b_search_pipelined depth={depth}: {} replies across all timed iterations \
             ({PIPE_WORKLOAD}/iteration), {} framed request bytes/query, \
             {} framed reply bytes/query",
            wire.frames_received,
            wire.bytes_sent / wire.frames_sent.max(1),
            wire.bytes_received / wire.frames_received.max(1),
        );
    }
    group.finish();
}

/// Mean wall-clock ns of `routine` over one calibrated window of `budget_ms`
/// (one warm-up call first). In `--test` smoke runs the routine executes once
/// and 0 is returned.
fn measure_ns_window<O, F: FnMut() -> O>(quick: bool, budget_ms: u64, mut routine: F) -> f64 {
    std::hint::black_box(routine());
    if quick {
        return 0.0;
    }
    let budget = Duration::from_millis(budget_ms);
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        let elapsed = start.elapsed();
        if elapsed >= budget || iters >= 1 << 20 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        let scale = (budget.as_nanos() as f64 / elapsed.as_nanos().max(1) as f64).ceil();
        iters = (iters as f64 * scale.clamp(2.0, 100.0)) as u64;
    }
}

/// Measure two routines that are being *compared*: three calibrated windows
/// each, interleaved A/B/A/B/A/B so slow host phases (frequency scaling, noisy
/// neighbors) hit both sides alike, reporting the per-routine medians. Shared
/// wall-clock noise then largely cancels out of the A/B ratio.
fn measure_ns_pair<OA, OB>(
    quick: bool,
    mut a: impl FnMut() -> OA,
    mut b: impl FnMut() -> OB,
) -> (f64, f64) {
    let mut samples_a = Vec::new();
    let mut samples_b = Vec::new();
    for round in 0..3 {
        samples_a.push(measure_ns_window(quick, 300, &mut a));
        samples_b.push(measure_ns_window(quick, 300, &mut b));
        if quick && round == 0 {
            return (0.0, 0.0);
        }
    }
    let median = |samples: &mut Vec<f64>| {
        samples.sort_by(|x, y| x.partial_cmp(y).expect("finite timings"));
        samples[samples.len() / 2]
    };
    (median(&mut samples_a), median(&mut samples_b))
}

/// Layout sweep: the PR-3 AoS scan (one heap `BitIndex` per level per document,
/// pointer-chased by `scan_ranked`) against the block-major scan plane, on a
/// 64k-document r = 448 store — the σ·r comparison workload of Figure 4(b) at
/// production scale. Single-thread kernels are timed head-to-head, then the
/// plane-backed engine at shard counts 1/2/4. Results are asserted byte-identical
/// before timing, and every configuration is written to `BENCH_scan.json`
/// (docs, r, shards, ns/query, comparisons) at the workspace root — committed per
/// PR so the perf trajectory is tracked in version control. Smoke runs (`--test`)
/// skip the write: zeroed timings must never clobber a real measurement.
fn bench_scan_layout(_c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--test");
    // The stub harness has no filter support, so honor a positional filter here
    // at least: `cargo bench <something-else>` must not spend the 64k-document
    // fixture build nor rewrite the committed trajectory record.
    let filtered_out = std::env::args()
        .skip(1)
        .any(|a| !a.starts_with('-') && !"fig4b_scan_layout".contains(a.as_str()));
    if filtered_out {
        return;
    }
    // Each configuration's number is the best of many short interleaved
    // windows (see the measurement loop below); the JSON and the report line
    // share it, so the group is reported directly instead of registering the
    // same routines with the harness a second time.
    let report = |id: &str, ns: f64| {
        if quick {
            println!("fig4b_scan_layout/{id}  ok (smoke run)");
        } else {
            let per_sec = LAYOUT_DOCS as f64 * 1e9 / ns;
            println!(
                "fig4b_scan_layout/{id}  time: {:.3} µs  thrpt: {per_sec:.0} elem/s",
                ns / 1e3
            );
        }
    };

    const LAYOUT_DOCS: usize = 64_000;
    let fixture = BenchFixture::new(LAYOUT_DOCS, 3, 11);
    let indexer = fixture.indexer();
    // `indices` IS the PR-3 per-shard layout: a contiguous Vec of AoS documents.
    let indices = indexer.index_documents(&fixture.corpus.documents);
    let query = build_query(&fixture, 13);
    let r = fixture.params.index_bits;

    let mut engines = Vec::new();
    for &shards in &[1usize, 2, 4] {
        let mut engine = SearchEngine::sharded(fixture.params.clone(), shards);
        engine.insert_all(indices.iter().cloned()).expect("upload");
        engines.push((shards, engine));
    }

    // Equivalence before timing: the plane is a layout change only, and
    // sharding must never change results.
    let (aos_matches, aos_stats) = scan_ranked(&indices, &query);
    let plane = engines[0]
        .1
        .store()
        .scan_plane(0)
        .expect("plane maintained");
    assert_eq!(plane.scan_ranked(query.bits()), (aos_matches, aos_stats));
    let reference = engines[0].1.search(&query);
    for (shards, engine) in &engines[1..] {
        assert_eq!(&engine.search(&query), &reference, "{shards} shards");
    }

    // The configurations are *compared against each other* in the committed
    // record, so they are measured in interleaved rounds (one window per
    // configuration per round, best window kept): host-speed drift across the
    // run — frequency scaling, noisy neighbors — then hits every configuration
    // alike instead of whichever one happened to be measured last. Windows are
    // deliberately short: sustained saturation of every core throttles shared
    // hosts by ±30%, and that phase noise outlasts any single round — many
    // short windows measure the code, not the container's power management.
    let (query, indices) = (&query, &indices);
    let ids = ["aos_scan/1", "plane_scan/1"];
    let mut routines: Vec<(String, Box<dyn FnMut()>)> = vec![
        (
            ids[0].to_string(),
            Box::new(move || {
                std::hint::black_box(scan_ranked(indices, query));
            }),
        ),
        (
            ids[1].to_string(),
            Box::new(move || {
                std::hint::black_box(plane.scan_ranked(query.bits()));
            }),
        ),
    ];
    for (shards, engine) in &engines {
        routines.push((
            format!("plane_engine_shards/{shards}"),
            Box::new(move || {
                std::hint::black_box(engine.search(query));
            }),
        ));
    }
    let mut best = vec![f64::MAX; routines.len()];
    for round in 0..25 {
        for ((_, routine), slot) in routines.iter_mut().zip(best.iter_mut()) {
            *slot = slot.min(measure_ns_window(quick, 20, routine));
        }
        if quick && round == 0 {
            break;
        }
    }
    let mut json_entries = Vec::new();
    for ((id, _), &ns) in routines.iter().zip(&best) {
        let ns = if quick { 0.0 } else { ns };
        report(id, ns);
        let (layout, shards) = match id.rsplit_once('/') {
            Some((prefix, n)) => (
                match prefix {
                    "aos_scan" => "aos",
                    "plane_scan" => "plane",
                    _ => "plane_engine",
                },
                n.parse::<usize>().expect("shard suffix"),
            ),
            None => unreachable!("bench ids carry a /shards suffix"),
        };
        json_entries.push((layout, shards, ns));
    }
    let (aos_ns, plane_ns) = (json_entries[0].2, json_entries[1].2);
    println!();

    if plane_ns > 0.0 {
        eprintln!(
            "fig4b_scan_layout: single-thread AoS {aos_ns:.0} ns/query vs plane {plane_ns:.0} \
             ns/query = {:.2}x on {LAYOUT_DOCS} docs, r={r}",
            aos_ns / plane_ns
        );
    }

    // Machine-readable trajectory record at the workspace root. Smoke runs only
    // exercised each routine once (all-zero timings), so they leave the
    // committed record untouched.
    if quick {
        return;
    }
    let entries: Vec<String> = json_entries
        .iter()
        .map(|(layout, shards, ns)| {
            format!(
                "    {{\"layout\": \"{layout}\", \"shards\": {shards}, \
                 \"ns_per_query\": {ns:.1}, \"comparisons\": {}}}",
                aos_stats.comparisons
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fig4b_scan_layout\",\n  \"docs\": {LAYOUT_DOCS},\n  \"r\": {r},\n  \
         \"eta\": {},\n  \"entries\": [\n{}\n  ]\n}}\n",
        fixture.params.rank_levels(),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan.json");
    match std::fs::write(path, json) {
        Ok(()) => eprintln!("fig4b_scan_layout: wrote {path}"),
        Err(e) => eprintln!("fig4b_scan_layout: could not write {path}: {e}"),
    }
}

/// Batch-depth sweep: the fused multi-query sweep
/// (`ScanPlane::scan_ranked_batch`, reached through
/// `SearchEngine::search_batch_with_stats`) against per-query execution of the
/// same workload, at batch depths 1/4/16/64 on the 64k-document r = 448 store.
/// Per-query execution streams the whole arena once per query; the fused sweep
/// streams it once per batch, so the gap is the memory-traffic amortization the
/// batch kernel exists for (target: ≥3× per-query throughput at depth 16).
/// Results are asserted byte-identical before timing, and every configuration is
/// written to `BENCH_batch.json` at the workspace root — committed per PR like
/// `BENCH_scan.json`; smoke runs (`--test`) never overwrite it.
fn bench_batch_sweep(_c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--test");
    let filtered_out = std::env::args()
        .skip(1)
        .any(|a| !a.starts_with('-') && !"fig4b_batch_sweep".contains(a.as_str()));
    if filtered_out {
        return;
    }
    let report = |id: &str, ns_per_query: f64| {
        if quick {
            println!("fig4b_batch_sweep/{id}  ok (smoke run)");
        } else {
            println!(
                "fig4b_batch_sweep/{id}  time: {:.3} µs/query",
                ns_per_query / 1e3
            );
        }
    };

    const BATCH_DOCS: usize = 64_000;
    const DEPTHS: [usize; 4] = [1, 4, 16, 64];
    let fixture = BenchFixture::new(BATCH_DOCS, 3, 11);
    let indexer = fixture.indexer();
    let indices = indexer.index_documents(&fixture.corpus.documents);
    let r = fixture.params.index_bits;
    // Distinct queries: dedup must not shortcut the sweep being measured.
    let queries: Vec<QueryIndex> = (0..DEPTHS[DEPTHS.len() - 1])
        .map(|i| build_query(&fixture, 200 + i as u64))
        .collect();
    for (i, a) in queries.iter().enumerate() {
        for b in &queries[i + 1..] {
            assert_ne!(
                a.bits(),
                b.bits(),
                "colliding queries would let dedup skip scans"
            );
        }
    }

    let mut engine = SearchEngine::sharded(fixture.params.clone(), 1);
    engine.insert_all(indices.iter().cloned()).expect("upload");

    // Equivalence before timing: the fused sweep is an execution-order change
    // only — byte-identical matches, ranks, order and per-query stats.
    let expected: Vec<_> = queries
        .iter()
        .map(|q| engine.search_ranked_with_stats(q))
        .collect();
    assert_eq!(engine.search_batch_with_stats(&queries), expected);

    let mut entries: Vec<String> = Vec::new();
    let mut per_query_ns_at = [0.0f64; DEPTHS.len()];
    let mut fused_ns_at = [0.0f64; DEPTHS.len()];
    for (d, &depth) in DEPTHS.iter().enumerate() {
        let batch = &queries[..depth];
        // The two execution modes are measured in interleaved windows so host
        // noise cancels out of the recorded fused-vs-per-query ratio.
        let (per_query_total, fused_total) = measure_ns_pair(
            quick,
            || {
                batch
                    .iter()
                    .map(|q| engine.search_ranked_with_stats(q))
                    .collect::<Vec<_>>()
            },
            || engine.search_batch_with_stats(batch),
        );
        let per_query_ns = per_query_total / depth as f64;
        let fused_ns = fused_total / depth as f64;
        report(&format!("per_query/b{depth}"), per_query_ns);
        report(&format!("fused/b{depth}"), fused_ns);
        per_query_ns_at[d] = per_query_ns;
        fused_ns_at[d] = fused_ns;
        let speedup = if fused_ns > 0.0 {
            per_query_ns / fused_ns
        } else {
            0.0
        };
        for (mode, ns) in [("per_query", per_query_ns), ("fused", fused_ns)] {
            entries.push(format!(
                "    {{\"mode\": \"{mode}\", \"batch\": {depth}, \"shards\": 1, \
                 \"ns_per_query\": {ns:.1}, \"speedup_vs_per_query\": {:.2}}}",
                if mode == "fused" { speedup } else { 1.0 }
            ));
        }
    }
    println!();
    if !quick {
        let b16 = DEPTHS
            .iter()
            .position(|&d| d == 16)
            .expect("depth 16 swept");
        eprintln!(
            "fig4b_batch_sweep: per-query {:.0} ns/query vs fused {:.0} ns/query at b=16 \
             = {:.2}x on {BATCH_DOCS} docs, r={r}",
            per_query_ns_at[b16],
            fused_ns_at[b16],
            per_query_ns_at[b16] / fused_ns_at[b16]
        );
    }

    if quick {
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"fig4b_batch_sweep\",\n  \"docs\": {BATCH_DOCS},\n  \"r\": {r},\n  \
         \"eta\": {},\n  \"entries\": [\n{}\n  ]\n}}\n",
        fixture.params.rank_levels(),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    match std::fs::write(path, json) {
        Ok(()) => eprintln!("fig4b_batch_sweep: wrote {path}"),
        Err(e) => eprintln!("fig4b_batch_sweep: could not write {path}: {e}"),
    }
}

/// Scheduler sweep + churn scenario, recorded in `BENCH_sched.json`.
///
/// **Sweep** (`fig4b_sched_sweep`): the PR-6 work-stealing scheduler against the
/// static shard-per-lane fan-out it replaces, on the 64k-document r = 448 store
/// at shard counts 1/2/4/8 × requested lanes 1/2/4. The two modes run as twin
/// engines over identical stores and are measured in interleaved windows
/// (`measure_ns_pair`) so host noise cancels out of the recorded ratio. The
/// static scheduler's weakness is the sweep's reason to exist: with more shards
/// than lanes it serializes whole shards per lane, while stealing keeps every
/// lane busy with chunk-range units from any shard.
///
/// **Churn** (`fig4b_sched_churn`): a skewed Zipf(1.1) repeated-query workload
/// with an insert interleaved every 16 ops, at shards 4 / lanes 2 with the
/// result cache on — the regime where per-shard cache invalidation and scan
/// re-execution meet the scheduler. Each timed pass runs on a fresh clone of the
/// warm store so inserts see the same state every pass; the median of the
/// interleaved passes is recorded per mode.
///
/// Results are asserted byte-identical across modes before timing. The JSON
/// carries `host_cores` and both the requested and effective lane counts: on a
/// small host the engine clamps lanes to the available parallelism, and the
/// committed record must say so rather than imply a wider machine. Smoke runs
/// (`--test`) never overwrite the committed record.
fn bench_sched_sweep(_c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--test");
    let filtered_out = std::env::args().skip(1).any(|a| {
        !a.starts_with('-')
            && !["fig4b_sched_sweep", "fig4b_sched_churn"]
                .iter()
                .any(|name| name.contains(a.as_str()))
    });
    if filtered_out {
        return;
    }
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let report = |id: &str, ns: f64| {
        if quick {
            println!("fig4b_sched/{id}  ok (smoke run)");
        } else {
            println!("fig4b_sched/{id}  time: {:.3} µs/query", ns / 1e3);
        }
    };

    const SCHED_DOCS: usize = 64_000;
    let fixture = BenchFixture::new(SCHED_DOCS, 3, 11);
    let indexer = fixture.indexer();
    let indices = indexer.index_documents(&fixture.corpus.documents);
    let r = fixture.params.index_bits;
    let query = build_query(&fixture, 13);

    let mut entries: Vec<String> = Vec::new();
    let mut reference: Option<Vec<mkse_core::SearchMatch>> = None;
    let mut engines: Vec<(
        usize,
        SearchEngine<ShardedStore>,
        SearchEngine<ShardedStore>,
    )> = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        // Both timed engines are clones of a never-timed base: a clone's arenas
        // are freshly packed, so cloning exactly one side would hand it an
        // allocator-layout advantage unrelated to the scheduler.
        let mut base = SearchEngine::sharded(fixture.params.clone(), shards);
        base.insert_all(indices.iter().cloned()).expect("upload");
        let mut r#static = base.clone().with_scan_scheduler(ScanScheduler::Static);
        let mut stealing = base.clone();
        let reference = reference.get_or_insert_with(|| base.search(&query));
        for &lanes in &[1usize, 2, 4] {
            stealing.set_scan_lanes(lanes);
            r#static.set_scan_lanes(lanes);
            // Byte-identical replies before timing, at every knob setting.
            assert_eq!(&stealing.search(&query), reference, "stealing differs");
            assert_eq!(&r#static.search(&query), reference, "static differs");
        }
        engines.push((shards, r#static, stealing));
    }

    // All 24 (shards × lanes × mode) configurations are compared in one
    // committed record, so — like the layout sweep above — each is measured in
    // interleaved rounds of short windows with the best window kept: host-speed
    // phases (frequency scaling, noisy neighbors) then hit every configuration
    // alike instead of whichever was measured during a slow phase.
    let lanes_sweep = [1usize, 2, 4];
    let mut configs: Vec<(usize, &str, usize, usize, f64)> = Vec::new();
    for e in 0..engines.len() {
        for &lanes in &lanes_sweep {
            configs.push((e, "static", lanes, 0, f64::MAX));
            configs.push((e, "stealing", lanes, 0, f64::MAX));
        }
    }
    for round in 0..40 {
        for (e, mode, lanes, effective, best) in configs.iter_mut() {
            let (_, r#static, stealing) = &mut engines[*e];
            let engine = if *mode == "static" {
                r#static
            } else {
                stealing
            };
            engine.set_scan_lanes(*lanes);
            *effective = engine.scan_lanes();
            let engine: &SearchEngine<ShardedStore> = engine;
            *best = best.min(measure_ns_window(quick, 20, || {
                std::hint::black_box(engine.search(&query))
            }));
        }
        if quick && round == 0 {
            break;
        }
    }
    for &(e, mode, lanes, effective, ns) in &configs {
        let shards = engines[e].0;
        let ns = if quick { 0.0 } else { ns };
        report(&format!("sweep/{mode}/shards{shards}/lanes{lanes}"), ns);
        entries.push(format!(
            "    {{\"section\": \"sweep\", \"mode\": \"{mode}\", \"shards\": {shards}, \
             \"lanes_requested\": {lanes}, \"lanes\": {effective}, \
             \"ns_per_query\": {ns:.1}}}"
        ));
    }

    // Churn scenario: inserts every 16 ops invalidate the touched shard's cache
    // entries, so the engine alternates between cache hits on the Zipf head and
    // fresh scheduler-driven scans.
    const CHURN_SHARDS: usize = 4;
    const CHURN_LANES: usize = 2;
    const CHURN_POOL: usize = 32;
    const CHURN_OPS: usize = 256;
    const INSERT_EVERY: usize = 16;
    let churn_fixture = BenchFixture::new(16_000 + CHURN_OPS / INSERT_EVERY, 3, 19);
    let churn_indexer = churn_fixture.indexer();
    let churn_indices = churn_indexer.index_documents(&churn_fixture.corpus.documents);
    let (base_indices, fresh) = churn_indices.split_at(16_000);
    let pool = build_query_pool(&churn_fixture, CHURN_POOL);
    let workload: Vec<usize> =
        ZipfSampler::new(CHURN_POOL, 1.1).sample_many(&mut StdRng::seed_from_u64(23), CHURN_OPS);

    let mut churn_seed = SearchEngine::sharded(churn_fixture.params.clone(), CHURN_SHARDS)
        .with_result_cache(CacheConfig::default());
    churn_seed.set_scan_lanes(CHURN_LANES);
    churn_seed
        .insert_all(base_indices.iter().cloned())
        .expect("upload");
    // Clone symmetry, as in the sweep: both timed engines descend from the
    // same never-timed seed.
    let churn_static = churn_seed
        .clone()
        .with_scan_scheduler(ScanScheduler::Static);
    let churn_base = churn_seed.clone();
    let churn_lanes = churn_base.scan_lanes();

    // One churn pass over a fresh clone: every pass (and both modes) sees the
    // same store state, query sequence and insert points.
    let run_churn = |base: &SearchEngine<ShardedStore>| {
        let mut engine = base.clone();
        let mut replies = Vec::with_capacity(CHURN_OPS);
        for (op, &q) in workload.iter().enumerate() {
            if op % INSERT_EVERY == 0 {
                engine
                    .insert(fresh[op / INSERT_EVERY].clone())
                    .expect("fresh insert");
            }
            replies.push(engine.search_ranked_with_stats(&pool[q]));
        }
        replies
    };
    // Byte-identical replies (matches, ranks and stats for all 256 ops) across
    // schedulers before timing.
    assert_eq!(
        run_churn(&churn_base),
        run_churn(&churn_static),
        "churn replies differ across schedulers"
    );

    let timed_pass = |base: &SearchEngine<ShardedStore>| -> f64 {
        let start = Instant::now();
        std::hint::black_box(run_churn(base));
        start.elapsed().as_nanos() as f64 / CHURN_OPS as f64
    };
    // Interleaved passes, best pass kept — same noise-cancellation rationale as
    // the sweep above (each pass is already 256 ops long, so a "window" here is
    // one full pass).
    let (mut static_best, mut stealing_best) = (f64::MAX, f64::MAX);
    let churn_rounds = if quick { 1 } else { 15 };
    for _ in 0..churn_rounds {
        static_best = static_best.min(timed_pass(&churn_static));
        stealing_best = stealing_best.min(timed_pass(&churn_base));
    }
    for (mode, best) in [("static", static_best), ("stealing", stealing_best)] {
        let ns = if quick { 0.0 } else { best };
        report(
            &format!("churn/{mode}/shards{CHURN_SHARDS}/lanes{CHURN_LANES}"),
            ns,
        );
        entries.push(format!(
            "    {{\"section\": \"churn\", \"mode\": \"{mode}\", \"shards\": {CHURN_SHARDS}, \
             \"lanes_requested\": {CHURN_LANES}, \"lanes\": {churn_lanes}, \
             \"ns_per_query\": {ns:.1}}}"
        ));
    }
    println!();

    if quick {
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"fig4b_sched\",\n  \"docs\": {SCHED_DOCS},\n  \"r\": {r},\n  \
         \"eta\": {},\n  \"host_cores\": {host_cores},\n  \"entries\": [\n{}\n  ]\n}}\n",
        fixture.params.rank_levels(),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json");
    match std::fs::write(path, json) {
        Ok(()) => eprintln!("fig4b_sched: wrote {path}"),
        Err(e) => eprintln!("fig4b_sched: could not write {path}: {e}"),
    }
}

/// Observability-overhead scenario (`fig4b_obs_overhead`), recorded in
/// `BENCH_obs.json`.
///
/// Three clones of one 64k-document r = 448 store answer the same query with
/// the telemetry registry at `Off`, `Counters` and `Spans`. Replies are
/// asserted byte-identical across levels before timing (the invariant the
/// equivalence suite proves at scale: telemetry observes, it never
/// participates), then the three levels are measured in interleaved rounds of
/// short best-of windows — like the layout sweep — so host-speed phases hit
/// every level alike. The committed record carries each level's ns/query and
/// its overhead over `Off`; the run **fails** if `Counters` costs more than 3%,
/// the budget that keeps always-on production counters honest. Smoke runs
/// (`--test`) never overwrite the committed record.
fn bench_obs_overhead(_c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--test");
    let filtered_out = std::env::args()
        .skip(1)
        .any(|a| !a.starts_with('-') && !"fig4b_obs_overhead".contains(a.as_str()));
    if filtered_out {
        return;
    }
    let report = |id: &str, ns: f64| {
        if quick {
            println!("fig4b_obs_overhead/{id}  ok (smoke run)");
        } else {
            println!("fig4b_obs_overhead/{id}  time: {:.3} µs/query", ns / 1e3);
        }
    };

    const OBS_DOCS: usize = 64_000;
    let fixture = BenchFixture::new(OBS_DOCS, 3, 11);
    let indexer = fixture.indexer();
    let indices = indexer.index_documents(&fixture.corpus.documents);
    let r = fixture.params.index_bits;
    let query = build_query(&fixture, 13);

    // Clone symmetry, as in the scheduler sweep: every timed engine descends
    // from the same never-timed base, so no level gets an allocator-layout
    // advantage unrelated to the registry.
    let mut base = SearchEngine::sharded(fixture.params.clone(), 4);
    base.insert_all(indices.iter().cloned()).expect("upload");
    let levels = [
        TelemetryLevel::Off,
        TelemetryLevel::Counters,
        TelemetryLevel::Spans,
    ];
    let engines: Vec<SearchEngine<ShardedStore>> = levels
        .iter()
        .map(|&level| {
            let engine = base.clone();
            engine.set_telemetry_level(level);
            engine
        })
        .collect();

    // Byte-identical replies across levels before timing.
    let reference = engines[0].search_ranked_with_stats(&query);
    for (engine, level) in engines.iter().zip(&levels).skip(1) {
        assert_eq!(
            engine.search_ranked_with_stats(&query),
            reference,
            "telemetry level {} perturbed a reply",
            level.name()
        );
    }

    let mut best = [f64::MAX; 3];
    for round in 0..25 {
        for (engine, slot) in engines.iter().zip(best.iter_mut()) {
            *slot = slot.min(measure_ns_window(quick, 20, || {
                std::hint::black_box(engine.search(&query))
            }));
        }
        if quick && round == 0 {
            break;
        }
    }

    let off_ns = best[0];
    let mut entries: Vec<String> = Vec::new();
    let mut counters_overhead_pct = 0.0;
    for (&level, &ns) in levels.iter().zip(&best) {
        let ns = if quick { 0.0 } else { ns };
        report(level.name(), ns);
        let overhead_pct = if quick || off_ns <= 0.0 {
            0.0
        } else {
            100.0 * (ns - off_ns) / off_ns
        };
        if level == TelemetryLevel::Counters {
            counters_overhead_pct = overhead_pct;
        }
        entries.push(format!(
            "    {{\"level\": \"{}\", \"ns_per_query\": {ns:.1}, \
             \"overhead_pct_vs_off\": {overhead_pct:.2}}}",
            level.name()
        ));
    }
    println!();
    if quick {
        return;
    }
    eprintln!(
        "fig4b_obs_overhead: off {off_ns:.0} ns/query, counters {:+.2}%, spans {:+.2}% \
         on {OBS_DOCS} docs, r={r}",
        counters_overhead_pct,
        100.0 * (best[2] - off_ns) / off_ns
    );

    let json = format!(
        "{{\n  \"bench\": \"fig4b_obs_overhead\",\n  \"docs\": {OBS_DOCS},\n  \"r\": {r},\n  \
         \"eta\": {},\n  \"entries\": [\n{}\n  ]\n}}\n",
        fixture.params.rank_levels(),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    match std::fs::write(path, json) {
        Ok(()) => eprintln!("fig4b_obs_overhead: wrote {path}"),
        Err(e) => eprintln!("fig4b_obs_overhead: could not write {path}: {e}"),
    }
    assert!(
        counters_overhead_pct <= 3.0,
        "Counters-level telemetry costs {counters_overhead_pct:.2}% over Off — \
         the always-on budget is 3%"
    );
}

criterion_group!(
    benches,
    bench_search,
    bench_scan_layout,
    bench_batch_sweep,
    bench_sched_sweep,
    bench_obs_overhead
);
criterion_main!(benches);
