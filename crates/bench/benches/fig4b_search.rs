//! Figure 4(b): server-side search time per query.
//!
//! Benchmarks ranked search over stores of 2000–10000 documents at ranking depths 1, 3 and 5.
//! The store is built once per configuration (with keyword-index memoization — only the search
//! is timed); the query carries 2 genuine keywords plus the V = 30 random keywords.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mkse_bench::BenchFixture;
use mkse_core::{CloudIndex, QueryBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4b_search");
    group.sample_size(20);

    for &num_docs in &[2000usize, 6000, 10000] {
        for &levels in &[1usize, 3, 5] {
            let fixture = BenchFixture::new(num_docs, levels, 11);
            let indexer = fixture.indexer();
            let mut cloud = CloudIndex::new(fixture.params.clone());
            cloud.insert_all(indexer.index_documents(&fixture.corpus.documents));

            let mut rng = StdRng::seed_from_u64(13);
            let kws = fixture.query_keywords();
            let kw_refs: Vec<&str> = kws.iter().map(|s| s.as_str()).collect();
            let trapdoors = fixture.keys.trapdoors_for(&fixture.params, &kw_refs);
            let pool = fixture.keys.random_pool_trapdoors(&fixture.params);
            let query = QueryBuilder::new(&fixture.params)
                .add_trapdoors(&trapdoors)
                .with_randomization(&pool)
                .build(&mut rng);

            group.throughput(Throughput::Elements(num_docs as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("eta{levels}"), num_docs),
                &(cloud, query),
                |b, (cloud, query)| b.iter(|| cloud.search(query)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
