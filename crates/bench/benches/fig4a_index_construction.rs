//! Figure 4(a): index-construction time on the data-owner side.
//!
//! Benchmarks the paper-faithful (uncached) per-document index construction at several corpus
//! sizes and ranking depths, plus two ablations the paper hints at (§8.1 calls the problem
//! "of highly parallelized nature"): keyword-index memoization and multi-threaded indexing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mkse_bench::BenchFixture;

fn bench_index_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4a_index_construction");
    group.sample_size(10);

    for &num_docs in &[250usize, 500, 1000] {
        for &levels in &[1usize, 3, 5] {
            let fixture = BenchFixture::new(num_docs, levels, 7);
            group.throughput(Throughput::Elements(num_docs as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("uncached_eta{levels}"), num_docs),
                &fixture,
                |b, fx| {
                    let indexer = fx.indexer();
                    b.iter(|| {
                        fx.corpus
                            .documents
                            .iter()
                            .map(|d| indexer.index_document(d))
                            .collect::<Vec<_>>()
                    });
                },
            );
        }
    }

    // Ablations at a fixed size: memoized keyword indices and parallel indexing.
    let fixture = BenchFixture::new(1000, 3, 7);
    group.throughput(Throughput::Elements(1000));
    group.bench_function("ablation_cached_eta3_1000docs", |b| {
        let indexer = fixture.indexer();
        b.iter(|| indexer.index_documents(&fixture.corpus.documents));
    });
    group.bench_function("ablation_parallel4_eta3_1000docs", |b| {
        let indexer = fixture.indexer();
        b.iter(|| indexer.index_documents_parallel(&fixture.corpus.documents, 4));
    });

    group.finish();
}

criterion_group!(benches, bench_index_construction);
criterion_main!(benches);
