//! Micro-benchmarks of the cryptographic substrate: the long-output PRF behind keyword
//! indices, keyword-index derivation (PRF + reduction), AES-CTR document encryption, and the
//! RSA operations of the blind-decryption protocol.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mkse_core::{keyword_index, SystemParams};
use mkse_crypto::aes::AesCtr;
use mkse_crypto::prf::LongPrf;
use mkse_crypto::rsa::RsaKeyPair;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_prf_and_keyword_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_prf");
    let prf = LongPrf::new(b"bin-key");
    group.bench_function("longprf_2688bits", |b| {
        b.iter(|| prf.evaluate(b"keyword", 336))
    });
    let params = SystemParams::default();
    group.bench_function("keyword_index_r448_d6", |b| {
        b.iter(|| keyword_index(&params, b"bin-key", "keyword"))
    });
    group.finish();
}

fn bench_aes(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_aes_ctr");
    let cipher = AesCtr::new(&[7u8; 16]);
    for &size in &[1024usize, 64 * 1024] {
        let data = vec![0xa5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("encrypt_{size}B"), |b| {
            b.iter(|| cipher.encrypt(&[1u8; 8], &data))
        });
    }
    group.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_rsa_1024");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    let owner = RsaKeyPair::generate(1024, &mut rng);
    let sk = [0x42u8; 16];
    let ciphertext = owner.public_key().encrypt_bytes(&sk).unwrap();
    let blinding = owner.public_key().random_blinding(&mut rng);

    group.bench_function("encrypt_document_key", |b| {
        b.iter(|| owner.public_key().encrypt_bytes(&sk).unwrap())
    });
    group.bench_function("blind", |b| {
        b.iter(|| owner.public_key().blind(&ciphertext, &blinding).unwrap())
    });
    group.bench_function("decrypt_owner_side", |b| {
        b.iter(|| owner.decrypt_value(&ciphertext).unwrap())
    });
    group.bench_function("sign", |b| b.iter(|| owner.sign(b"trapdoor request")));
    group.finish();
}

criterion_group!(benches, bench_prf_and_keyword_index, bench_aes, bench_rsa);
criterion_main!(benches);
