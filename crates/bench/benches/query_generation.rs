//! Query-side costs: trapdoor computation from a bin key and query-index construction with and
//! without the §6 randomization. Table 2 credits the user with "1 hash and bitwise product";
//! this bench shows what that costs in absolute terms and what the V = 30 random keywords add.

use criterion::{criterion_group, criterion_main, Criterion};
use mkse_core::{QueryBuilder, SchemeKeys, SystemParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_query_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_generation");
    let params = SystemParams::default();
    let mut rng = StdRng::seed_from_u64(5);
    let keys = SchemeKeys::generate(&params, &mut rng);
    let pool = keys.random_pool_trapdoors(&params);

    group.bench_function("trapdoor_single_keyword", |b| {
        b.iter(|| keys.trapdoor_for(&params, "privacy"))
    });

    for &terms in &[1usize, 3, 5] {
        let keywords: Vec<String> = (0..terms).map(|i| format!("kw{i}")).collect();
        let kw_refs: Vec<&str> = keywords.iter().map(|s| s.as_str()).collect();
        let trapdoors = keys.trapdoors_for(&params, &kw_refs);

        group.bench_function(format!("build_query_{terms}terms_plain"), |b| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| {
                QueryBuilder::new(&params)
                    .add_trapdoors(&trapdoors)
                    .build(&mut rng)
            })
        });
        group.bench_function(format!("build_query_{terms}terms_randomized_v30"), |b| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| {
                QueryBuilder::new(&params)
                    .add_trapdoors(&trapdoors)
                    .with_randomization(&pool)
                    .build(&mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_generation);
criterion_main!(benches);
