//! Fleet-cost sweep (`fig4b_fleet`), recorded in `BENCH_fleet.json`.
//!
//! A coordinator scatter-gathers a sequential top-10 query workload across
//! 1/2/3 registered shard-server nodes, with and without a **deterministic
//! seeded kill** of one node mid-workload. The sweep prices the fleet layer:
//! the coordination overhead of scatter-gather over one node (nodes=1 vs the
//! plain hub in `fig4b_net`), how merge cost scales with fleet width, and
//! what a failover costs end to end — the killed node's shards re-ship from
//! the coordinator's mirror snapshot while the workload keeps completing.
//!
//! Before any configuration is timed, the same workload runs once with the
//! coordinator hub's journal on and every *completed* reply is asserted
//! identical to a sequential single-server twin replaying that journal
//! (fleet-control traffic skipped) — failover may cost retries and shipping,
//! it must never change an answer. The per-client conservation law and the
//! failover counters are asserted in the same pass. Smoke runs (`--test`)
//! never overwrite the committed record.

use criterion::{criterion_group, criterion_main, Criterion};
use mkse_bench::BenchFixture;
use mkse_core::{QueryBuilder, QueryIndex, RankedDocumentIndex, Telemetry};
use mkse_net::{
    Connector, Coordinator, FaultPlan, FaultyLink, FleetConfig, Hub, HubConfig, HubHandle,
    MemoryDialer, NodeConfig, NodeRunner, ResilienceStats, ResilientClient, RetryPolicy,
};
use mkse_protocol::{
    wire, CloudServer, NodeCapabilities, QueryMessage, Request, Response, Service, UploadMessage,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const FLEET_DOCS: usize = 8_000;
const POOL: usize = 8;
const GLOBAL_SHARDS: usize = 4;
const PER_RUN_CHECK: usize = 16;
const PER_RUN_TIMED: usize = 48;

/// One fleet shape: node count and whether node 1 is killed mid-workload.
/// Shard slots are fixed so node 1 always owns shards {0,1} when it has
/// company (and everything when alone).
#[derive(Clone, Copy)]
struct FleetShape {
    nodes: usize,
    failover: bool,
}

const SHAPES: [FleetShape; 5] = [
    FleetShape {
        nodes: 1,
        failover: false,
    },
    FleetShape {
        nodes: 2,
        failover: false,
    },
    FleetShape {
        nodes: 2,
        failover: true,
    },
    FleetShape {
        nodes: 3,
        failover: false,
    },
    FleetShape {
        nodes: 3,
        failover: true,
    },
];

/// Slots per node id for a fleet of `nodes`: node 1 capped at 2 shards when
/// it has survivors to fail over to, the last node unlimited.
fn slots_for(nodes: usize) -> Vec<(u64, u32)> {
    match nodes {
        1 => vec![(1, 0)],
        2 => vec![(1, 2), (2, 0)],
        _ => vec![(1, 2), (2, 1), (3, 0)],
    }
}

fn clean_connector(dialer: MemoryDialer) -> Connector {
    Box::new(move |_ordinal| {
        let (reader, writer) = dialer.connect().split();
        Ok((Box::new(reader) as _, Box::new(writer) as _))
    })
}

/// Ordinal 0 dies after `budget` written bytes, every reconnect is dead on
/// arrival: a machine lost for good, deterministically.
fn doomed_connector(dialer: MemoryDialer, budget: u64, seed: u64) -> Connector {
    Box::new(move |ordinal| {
        let (reader, writer) = dialer.connect().split();
        let plan = FaultPlan {
            kill_after_bytes: Some(if ordinal == 0 { budget } else { 0 }),
            ..FaultPlan::healthy(seed.wrapping_add(ordinal))
        };
        let (r, w, _handle) = FaultyLink::wrap(Box::new(reader), Box::new(writer), plan);
        Ok((Box::new(r) as _, Box::new(w) as _))
    })
}

fn late_connector(slot: Arc<Mutex<Option<MemoryDialer>>>) -> Connector {
    Box::new(move |_ordinal| {
        let guard = slot.lock().unwrap();
        let dialer = guard
            .as_ref()
            .ok_or_else(|| std::io::Error::other("coordinator hub not up yet"))?;
        let (reader, writer) = dialer.connect().split();
        Ok((Box::new(reader) as _, Box::new(writer) as _))
    })
}

/// Round-robin placement: upload position `i` lands on shard
/// `i % GLOBAL_SHARDS`, so the per-node forward frame is computable exactly.
fn forward_len(indices: &[RankedDocumentIndex], shards: &[usize]) -> u64 {
    let slice: Vec<RankedDocumentIndex> = indices
        .iter()
        .enumerate()
        .filter(|(i, _)| shards.contains(&(i % GLOBAL_SHARDS)))
        .map(|(_, idx)| idx.clone())
        .collect();
    wire::encode_request(
        1,
        &Request::Upload(UploadMessage {
            indices: slice,
            documents: vec![],
        }),
    )
    .len() as u64
}

struct RunningFleet {
    hub: HubHandle,
    runners: Vec<NodeRunner>,
    telemetry: Telemetry,
}

/// Spawn the fleet, register every node, upload the corpus through the
/// coordinator. When `kill_budget` is set, node 1's data link dies after
/// that many bytes.
fn spawn_fleet(
    fixture: &BenchFixture,
    indices: &[RankedDocumentIndex],
    shape: FleetShape,
    kill_budget: Option<u64>,
    journal: bool,
    seed: u64,
) -> RunningFleet {
    let slot: Arc<Mutex<Option<MemoryDialer>>> = Arc::new(Mutex::new(None));
    let mut runners: Vec<NodeRunner> = slots_for(shape.nodes)
        .into_iter()
        .map(|(node_id, shard_slots)| {
            NodeRunner::spawn(
                fixture.params.clone(),
                NodeConfig {
                    node_id,
                    local_shards: 2,
                    capabilities: NodeCapabilities {
                        shard_slots,
                        scan_lanes: 2,
                        cache_capacity: 0,
                    },
                    ..NodeConfig::default()
                },
                late_connector(slot.clone()),
            )
        })
        .collect();
    let mut coordinator = Coordinator::new(
        fixture.params.clone(),
        FleetConfig {
            num_global_shards: GLOBAL_SHARDS,
            heartbeat_interval: Duration::from_millis(50),
            failure_deadline: Duration::from_secs(120),
            node_policy: RetryPolicy {
                max_attempts: 3,
                retry_non_idempotent: false,
                jitter_per_mille: 250,
                jitter_seed: seed,
                ..RetryPolicy::default()
            },
        },
    );
    for runner in &runners {
        let connector = match kill_budget {
            Some(budget) if runner.node_id() == 1 => {
                doomed_connector(runner.dialer(), budget, seed)
            }
            _ => clean_connector(runner.dialer()),
        };
        coordinator.add_node(runner.node_id(), connector);
    }
    let telemetry = coordinator.telemetry_handle();
    let hub = Hub::spawn(
        coordinator,
        HubConfig {
            batch_window: Duration::from_micros(200),
            batch_depth: 16,
            journal,
            ..HubConfig::default()
        },
    );
    *slot.lock().unwrap() = Some(hub.memory_dialer());
    for runner in runners.iter_mut() {
        runner.register().expect("registration");
    }
    let mut uploader =
        ResilientClient::new(clean_connector(hub.memory_dialer()), RetryPolicy::default())
            .with_first_request_id(9_000_001);
    let reply = uploader
        .call(&Request::Upload(UploadMessage {
            indices: indices.to_vec(),
            documents: vec![],
        }))
        .expect("seed upload");
    assert!(matches!(reply, Response::Uploaded { .. }));
    RunningFleet {
        hub,
        runners,
        telemetry,
    }
}

struct DriveOutcome {
    received: Vec<(u64, Response)>,
    stats: ResilienceStats,
    completed: u64,
}

/// One sequential client driving `per_run` queries through the coordinator.
fn drive(hub: &HubHandle, pool: &[QueryMessage], per_run: usize) -> DriveOutcome {
    let mut client = ResilientClient::new(
        clean_connector(hub.memory_dialer()),
        RetryPolicy {
            max_attempts: 24,
            retry_non_idempotent: false,
            jitter_per_mille: 250,
            jitter_seed: 0xF1EE7,
            ..RetryPolicy::default()
        },
    )
    .with_first_request_id(1_000_001);
    let mut received = Vec::with_capacity(per_run);
    for i in 0..per_run {
        let q = &pool[i % pool.len()];
        let (id, reply) = client
            .call_traced(&Request::Query(q.clone()))
            .expect("queries are idempotent and survive failover");
        received.push((id, reply));
    }
    let stats = client.stats();
    assert_eq!(
        stats.attempts,
        stats.successes + stats.sheds + stats.link_faults,
        "conservation law violated: {stats:?}"
    );
    DriveOutcome {
        completed: received.len() as u64,
        received,
        stats,
    }
}

fn bench_fleet(_c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--test");
    let filtered_out = std::env::args()
        .skip(1)
        .any(|a| !a.starts_with('-') && !"fig4b_fleet".contains(a.as_str()));
    if filtered_out {
        return;
    }
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let report = |id: &str, ns: f64| {
        if quick {
            println!("fig4b_fleet/{id}  ok (smoke run)");
        } else {
            println!("fig4b_fleet/{id}  time: {:.3} µs/completed query", ns / 1e3);
        }
    };

    let fixture = BenchFixture::new(FLEET_DOCS, 3, 11);
    let indexer = fixture.indexer();
    let indices = indexer.index_documents(&fixture.corpus.documents);
    let r = fixture.params.index_bits;
    let random_pool = fixture.keys.random_pool_trapdoors(&fixture.params);
    let mut rng = StdRng::seed_from_u64(41);
    let pool: Vec<QueryMessage> = fixture
        .query_keyword_pool(POOL)
        .iter()
        .map(|kws| {
            let kw_refs: Vec<&str> = kws.iter().map(|s| s.as_str()).collect();
            let trapdoors = fixture.keys.trapdoors_for(&fixture.params, &kw_refs);
            let q: QueryIndex = QueryBuilder::new(&fixture.params)
                .add_trapdoors(&trapdoors)
                .with_randomization(&random_pool)
                .build(&mut rng);
            QueryMessage {
                query: q.bits().clone(),
                top: Some(10),
            }
        })
        .collect();
    let q_len = wire::encode_request(1, &Request::Query(pool[0].clone())).len() as u64;
    // Node 1's kill budget: the seed-upload forward of its shards plus a
    // quarter of the workload's query frames, then mid-frame death.
    let budget_for = |per_run: usize, nodes: usize| {
        let shards: &[usize] = if nodes == 1 { &[0, 1, 2, 3] } else { &[0, 1] };
        forward_len(&indices, shards) + (per_run as u64 / 4) * q_len + q_len / 2
    };

    let mut entries: Vec<String> = Vec::new();
    for shape in SHAPES {
        // Equivalence before timing: journal the run, replay it sequentially
        // on a single-server twin, compare every completed reply.
        let kill = shape
            .failover
            .then(|| budget_for(PER_RUN_CHECK, shape.nodes));
        let fleet = spawn_fleet(&fixture, &indices, shape, kill, true, 0xA5);
        let checked = drive(&fleet.hub, &pool, PER_RUN_CHECK);
        assert_eq!(
            checked.completed, PER_RUN_CHECK as u64,
            "nodes={} failover={}: failover may cost attempts, never answers",
            shape.nodes, shape.failover
        );
        let snapshot = fleet.telemetry.snapshot();
        assert_eq!(
            snapshot.counter("failovers"),
            u64::from(shape.failover),
            "nodes={} failover={}: failover accounting",
            shape.nodes,
            shape.failover
        );
        let hub_report = fleet.hub.shutdown();
        assert_eq!(hub_report.sheds, 0, "no budget pressure in this sweep");
        let mut twin = CloudServer::with_shards(fixture.params.clone(), GLOBAL_SHARDS);
        let mut expected = BTreeMap::new();
        for entry in &hub_report.journal {
            if matches!(
                entry.request,
                Request::RegisterNode(_) | Request::NodeHeartbeat(_) | Request::MetricsSnapshot
            ) {
                continue;
            }
            expected.insert(entry.request_id, twin.call(entry.request.clone()));
        }
        for (id, reply) in &checked.received {
            assert_eq!(
                Some(reply),
                expected.get(id),
                "nodes={} failover={}: completed reply #{id} diverged from \
                 sequential Service::call",
                shape.nodes,
                shape.failover
            );
        }
        for runner in fleet.runners {
            runner.shutdown();
        }

        // Timed rounds: whole runs against fresh fleets (registration and
        // upload excluded), best round kept; cost is per completed query.
        let rounds = if quick { 1 } else { 5 };
        let per_run = if quick { 2 } else { PER_RUN_TIMED };
        let mut best = f64::MAX;
        let mut last_stats = ResilienceStats::default();
        let mut last_snapshot = None;
        for round in 0..rounds {
            let kill = shape.failover.then(|| budget_for(per_run, shape.nodes));
            let fleet = spawn_fleet(
                &fixture,
                &indices,
                shape,
                kill,
                false,
                0xBEEF + round as u64,
            );
            let start = Instant::now();
            let outcome = drive(&fleet.hub, &pool, per_run);
            let elapsed = start.elapsed().as_nanos() as f64;
            best = best.min(elapsed / outcome.completed.max(1) as f64);
            last_stats = outcome.stats;
            last_snapshot = Some(fleet.telemetry.snapshot());
            fleet.hub.shutdown();
            for runner in fleet.runners {
                runner.shutdown();
            }
        }
        let snapshot = last_snapshot.expect("at least one round");
        let ns = if quick { 0.0 } else { best };
        let mode = if shape.failover { "failover" } else { "steady" };
        report(&format!("{mode}/nodes_{}", shape.nodes), ns);
        entries.push(format!(
            "    {{\"nodes\": {}, \"failover\": {}, \"ns_per_completed\": {ns:.1}, \
             \"completed\": {per_run}, \"attempts\": {}, \"retries\": {}, \
             \"reconnects\": {}, \"link_faults\": {}, \"failovers\": {}, \
             \"shards_reassigned\": {}}}",
            shape.nodes,
            shape.failover,
            last_stats.attempts,
            last_stats.retries,
            last_stats.reconnects,
            last_stats.link_faults,
            snapshot.counter("failovers"),
            snapshot.counter("shards_reassigned"),
        ));
    }
    println!();

    if quick {
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"fig4b_fleet\",\n  \"docs\": {FLEET_DOCS},\n  \"r\": {r},\n  \
         \"eta\": {},\n  \"host_cores\": {host_cores},\n  \"global_shards\": {GLOBAL_SHARDS},\n  \
         \"queries_per_run\": {PER_RUN_TIMED},\n  \"query_frame_bytes\": {q_len},\n  \
         \"entries\": [\n{}\n  ]\n}}\n",
        fixture.params.rank_levels(),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    match std::fs::write(path, json) {
        Ok(()) => eprintln!("fig4b_fleet: wrote {path}"),
        Err(e) => eprintln!("fig4b_fleet: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
