//! # mkse-bench — Criterion benchmarks
//!
//! Shared fixtures for the Criterion benches that regenerate the paper's timing results:
//!
//! * `fig4a_index_construction` — Figure 4(a): per-corpus index-construction time at several
//!   corpus sizes and ranking depths, plus cached/parallel ablations.
//! * `fig4b_search` — Figure 4(b): server-side search time at several corpus sizes and
//!   ranking depths.
//! * `cao_comparison` — §8.1: per-document index construction and per-query search, MKSE vs
//!   the Cao et al. MRSE baseline.
//! * `crypto_primitives` — the substrate: long-output PRF, keyword-index derivation, AES-CTR
//!   document encryption, RSA blind decryption.
//! * `query_generation` — trapdoor computation and query building with and without
//!   randomization.
//!
//! The benches are intentionally smaller than the experiment binaries (Criterion repeats each
//! measurement many times); the full-scale sweeps live in `mkse-experiments`.

use mkse_core::{DocumentIndexer, SchemeKeys, SystemParams};
use mkse_textproc::corpus::{CorpusSpec, FrequencyModel, SyntheticCorpus};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A ready-to-bench deployment: parameters, keys, a corpus and its indexer.
pub struct BenchFixture {
    /// Scheme parameters.
    pub params: SystemParams,
    /// Owner key material.
    pub keys: SchemeKeys,
    /// The synthetic corpus (20 genuine keywords per document, paper workload).
    pub corpus: SyntheticCorpus,
}

impl BenchFixture {
    /// Build a fixture with `num_docs` documents and the given ranking depth.
    pub fn new(num_docs: usize, levels: usize, seed: u64) -> Self {
        let params = match levels {
            1 => SystemParams::without_ranking(),
            5 => SystemParams::with_five_levels(),
            _ => SystemParams::default(),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = SchemeKeys::generate(&params, &mut rng);
        let corpus = SyntheticCorpus::generate(
            &CorpusSpec {
                num_documents: num_docs,
                vocabulary_size: 25_000,
                keywords_per_document: 20,
                frequency_model: FrequencyModel::Uniform { lo: 1, hi: 15 },
            },
            &mut rng,
        );
        BenchFixture {
            params,
            keys,
            corpus,
        }
    }

    /// An indexer borrowing this fixture's parameters and keys.
    pub fn indexer(&self) -> DocumentIndexer<'_> {
        DocumentIndexer::new(&self.params, &self.keys)
    }

    /// Two query keywords guaranteed to co-occur in at least one document.
    pub fn query_keywords(&self) -> Vec<String> {
        self.corpus.documents[self.corpus.len() / 2]
            .keywords()
            .into_iter()
            .take(2)
            .map(|s| s.to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_consistent_state() {
        let fx = BenchFixture::new(10, 3, 1);
        assert_eq!(fx.corpus.len(), 10);
        assert_eq!(fx.params.rank_levels(), 3);
        assert_eq!(fx.query_keywords().len(), 2);
        let indexer = fx.indexer();
        let idx = indexer.index_document(&fx.corpus.documents[0]);
        assert_eq!(idx.num_levels(), 3);
    }

    #[test]
    fn fixture_levels_presets() {
        assert_eq!(BenchFixture::new(2, 1, 1).params.rank_levels(), 1);
        assert_eq!(BenchFixture::new(2, 5, 1).params.rank_levels(), 5);
    }
}
