//! # mkse-bench — Criterion benchmarks
//!
//! Shared fixtures for the Criterion benches that regenerate the paper's timing results:
//!
//! * `fig4a_index_construction` — Figure 4(a): per-corpus index-construction time at several
//!   corpus sizes and ranking depths, plus cached/parallel ablations.
//! * `fig4b_search` — Figure 4(b): server-side search time at several corpus sizes and
//!   ranking depths.
//! * `cao_comparison` — §8.1: per-document index construction and per-query search, MKSE vs
//!   the Cao et al. MRSE baseline.
//! * `crypto_primitives` — the substrate: long-output PRF, keyword-index derivation, AES-CTR
//!   document encryption, RSA blind decryption.
//! * `query_generation` — trapdoor computation and query building with and without
//!   randomization.
//!
//! The benches are intentionally smaller than the experiment binaries (Criterion repeats each
//! measurement many times); the full-scale sweeps live in `mkse-experiments`.

use mkse_core::{DocumentIndexer, SchemeKeys, SystemParams};
use mkse_textproc::corpus::{CorpusSpec, FrequencyModel, SyntheticCorpus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A ready-to-bench deployment: parameters, keys, a corpus and its indexer.
pub struct BenchFixture {
    /// Scheme parameters.
    pub params: SystemParams,
    /// Owner key material.
    pub keys: SchemeKeys,
    /// The synthetic corpus (20 genuine keywords per document, paper workload).
    pub corpus: SyntheticCorpus,
}

impl BenchFixture {
    /// Build a fixture with `num_docs` documents and the given ranking depth.
    pub fn new(num_docs: usize, levels: usize, seed: u64) -> Self {
        let params = match levels {
            1 => SystemParams::without_ranking(),
            5 => SystemParams::with_five_levels(),
            _ => SystemParams::default(),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = SchemeKeys::generate(&params, &mut rng);
        let corpus = SyntheticCorpus::generate(
            &CorpusSpec {
                num_documents: num_docs,
                vocabulary_size: 25_000,
                keywords_per_document: 20,
                frequency_model: FrequencyModel::Uniform { lo: 1, hi: 15 },
            },
            &mut rng,
        );
        BenchFixture {
            params,
            keys,
            corpus,
        }
    }

    /// An indexer borrowing this fixture's parameters and keys.
    pub fn indexer(&self) -> DocumentIndexer<'_> {
        DocumentIndexer::new(&self.params, &self.keys)
    }

    /// Query keyword pairs drawn from `count` **distinct** documents (capped at
    /// the corpus size), spread evenly across the corpus, so every query has at
    /// least one genuine match. Used as the query *pool* a skewed workload
    /// samples from.
    pub fn query_keyword_pool(&self, count: usize) -> Vec<Vec<String>> {
        assert!(!self.corpus.documents.is_empty(), "corpus is empty");
        let count = count.min(self.corpus.len()).max(1);
        let stride = self.corpus.len() / count;
        (0..count)
            .map(|i| {
                self.corpus.documents[i * stride]
                    .keywords()
                    .into_iter()
                    .take(2)
                    .map(|s| s.to_string())
                    .collect()
            })
            .collect()
    }

    /// Two query keywords guaranteed to co-occur in at least one document.
    pub fn query_keywords(&self) -> Vec<String> {
        self.corpus.documents[self.corpus.len() / 2]
            .keywords()
            .into_iter()
            .take(2)
            .map(|s| s.to_string())
            .collect()
    }
}

/// A deterministic Zipf-like sampler over a pool of `pool_size` items: item `i`
/// is drawn with probability proportional to `1 / (i + 1)^exponent`.
///
/// Real query traffic is heavily skewed — a few hot queries dominate — and this is
/// exactly the workload a result cache exists for. The sampler is driven by the
/// workspace's compat [`StdRng`] (xoshiro256++), so a fixed seed reproduces the
/// same request sequence on every host; note the stream differs from upstream
/// `rand`, so cross-check numbers against this repository only.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    /// Cumulative distribution over the pool, `cdf[last] == 1.0`.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build the sampler for a pool of `pool_size` items (must be non-zero) with
    /// skew `exponent` (1.0 is the classic Zipf; 0.0 degenerates to uniform).
    pub fn new(pool_size: usize, exponent: f64) -> Self {
        assert!(pool_size > 0, "pool must be non-empty");
        assert!(exponent >= 0.0, "negative skew is not meaningful");
        let mut cdf = Vec::with_capacity(pool_size);
        let mut total = 0.0;
        for i in 0..pool_size {
            total += 1.0 / ((i + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for weight in &mut cdf {
            *weight /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of items in the pool.
    pub fn pool_size(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one pool index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        // First index whose cumulative weight covers u.
        match self.cdf.binary_search_by(|w| w.partial_cmp(&u).unwrap()) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i,
        }
    }

    /// Draw a whole workload of `count` pool indices.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<usize> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_consistent_state() {
        let fx = BenchFixture::new(10, 3, 1);
        assert_eq!(fx.corpus.len(), 10);
        assert_eq!(fx.params.rank_levels(), 3);
        assert_eq!(fx.query_keywords().len(), 2);
        let indexer = fx.indexer();
        let idx = indexer.index_document(&fx.corpus.documents[0]);
        assert_eq!(idx.num_levels(), 3);
    }

    #[test]
    fn fixture_levels_presets() {
        assert_eq!(BenchFixture::new(2, 1, 1).params.rank_levels(), 1);
        assert_eq!(BenchFixture::new(2, 5, 1).params.rank_levels(), 5);
    }

    #[test]
    fn keyword_pool_yields_distinct_count() {
        let fx = BenchFixture::new(40, 3, 1);
        let pool = fx.query_keyword_pool(8);
        assert_eq!(pool.len(), 8);
        for kws in &pool {
            assert!(!kws.is_empty() && kws.len() <= 2);
        }
        // Requesting more pools than documents caps at one per document.
        assert_eq!(fx.query_keyword_pool(100).len(), 40);
    }

    #[test]
    fn zipf_sampler_is_deterministic_and_in_bounds() {
        let sampler = ZipfSampler::new(16, 1.0);
        assert_eq!(sampler.pool_size(), 16);
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let a = sampler.sample_many(&mut rng1, 500);
        let b = sampler.sample_many(&mut rng2, 500);
        assert_eq!(a, b, "same seed, same workload");
        assert!(a.iter().all(|&i| i < 16));
    }

    #[test]
    fn zipf_sampler_is_head_heavy() {
        let sampler = ZipfSampler::new(32, 1.1);
        let mut rng = StdRng::seed_from_u64(3);
        let draws = sampler.sample_many(&mut rng, 4_000);
        let head: usize = draws.iter().filter(|&&i| i < 4).count();
        let tail: usize = draws.iter().filter(|&&i| i >= 16).count();
        assert!(
            head > draws.len() / 3,
            "head of the distribution must dominate: {head}"
        );
        assert!(head > tail, "skew must favor early items: {head} vs {tail}");
        // Exponent 0 degenerates to uniform: the head takes roughly its share.
        let uniform = ZipfSampler::new(32, 0.0);
        let draws = uniform.sample_many(&mut rng, 4_000);
        let head: usize = draws.iter().filter(|&&i| i < 4).count();
        assert!((250..=750).contains(&head), "uniform head share: {head}");
    }
}
