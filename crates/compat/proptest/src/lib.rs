//! A minimal, offline property-testing harness exposing the subset of the `proptest`
//! API this workspace uses: the `proptest!` macro, `any::<T>()`, integer/float range
//! strategies, `collection::vec`, `sample::Index`, `ProptestConfig::with_cases`, and
//! the `prop_assert*` macros.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case panics with the
//! generated inputs' `Debug` representation, which (with the deterministic per-test
//! seed) is enough to reproduce and debug failures in this repository.

use rand::rngs::StdRng;
use rand::{RandomValue, SampleRange, SeedableRng};

pub mod collection;
pub mod sample;

/// How many cases each property runs, configurable per block via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A value generator. Implemented for primitive ranges, [`Any`], and
/// [`collection::VecStrategy`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f64);

/// Types with a canonical "uniform" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_random {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                <$t as RandomValue>::random_from(rng)
            }
        }
    )*};
}
impl_arbitrary_random!(bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f64);

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (uniform over the type's values).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A strategy producing a fixed value (upstream `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Deterministic per-test RNG used by the generated test bodies. Public for the
/// macro expansion; not part of the stable surface.
#[doc(hidden)]
pub fn __test_rng(name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[doc(hidden)]
pub fn __sample_f64_range(range: std::ops::Range<f64>, rng: &mut StdRng) -> f64 {
    range.sample_from(rng)
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// The property-test block macro. Accepts an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn name(bindings) { body }`
/// items whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::__test_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn ranges_and_any(x in 0u64..100, flag in any::<bool>(), f in 0.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert_eq!(flag, flag);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn sample_index_stays_in_bounds(
            ix in any::<crate::sample::Index>(),
            v in crate::collection::vec(0u32..10, 1..5),
        ) {
            let picked = *ix.get(&v);
            prop_assert!(picked < 10);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..5) {
            prop_assert!(x < 5);
        }
    }
}
