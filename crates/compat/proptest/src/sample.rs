//! Sampling helpers (`proptest::sample::Index`).

use crate::Arbitrary;
use rand::rngs::StdRng;
use rand::RandomValue;

/// An arbitrary index into a sequence whose length is only known at use time.
///
/// Generated via `any::<Index>()`; resolved against a concrete slice with
/// [`Index::get`] or [`Index::index`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    /// Resolve against a slice, returning a reference to the selected element.
    ///
    /// Panics on an empty slice (no valid index exists).
    pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }

    /// Resolve against a collection of `len` elements.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index into an empty collection");
        self.0 % len
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut StdRng) -> Self {
        Index(usize::random_from(rng))
    }
}
