//! Collection strategies (`proptest::collection::vec`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// A length specification: a fixed size or a half-open range of sizes.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = if self.size.hi - self.size.lo <= 1 {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector strategy with elements from `element` and length from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
