//! The standard generator: xoshiro256++ with SplitMix64 seeding.

use crate::{RngCore, SeedableRng};

/// A fast, high-quality, deterministic pseudo-random generator.
///
/// Not cryptographically secure; see the crate docs.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, public domain reference implementation).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_well_distributed() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ones = 0u32;
        for _ in 0..64 {
            ones += rng.next_u64().count_ones();
        }
        // 4096 bits total; expect about half set.
        assert!((1800..2300).contains(&ones), "got {ones}");
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            StdRng::seed_from_u64(1).next_u64(),
            StdRng::seed_from_u64(2).next_u64()
        );
    }
}
