//! Sequence helpers: in-place shuffling, element choice and distinct index sampling.

use crate::Rng;

/// Slice extension methods (`shuffle`, `choose`).
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements chosen uniformly without replacement (fewer when
    /// the slice is shorter than `amount`).
    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }

    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        index::sample(rng, self.len(), amount)
            .into_iter()
            .map(|i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }
}

/// Distinct-index sampling (`rand::seq::index`).
pub mod index {
    use super::*;

    /// A set of distinct indices into a sequence of a known length.
    #[derive(Clone, Debug)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// The sampled indices in selection order.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Iterate over the sampled indices.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.0.iter().copied()
        }

        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// `true` when no index was sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Sample `amount` distinct indices from `0..length`.
    ///
    /// Uses rejection sampling when `amount` is small relative to `length` (no
    /// `O(length)` pool allocation) and partial Fisher–Yates otherwise.
    ///
    /// Panics if `amount > length`, mirroring the upstream API.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "cannot sample {amount} distinct indices from 0..{length}"
        );
        if amount * 8 <= length {
            let mut seen = std::collections::HashSet::with_capacity(amount);
            let mut picked = Vec::with_capacity(amount);
            while picked.len() < amount {
                let candidate = (rng.next_u64() % length as u64) as usize;
                if seen.insert(candidate) {
                    picked.push(candidate);
                }
            }
            return IndexVec(picked);
        }
        let mut pool: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = i + (rng.next_u64() % (length - i) as u64) as usize;
            pool.swap(i, j);
        }
        pool.truncate(amount);
        IndexVec(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_returns_distinct_indices() {
        let mut rng = StdRng::seed_from_u64(4);
        let picked = index::sample(&mut rng, 60, 30);
        assert_eq!(picked.len(), 30);
        let mut v = picked.into_vec();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 30);
        assert!(v.iter().all(|&i| i < 60));
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([9u8].choose(&mut rng), Some(&9));
    }
}
