//! A self-contained, dependency-free subset of the `rand` crate API.
//!
//! This workspace builds in fully offline environments, so the handful of `rand`
//! entry points the codebase uses are provided here: [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), [`seq::SliceRandom`] and
//! [`seq::index::sample`]. Distribution quality is more than adequate for the
//! deterministic simulations and statistical experiments in this repository, but this
//! is **not** a cryptographic RNG — the scheme's key material security rests on the
//! HMAC/RSA layers, not on this generator.

pub mod rngs;
pub mod seq;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of `next_u64` by default).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be produced uniformly at random (the `Standard` distribution).
pub trait RandomValue {
    /// Draw one uniform value from `rng`.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl RandomValue for $t {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                // 128-bit types take two draws; everything else truncates one draw.
                const BITS: u32 = <$t>::BITS;
                if BITS > 64 {
                    let hi = rng.next_u64() as u128;
                    let lo = rng.next_u64() as u128;
                    ((hi << 64) | lo) as $t
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl RandomValue for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl RandomValue for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl RandomValue for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// A range that can be sampled uniformly (`Range` / `RangeInclusive` of primitives).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let offset = (rng.next_u64() as u128 | ((rng.next_u64() as u128) << 64)) % span;
                ((self.start as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u128 + 1;
                if span == 0 {
                    // Full-width 128-bit range: any draw is uniform.
                    return u128::random_from(rng) as $t;
                }
                let offset = (rng.next_u64() as u128 | ((rng.next_u64() as u128) << 64)) % span;
                ((start as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, u128 => u128, usize => u128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, i128 => i128, isize => i128
);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random_from(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::random_from(rng) * (end - start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::random_from(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn gen<T: RandomValue>(&mut self) -> T {
        T::random_from(self)
    }

    /// A uniform value drawn from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::random_from(self) < p
    }

    /// Fill `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Expand `state` into a full generator state (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.gen::<u128>(), b.gen::<u128>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let w: u32 = rng.gen_range(3..=3);
            assert_eq!(w, 3);
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
