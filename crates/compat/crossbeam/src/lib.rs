//! A `std::thread::scope`-backed subset of the `crossbeam` API.
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` / `ScopedJoinHandle::join` are
//! provided — exactly the surface the parallel indexing path uses. Since Rust 1.63
//! the standard library's scoped threads cover this, so the shim is a thin adapter
//! that keeps crossbeam's `Result`-returning signatures.

pub mod thread {
    use std::any::Any;

    /// Error payload of a panicked scope or thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope in which borrowed-data threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result or panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope itself so
        /// nested spawns are possible (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope; all threads spawned in it are joined before returning.
    ///
    /// Unlike a bare `std::thread::scope`, panics from threads whose handles were
    /// joined inside `f` do not tear down the caller — they surface through each
    /// handle's `join` result, and `scope` itself only errors if `f` panics are
    /// propagated by std (which this adapter converts into `Err`).
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn panics_surface_as_errors() {
        let result = crate::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join()
        })
        .unwrap();
        assert!(result.is_err());
    }
}
