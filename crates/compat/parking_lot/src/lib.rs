//! A `std::sync`-backed subset of the `parking_lot` API.
//!
//! Provides the panic-free `lock()` signature the workspace relies on; poisoning is
//! transparently ignored, matching parking_lot's semantics.

use std::sync::Mutex as StdMutex;

/// A mutex whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot mutexes cannot be poisoned).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1u32]);
        m.lock().push(2);
        assert_eq!(&*m.lock(), &[1, 2]);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn debug_formats() {
        let m = Mutex::new(7u8);
        assert!(format!("{m:?}").contains('7'));
    }
}
