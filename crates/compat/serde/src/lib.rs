//! Marker-trait subset of `serde` for offline builds.
//!
//! Every serialized format in this workspace is hand-rolled binary (the `MKSE` store
//! format, the protocol wire-size accounting), so `Serialize`/`Deserialize` act purely
//! as derive markers on types that are *conceptually* wire-safe. The traits are
//! blanket-implemented and the derive macros (re-exported from `serde_derive`) emit
//! nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker: the type has a well-defined serialized form.
pub trait Serialize {}

/// Marker: the type can be reconstructed from its serialized form.
pub trait Deserialize {}

impl<T: ?Sized> Serialize for T {}
impl<T: ?Sized> Deserialize for T {}
