//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace uses serde derives purely as interface markers — every on-disk and
//! on-wire format in this repository is hand-rolled (see `mkse_core::persistence` and
//! `mkse_protocol::messages`), so the derives don't need to generate code. The sibling
//! `serde` stub provides blanket trait impls; these macros only have to accept the
//! derive syntax (including `#[serde(...)]` field attributes) and emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
