//! A lightweight, dependency-free benchmark harness exposing the subset of the
//! Criterion API this workspace's benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, throughput, bench_function, bench_with_input,
//! finish}`, `Bencher::iter`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurements are wall-clock means over an adaptively chosen iteration count —
//! much cheaper than Criterion's full statistical machinery, but sufficient for the
//! relative comparisons (e.g. shard-count speedups) the benches report. Each
//! benchmark prints `<group>/<id>  time: <mean>` to stdout.
//!
//! Passing `--test` (as `cargo test` does for bench targets) runs each benchmark
//! once, so benches double as smoke tests.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (best-effort without inline asm).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation; recorded and echoed in the report line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, Criterion's composite id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just a parameter (Criterion's `from_parameter`).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            full: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the workload.
pub struct Bencher<'a> {
    mean_ns: &'a mut f64,
    quick: bool,
}

impl<'a> Bencher<'a> {
    /// Measure `routine`, storing the mean wall-clock time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.quick {
            black_box(routine());
            *self.mean_ns = 0.0;
            return;
        }
        // Warm-up and calibration: find an iteration count that runs ≥ ~50 ms.
        let mut iters: u64 = 1;
        let budget = Duration::from_millis(50);
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= budget || iters >= 1 << 20 {
                *self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            let scale = (budget.as_nanos() as f64 / elapsed.as_nanos().max(1) as f64).ceil();
            iters = (iters as f64 * scale.clamp(2.0, 100.0)) as u64;
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    quick: bool,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Criterion compatibility; the sample count is ignored (timing is adaptive).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut mean_ns = 0.0;
        f(&mut Bencher {
            mean_ns: &mut mean_ns,
            quick: self.quick,
        });
        self.report(&id.full, mean_ns);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        let mut mean_ns = 0.0;
        f(
            &mut Bencher {
                mean_ns: &mut mean_ns,
                quick: self.quick,
            },
            input,
        );
        self.report(&id.full, mean_ns);
        self
    }

    /// Finish the group (report separator).
    pub fn finish(&mut self) {
        if !self.quick {
            println!();
        }
    }

    fn report(&self, id: &str, mean_ns: f64) {
        if self.quick {
            println!("{}/{id}  ok (smoke run)", self.name);
            return;
        }
        let time = format_ns(mean_ns);
        match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                let per_sec = n as f64 * 1e9 / mean_ns;
                println!(
                    "{}/{id}  time: {time}  thrpt: {per_sec:.0} elem/s",
                    self.name
                );
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                let per_sec = n as f64 * 1e9 / mean_ns;
                println!(
                    "{}/{id}  time: {time}  thrpt: {:.1} MiB/s",
                    self.name,
                    per_sec / (1024.0 * 1024.0)
                );
            }
            _ => println!("{}/{id}  time: {time}", self.name),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The harness entry point.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs bench targets with `--test`: run every benchmark once as
        // a smoke test instead of timing it.
        let quick = std::env::args().any(|a| a == "--test");
        Criterion { quick }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            quick: self.quick,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        self.benchmark_group(id.full.clone()).bench_function("", f);
        self
    }
}

/// Declare a benchmark group function (Criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark binary's `main` (Criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut mean = 0.0;
        let mut b = Bencher {
            mean_ns: &mut mean,
            quick: false,
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(mean > 0.0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 10).full, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").full, "x");
    }

    #[test]
    fn format_scales() {
        assert!(format_ns(5.0).contains("ns"));
        assert!(format_ns(5e3).contains("µs"));
        assert!(format_ns(5e6).contains("ms"));
        assert!(format_ns(5e9).contains('s'));
    }
}
