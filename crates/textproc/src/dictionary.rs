//! Keyword dictionaries.
//!
//! Two baselines in this workspace need a global dictionary:
//!
//! * The Cao et al. MRSE baseline indexes every document as a binary vector over the whole
//!   dictionary (one coordinate per keyword), so it needs a stable keyword → position map.
//! * The brute-force attack of §4.1 enumerates "approximately 25 000 commonly used keywords";
//!   [`Dictionary::generate`] synthesizes a dictionary of any requested size for that
//!   experiment.
//!
//! The MKSE scheme itself deliberately does **not** need a dictionary — that is one of its
//! advantages over MRSE that §2 points out.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An ordered keyword dictionary with O(1) keyword → index lookup.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Dictionary {
    words: Vec<String>,
    positions: BTreeMap<String, usize>,
}

impl Dictionary {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a dictionary from an iterator of words; duplicates are ignored, first
    /// occurrence wins the position.
    pub fn from_words<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut dict = Self::new();
        for w in words {
            dict.insert(&w.into());
        }
        dict
    }

    /// Synthesize a dictionary of `size` distinct pronounceable-ish keywords (`kw00042`-style
    /// identifiers). Used by experiments that only care about dictionary *size*.
    pub fn generate(size: usize) -> Self {
        Self::from_words((0..size).map(|i| format!("kw{i:05}")))
    }

    /// Insert a word if absent; returns its position either way.
    pub fn insert(&mut self, word: &str) -> usize {
        if let Some(&pos) = self.positions.get(word) {
            return pos;
        }
        let pos = self.words.len();
        self.words.push(word.to_string());
        self.positions.insert(word.to_string(), pos);
        pos
    }

    /// Position of `word`, if present.
    pub fn position(&self, word: &str) -> Option<usize> {
        self.positions.get(word).copied()
    }

    /// Word at `position`, if in range.
    pub fn word(&self, position: usize) -> Option<&str> {
        self.words.get(position).map(|s| s.as_str())
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the dictionary has no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Returns `true` if `word` is present.
    pub fn contains(&self, word: &str) -> bool {
        self.positions.contains_key(word)
    }

    /// Iterate over all words in position order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.words.iter().map(|s| s.as_str())
    }

    /// Encode a set of keywords as a binary indicator vector over the dictionary (the MRSE
    /// index/query representation). Unknown keywords are ignored.
    pub fn indicator_vector(&self, keywords: &[&str]) -> Vec<f64> {
        let mut v = vec![0.0; self.len()];
        for kw in keywords {
            if let Some(pos) = self.position(kw) {
                v[pos] = 1.0;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut d = Dictionary::new();
        assert!(d.is_empty());
        let p0 = d.insert("cloud");
        let p1 = d.insert("privacy");
        let p0_again = d.insert("cloud");
        assert_eq!(p0, 0);
        assert_eq!(p1, 1);
        assert_eq!(p0_again, 0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.position("privacy"), Some(1));
        assert_eq!(d.position("absent"), None);
        assert_eq!(d.word(0), Some("cloud"));
        assert_eq!(d.word(9), None);
        assert!(d.contains("cloud"));
        assert!(!d.contains("absent"));
    }

    #[test]
    fn from_words_ignores_duplicates() {
        let d = Dictionary::from_words(["a", "b", "a", "c"]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec!["a", "b", "c"]);
    }

    #[test]
    fn generate_produces_distinct_words() {
        let d = Dictionary::generate(1000);
        assert_eq!(d.len(), 1000);
        assert!(d.contains("kw00000"));
        assert!(d.contains("kw00999"));
        assert!(!d.contains("kw01000"));
    }

    #[test]
    fn indicator_vector_marks_known_keywords() {
        let d = Dictionary::from_words(["alpha", "beta", "gamma"]);
        let v = d.indicator_vector(&["beta", "unknown", "alpha"]);
        assert_eq!(v, vec![1.0, 1.0, 0.0]);
        assert_eq!(d.indicator_vector(&[]), vec![0.0, 0.0, 0.0]);
    }
}
