//! Synthetic corpora.
//!
//! §8.1: "a synthetic database is created by assigning random keywords with random term
//! frequencies for each document". This module reproduces that methodology — plus the §5
//! ranking-quality workload, which needs controlled keyword overlap (a fixed number of
//! documents containing each queried keyword and a fixed number containing *all* of them).

use crate::dictionary::Dictionary;
use crate::document::{Document, TermFrequencies};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How term frequencies are drawn for each assigned keyword.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FrequencyModel {
    /// Every keyword occurs exactly once.
    Constant,
    /// Uniform in `[lo, hi]` (inclusive). The §5 experiment uses `[1, 15]`.
    Uniform { lo: u32, hi: u32 },
    /// Zipf-like: frequency `~ round(scale / rank^exponent)`, clamped to at least 1. Gives the
    /// realistic heavy-tailed distribution of natural-language text for the examples.
    Zipf { scale: f64, exponent: f64 },
}

impl FrequencyModel {
    fn sample<R: Rng + ?Sized>(&self, rank_in_doc: usize, rng: &mut R) -> u32 {
        match *self {
            FrequencyModel::Constant => 1,
            FrequencyModel::Uniform { lo, hi } => rng.gen_range(lo..=hi.max(lo)),
            FrequencyModel::Zipf { scale, exponent } => {
                let f = scale / ((rank_in_doc + 1) as f64).powf(exponent);
                f.round().max(1.0) as u32
            }
        }
    }
}

/// Specification of a synthetic corpus.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Number of documents to generate.
    pub num_documents: usize,
    /// Size of the genuine-keyword universe documents draw from.
    pub vocabulary_size: usize,
    /// Number of distinct genuine keywords per document (the paper's experiments use 10–40,
    /// with 20 as the reference point).
    pub keywords_per_document: usize,
    /// Term-frequency model for the assigned keywords.
    pub frequency_model: FrequencyModel,
}

impl Default for CorpusSpec {
    /// The reference workload of Figure 4: 20 genuine keywords per document drawn from a
    /// 25 000-word vocabulary (the paper's "commonly used keywords in English" figure), with
    /// uniform term frequencies in `[1, 15]`.
    fn default() -> Self {
        CorpusSpec {
            num_documents: 1000,
            vocabulary_size: 25_000,
            keywords_per_document: 20,
            frequency_model: FrequencyModel::Uniform { lo: 1, hi: 15 },
        }
    }
}

/// A generated corpus: documents plus the vocabulary they were drawn from.
#[derive(Clone, Debug)]
pub struct SyntheticCorpus {
    /// The generated documents.
    pub documents: Vec<Document>,
    /// The keyword universe (vocabulary) documents draw from.
    pub vocabulary: Dictionary,
}

impl SyntheticCorpus {
    /// Generate a corpus according to `spec`, deterministically under the supplied RNG.
    pub fn generate<R: Rng + ?Sized>(spec: &CorpusSpec, rng: &mut R) -> Self {
        assert!(
            spec.keywords_per_document <= spec.vocabulary_size,
            "cannot draw {} distinct keywords from a vocabulary of {}",
            spec.keywords_per_document,
            spec.vocabulary_size
        );
        let vocabulary = Dictionary::generate(spec.vocabulary_size);
        let all_positions: Vec<usize> = (0..spec.vocabulary_size).collect();
        let mut documents = Vec::with_capacity(spec.num_documents);
        for id in 0..spec.num_documents {
            let chosen: Vec<usize> = all_positions
                .choose_multiple(rng, spec.keywords_per_document)
                .copied()
                .collect();
            let mut tf = TermFrequencies::new();
            for (rank, pos) in chosen.iter().enumerate() {
                let word = vocabulary.word(*pos).expect("position is in range");
                tf.add_count(word, spec.frequency_model.sample(rank, rng));
            }
            documents.push(Document::from_terms(id as u64, tf));
        }
        SyntheticCorpus {
            documents,
            vocabulary,
        }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// True if the corpus has no documents.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// Sample `n` distinct keywords that occur in at least one document (useful for building
    /// honest queries).
    pub fn sample_present_keywords<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<String> {
        let mut present: Vec<String> = self
            .documents
            .iter()
            .flat_map(|d| d.terms.terms().into_iter().map(|s| s.to_string()))
            .collect();
        present.sort();
        present.dedup();
        present.shuffle(rng);
        present.truncate(n);
        present
    }

    /// The documents that contain *all* of `keywords` (ground truth for false-accept and
    /// precision experiments).
    pub fn documents_containing_all(&self, keywords: &[&str]) -> Vec<u64> {
        self.documents
            .iter()
            .filter(|d| keywords.iter().all(|k| d.terms.contains(k)))
            .map(|d| d.id)
            .collect()
    }
}

/// The §5 ranking-quality workload.
///
/// 1000 equal-length files; 3 searched keywords; each searched keyword appears in `f_t = 200`
/// documents; exactly 20 documents contain all three; term frequencies of the searched
/// keywords in those 20 documents are uniform in `[1, 15]`.
#[derive(Clone, Debug)]
pub struct RankingWorkload {
    /// The corpus (1000 documents by default).
    pub corpus: SyntheticCorpus,
    /// The three searched keywords.
    pub query_keywords: Vec<String>,
    /// The ids of the documents containing all searched keywords.
    pub full_match_ids: Vec<u64>,
    /// Document length |R| used by the Eq. 4 relevance score (equal for all files).
    pub document_length: u64,
}

impl RankingWorkload {
    /// Generate the workload with the paper's parameters.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::generate_with(rng, 1000, 3, 200, 20, (1, 15))
    }

    /// Generate a parameterized variant (the paper's values are
    /// `num_docs = 1000`, `num_query_keywords = 3`, `ft = 200`, `full_matches = 20`,
    /// `tf_range = (1, 15)`).
    pub fn generate_with<R: Rng + ?Sized>(
        rng: &mut R,
        num_docs: usize,
        num_query_keywords: usize,
        ft: usize,
        full_matches: usize,
        tf_range: (u32, u32),
    ) -> Self {
        assert!(full_matches <= ft && ft <= num_docs);
        let spec = CorpusSpec {
            num_documents: num_docs,
            vocabulary_size: 25_000,
            keywords_per_document: 20,
            frequency_model: FrequencyModel::Uniform { lo: 1, hi: 5 },
        };
        let mut corpus = SyntheticCorpus::generate(&spec, rng);

        // Reserve dedicated query keywords outside the random vocabulary draw.
        let query_keywords: Vec<String> = (0..num_query_keywords)
            .map(|i| format!("query-term-{i}"))
            .collect();

        // The first `full_matches` documents receive all query keywords; the remaining
        // `ft - full_matches` receive each keyword individually (disjointly across keywords
        // where possible) so every keyword ends up in exactly `ft` documents.
        let mut doc_ids: Vec<usize> = (0..num_docs).collect();
        doc_ids.shuffle(rng);
        let full_ids: Vec<usize> = doc_ids[..full_matches].to_vec();

        for &doc in &full_ids {
            for kw in &query_keywords {
                let tf = rng.gen_range(tf_range.0..=tf_range.1);
                corpus.documents[doc].terms.add_count(kw, tf);
            }
        }

        let mut cursor = full_matches;
        for kw in &query_keywords {
            let mut assigned = full_matches;
            while assigned < ft {
                let doc = doc_ids[cursor % num_docs];
                cursor += 1;
                // Skip documents that already contain every query keyword so the
                // full-match set stays exactly `full_matches`.
                if full_ids.contains(&doc) {
                    continue;
                }
                if corpus.documents[doc].terms.contains(kw) {
                    continue;
                }
                let tf = rng.gen_range(tf_range.0..=tf_range.1);
                corpus.documents[doc].terms.add_count(kw, tf);
                assigned += 1;
            }
        }

        // Equal document lengths, as the paper assumes ("1000 files of equal lengths").
        let document_length = 1000;

        let full_match_ids = full_ids.iter().map(|&d| d as u64).collect();
        RankingWorkload {
            corpus,
            query_keywords,
            full_match_ids,
            document_length,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generate_respects_spec() {
        let spec = CorpusSpec {
            num_documents: 50,
            vocabulary_size: 500,
            keywords_per_document: 10,
            frequency_model: FrequencyModel::Uniform { lo: 1, hi: 15 },
        };
        let mut rng = StdRng::seed_from_u64(1);
        let corpus = SyntheticCorpus::generate(&spec, &mut rng);
        assert_eq!(corpus.len(), 50);
        assert!(!corpus.is_empty());
        assert_eq!(corpus.vocabulary.len(), 500);
        for doc in &corpus.documents {
            assert_eq!(doc.terms.distinct_terms(), 10);
            for (_, count) in doc.terms.iter() {
                assert!((1..=15).contains(&count));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_under_a_seed() {
        let spec = CorpusSpec {
            num_documents: 20,
            vocabulary_size: 100,
            keywords_per_document: 5,
            frequency_model: FrequencyModel::Constant,
        };
        let a = SyntheticCorpus::generate(&spec, &mut StdRng::seed_from_u64(9));
        let b = SyntheticCorpus::generate(&spec, &mut StdRng::seed_from_u64(9));
        for (da, db) in a.documents.iter().zip(b.documents.iter()) {
            assert_eq!(da.terms, db.terms);
        }
    }

    #[test]
    fn constant_model_gives_unit_frequencies() {
        let spec = CorpusSpec {
            num_documents: 5,
            vocabulary_size: 50,
            keywords_per_document: 8,
            frequency_model: FrequencyModel::Constant,
        };
        let corpus = SyntheticCorpus::generate(&spec, &mut StdRng::seed_from_u64(2));
        for doc in &corpus.documents {
            for (_, c) in doc.terms.iter() {
                assert_eq!(c, 1);
            }
        }
    }

    #[test]
    fn zipf_model_is_heavy_tailed() {
        let model = FrequencyModel::Zipf {
            scale: 50.0,
            exponent: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let first = model.sample(0, &mut rng);
        let tenth = model.sample(9, &mut rng);
        assert!(first > tenth);
        assert!(tenth >= 1);
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn spec_with_too_many_keywords_panics() {
        let spec = CorpusSpec {
            num_documents: 1,
            vocabulary_size: 3,
            keywords_per_document: 10,
            frequency_model: FrequencyModel::Constant,
        };
        let _ = SyntheticCorpus::generate(&spec, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn sample_present_keywords_returns_indexed_terms() {
        let spec = CorpusSpec {
            num_documents: 10,
            vocabulary_size: 100,
            keywords_per_document: 5,
            frequency_model: FrequencyModel::Constant,
        };
        let corpus = SyntheticCorpus::generate(&spec, &mut StdRng::seed_from_u64(4));
        let mut rng = StdRng::seed_from_u64(5);
        let sample = corpus.sample_present_keywords(3, &mut rng);
        assert_eq!(sample.len(), 3);
        for kw in &sample {
            assert!(corpus.documents.iter().any(|d| d.terms.contains(kw)));
        }
    }

    #[test]
    fn documents_containing_all_is_exact() {
        let mut corpus = SyntheticCorpus::generate(
            &CorpusSpec {
                num_documents: 4,
                vocabulary_size: 10,
                keywords_per_document: 2,
                frequency_model: FrequencyModel::Constant,
            },
            &mut StdRng::seed_from_u64(6),
        );
        corpus.documents[1].terms.add("special");
        corpus.documents[1].terms.add("other");
        corpus.documents[3].terms.add("special");
        assert_eq!(
            corpus.documents_containing_all(&["special", "other"]),
            vec![1]
        );
        assert_eq!(corpus.documents_containing_all(&["special"]), vec![1, 3]);
        assert!(corpus.documents_containing_all(&["missing"]).is_empty());
    }

    #[test]
    fn ranking_workload_matches_paper_parameters() {
        let mut rng = StdRng::seed_from_u64(7);
        let wl = RankingWorkload::generate(&mut rng);
        assert_eq!(wl.corpus.len(), 1000);
        assert_eq!(wl.query_keywords.len(), 3);
        assert_eq!(wl.full_match_ids.len(), 20);

        // Each query keyword occurs in exactly ft = 200 documents.
        for kw in &wl.query_keywords {
            let count = wl
                .corpus
                .documents
                .iter()
                .filter(|d| d.terms.contains(kw))
                .count();
            assert_eq!(count, 200, "keyword {kw}");
        }
        // Exactly the designated documents contain all three.
        let kws: Vec<&str> = wl.query_keywords.iter().map(|s| s.as_str()).collect();
        let mut all = wl.corpus.documents_containing_all(&kws);
        all.sort_unstable();
        let mut expected = wl.full_match_ids.clone();
        expected.sort_unstable();
        assert_eq!(all, expected);
        // Term frequencies of query keywords in full matches are within [1, 15].
        for &id in &wl.full_match_ids {
            let doc = &wl.corpus.documents[id as usize];
            for kw in &wl.query_keywords {
                let tf = doc.terms.frequency(kw);
                assert!((1..=15).contains(&tf));
            }
        }
    }

    #[test]
    fn ranking_workload_small_variant() {
        let mut rng = StdRng::seed_from_u64(8);
        let wl = RankingWorkload::generate_with(&mut rng, 100, 2, 30, 5, (1, 10));
        assert_eq!(wl.corpus.len(), 100);
        assert_eq!(wl.full_match_ids.len(), 5);
        for kw in &wl.query_keywords {
            let count = wl
                .corpus
                .documents
                .iter()
                .filter(|d| d.terms.contains(kw))
                .count();
            assert_eq!(count, 30);
        }
    }
}
