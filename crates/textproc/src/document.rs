//! Documents and term frequencies.
//!
//! A [`Document`] is what the data owner indexes and encrypts: an identifier, a body (bytes),
//! and the term frequencies of its keywords. The ranking levels of §5 are derived from the
//! term frequencies, so [`TermFrequencies`] is the interface between text processing and the
//! ranked index builder in `mkse-core`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a document within a corpus.
pub type DocumentId = u64;

/// Term → occurrence-count map for one document.
///
/// Backed by a `BTreeMap` so iteration order (and therefore index generation) is
/// deterministic, which keeps experiments reproducible under a fixed RNG seed.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TermFrequencies {
    counts: BTreeMap<String, u32>,
}

impl TermFrequencies {
    /// Empty term-frequency table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(term, count)` pairs. Later duplicates accumulate.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, u32)>,
        S: Into<String>,
    {
        let mut tf = Self::new();
        for (term, count) in pairs {
            *tf.counts.entry(term.into()).or_insert(0) += count;
        }
        tf
    }

    /// Record one occurrence of `term`.
    pub fn add(&mut self, term: &str) {
        *self.counts.entry(term.to_string()).or_insert(0) += 1;
    }

    /// Record `count` occurrences of `term`.
    pub fn add_count(&mut self, term: &str, count: u32) {
        if count > 0 {
            *self.counts.entry(term.to_string()).or_insert(0) += count;
        }
    }

    /// Occurrences of `term` (0 if absent).
    pub fn frequency(&self, term: &str) -> u32 {
        self.counts.get(term).copied().unwrap_or(0)
    }

    /// Returns `true` if `term` occurs at least once.
    pub fn contains(&self, term: &str) -> bool {
        self.frequency(term) > 0
    }

    /// Number of distinct terms.
    pub fn distinct_terms(&self) -> usize {
        self.counts.len()
    }

    /// Total number of term occurrences (the document "length" |R| used by the relevance
    /// score of Eq. 4).
    pub fn total_terms(&self) -> u64 {
        self.counts.values().map(|&c| c as u64).sum()
    }

    /// Iterate over `(term, count)` pairs in lexicographic term order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.counts.iter().map(|(t, &c)| (t.as_str(), c))
    }

    /// All terms whose frequency is at least `threshold` (used to build the cumulative
    /// ranking levels of §5).
    pub fn terms_with_frequency_at_least(&self, threshold: u32) -> Vec<&str> {
        self.counts
            .iter()
            .filter(|(_, &c)| c >= threshold)
            .map(|(t, _)| t.as_str())
            .collect()
    }

    /// All distinct terms.
    pub fn terms(&self) -> Vec<&str> {
        self.counts.keys().map(|s| s.as_str()).collect()
    }
}

impl<S: Into<String>> FromIterator<(S, u32)> for TermFrequencies {
    fn from_iter<T: IntoIterator<Item = (S, u32)>>(iter: T) -> Self {
        Self::from_pairs(iter)
    }
}

/// A document as the data owner sees it before indexing/encryption.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    /// Corpus-unique identifier.
    pub id: DocumentId,
    /// Raw document body (what gets encrypted with the per-document symmetric key).
    pub body: Vec<u8>,
    /// Extracted term frequencies (what gets indexed).
    pub terms: TermFrequencies,
}

impl Document {
    /// Create a document from raw text, extracting keywords with the default pipeline.
    pub fn from_text(id: DocumentId, text: &str) -> Self {
        Document {
            id,
            body: text.as_bytes().to_vec(),
            terms: crate::extract_keywords(text),
        }
    }

    /// Create a document directly from term frequencies (synthetic corpora).
    pub fn from_terms(id: DocumentId, terms: TermFrequencies) -> Self {
        let body = format!("synthetic document {id}").into_bytes();
        Document { id, body, terms }
    }

    /// Document length in bytes.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// True if the body is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// The distinct keywords of this document.
    pub fn keywords(&self) -> Vec<&str> {
        self.terms.terms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_frequencies() {
        let mut tf = TermFrequencies::new();
        tf.add("cloud");
        tf.add("cloud");
        tf.add("privacy");
        tf.add_count("search", 5);
        tf.add_count("ignored", 0);
        assert_eq!(tf.frequency("cloud"), 2);
        assert_eq!(tf.frequency("privacy"), 1);
        assert_eq!(tf.frequency("search"), 5);
        assert_eq!(tf.frequency("absent"), 0);
        assert!(!tf.contains("ignored"));
        assert_eq!(tf.distinct_terms(), 3);
        assert_eq!(tf.total_terms(), 8);
    }

    #[test]
    fn from_pairs_accumulates_duplicates() {
        let tf = TermFrequencies::from_pairs([("a", 1), ("b", 2), ("a", 3)]);
        assert_eq!(tf.frequency("a"), 4);
        assert_eq!(tf.frequency("b"), 2);
    }

    #[test]
    fn frequency_thresholds() {
        let tf = TermFrequencies::from_pairs([("rare", 1), ("medium", 5), ("hot", 12)]);
        assert_eq!(tf.terms_with_frequency_at_least(1).len(), 3);
        assert_eq!(tf.terms_with_frequency_at_least(5), vec!["hot", "medium"]);
        assert_eq!(tf.terms_with_frequency_at_least(10), vec!["hot"]);
        assert!(tf.terms_with_frequency_at_least(100).is_empty());
    }

    #[test]
    fn iteration_is_sorted() {
        let tf = TermFrequencies::from_pairs([("zeta", 1), ("alpha", 2), ("mid", 3)]);
        let terms: Vec<&str> = tf.iter().map(|(t, _)| t).collect();
        assert_eq!(terms, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn document_from_text_extracts_keywords() {
        let doc = Document::from_text(7, "Encrypted cloud search with encrypted indices");
        assert_eq!(doc.id, 7);
        assert!(doc.terms.frequency("encrypt") >= 2);
        assert!(!doc.is_empty());
        assert!(!doc.is_empty());
        assert!(doc.keywords().len() >= 3);
    }

    #[test]
    fn document_from_terms_is_synthetic() {
        let doc = Document::from_terms(3, TermFrequencies::from_pairs([("kw1", 2)]));
        assert_eq!(doc.id, 3);
        assert!(doc.terms.contains("kw1"));
    }

    #[test]
    fn serde_round_trip() {
        let doc = Document::from_text(1, "cloud privacy");
        // serde with a self-describing in-memory format: use JSON-like round trip via serde
        // tokens is unavailable, so assert the Serialize/Deserialize impls exist by cloning
        // through the trait objects indirectly (compile-time check) and comparing equality.
        let cloned = doc.clone();
        assert_eq!(doc, cloned);
    }

    #[test]
    fn from_iterator_collects() {
        let tf: TermFrequencies = vec![("x", 1u32), ("y", 2u32)].into_iter().collect();
        assert_eq!(tf.distinct_terms(), 2);
    }
}
