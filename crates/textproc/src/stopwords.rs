//! English stop-word list.
//!
//! Stop words are excluded from search indices: they occur in virtually every document, so
//! indexing them would both waste index bits (every document index would AND away the same
//! positions) and inflate false-accept rates.

/// A compact list of the most common English stop words (lower case).
pub const STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Returns `true` if `word` (already lower-cased) is an English stop word.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_deduplicated() {
        // `is_stopword` relies on binary search, so the list must stay sorted and unique.
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, STOPWORDS);
    }

    #[test]
    fn common_stopwords_are_detected() {
        for w in ["the", "and", "is", "of", "a", "with"] {
            assert!(is_stopword(w), "{w}");
        }
    }

    #[test]
    fn content_words_are_not_stopwords() {
        for w in ["cloud", "privacy", "keyword", "encryption", "server"] {
            assert!(!is_stopword(w), "{w}");
        }
    }

    #[test]
    fn empty_string_is_not_a_stopword() {
        assert!(!is_stopword(""));
    }
}
