//! Porter stemmer (M.F. Porter, "An algorithm for suffix stripping", 1980).
//!
//! Stemming maps inflected forms onto a common keyword ("searching", "searched", "searches" →
//! "search") so that a document mentioning any form matches a query for the stem. The MKSE
//! scheme itself is agnostic to how keywords are produced; the stemmer lives here so the
//! example applications index real text the way a deployment would.

/// Returns `true` if the byte at `i` acts as a consonant in `word`.
fn is_consonant(word: &[u8], i: usize) -> bool {
    match word[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => {
            if i == 0 {
                true
            } else {
                !is_consonant(word, i - 1)
            }
        }
        _ => true,
    }
}

/// The "measure" m of the stem `word[..=j]`: the number of vowel-consonant sequences.
fn measure(word: &[u8], j: usize) -> usize {
    let mut n = 0;
    let mut i = 0;
    // Skip initial consonants.
    loop {
        if i > j {
            return n;
        }
        if !is_consonant(word, i) {
            break;
        }
        i += 1;
    }
    i += 1;
    loop {
        // Skip vowels.
        loop {
            if i > j {
                return n;
            }
            if is_consonant(word, i) {
                break;
            }
            i += 1;
        }
        i += 1;
        n += 1;
        // Skip consonants.
        loop {
            if i > j {
                return n;
            }
            if !is_consonant(word, i) {
                break;
            }
            i += 1;
        }
        i += 1;
    }
}

/// True if `word[..=j]` contains a vowel.
fn has_vowel(word: &[u8], j: usize) -> bool {
    (0..=j).any(|i| !is_consonant(word, i))
}

/// True if `word[..=j]` ends with a double consonant.
fn ends_double_consonant(word: &[u8], j: usize) -> bool {
    j >= 1 && word[j] == word[j - 1] && is_consonant(word, j)
}

/// True if `word[..=j]` ends consonant-vowel-consonant where the final consonant is not
/// `w`, `x` or `y` (the *o rule).
fn cvc(word: &[u8], j: usize) -> bool {
    if j < 2 || !is_consonant(word, j) || is_consonant(word, j - 1) || !is_consonant(word, j - 2) {
        return false;
    }
    !matches!(word[j], b'w' | b'x' | b'y')
}

fn ends_with(word: &[u8], end: usize, suffix: &[u8]) -> Option<usize> {
    // Returns the index of the last byte of the stem if word[..=end] ends with suffix.
    if suffix.len() > end + 1 {
        return None;
    }
    let start = end + 1 - suffix.len();
    if &word[start..=end] == suffix {
        if start == 0 {
            None // stem would be empty
        } else {
            Some(start - 1)
        }
    } else {
        None
    }
}

/// Apply the Porter stemming algorithm to a lower-case ASCII word.
///
/// Words shorter than three characters are returned unchanged, as in the original algorithm.
pub fn porter_stem(word: &str) -> String {
    let w = word.as_bytes();
    if w.len() <= 2 || !w.iter().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut b: Vec<u8> = w.to_vec();
    let mut k = b.len() - 1;

    // ----- Step 1a -----
    if b[k] == b's' {
        if let Some(j) = ends_with(&b, k, b"sses") {
            k = j + 2; // sses -> ss
        } else if let Some(j) = ends_with(&b, k, b"ies") {
            k = j + 1; // ies -> i
        } else if k >= 1 && b[k - 1] != b's' {
            k -= 1; // s -> ""
        }
    }

    // ----- Step 1b -----
    let mut extra_e = false;
    if let Some(j) = ends_with(&b, k, b"eed") {
        if measure(&b, j) > 0 {
            k -= 1; // eed -> ee
        }
    } else if let Some(j) = ends_with(&b, k, b"ed") {
        if has_vowel(&b, j) {
            k = j;
            extra_e = true;
        }
    } else if let Some(j) = ends_with(&b, k, b"ing") {
        if has_vowel(&b, j) {
            k = j;
            extra_e = true;
        }
    }
    if extra_e {
        if ends_with(&b, k, b"at").is_some()
            || ends_with(&b, k, b"bl").is_some()
            || ends_with(&b, k, b"iz").is_some()
        {
            k += 1;
            b[k] = b'e';
        } else if ends_double_consonant(&b, k) && !matches!(b[k], b'l' | b's' | b'z') {
            k -= 1;
        } else if measure(&b, k) == 1 && cvc(&b, k) {
            k += 1;
            b[k] = b'e';
        }
    }

    // ----- Step 1c -----
    if b[k] == b'y' && k >= 1 && has_vowel(&b, k - 1) {
        b[k] = b'i';
    }

    // ----- Step 2 -----
    let step2: &[(&[u8], &[u8])] = &[
        (b"ational", b"ate"),
        (b"tional", b"tion"),
        (b"enci", b"ence"),
        (b"anci", b"ance"),
        (b"izer", b"ize"),
        (b"abli", b"able"),
        (b"alli", b"al"),
        (b"entli", b"ent"),
        (b"eli", b"e"),
        (b"ousli", b"ous"),
        (b"ization", b"ize"),
        (b"ation", b"ate"),
        (b"ator", b"ate"),
        (b"alism", b"al"),
        (b"iveness", b"ive"),
        (b"fulness", b"ful"),
        (b"ousness", b"ous"),
        (b"aliti", b"al"),
        (b"iviti", b"ive"),
        (b"biliti", b"ble"),
    ];
    k = apply_rule_list(&mut b, k, step2, 0);

    // ----- Step 3 -----
    let step3: &[(&[u8], &[u8])] = &[
        (b"icate", b"ic"),
        (b"ative", b""),
        (b"alize", b"al"),
        (b"iciti", b"ic"),
        (b"ical", b"ic"),
        (b"ful", b""),
        (b"ness", b""),
    ];
    k = apply_rule_list(&mut b, k, step3, 0);

    // ----- Step 4 -----
    let step4: &[(&[u8], &[u8])] = &[
        (b"al", b""),
        (b"ance", b""),
        (b"ence", b""),
        (b"er", b""),
        (b"ic", b""),
        (b"able", b""),
        (b"ible", b""),
        (b"ant", b""),
        (b"ement", b""),
        (b"ment", b""),
        (b"ent", b""),
        (b"ou", b""),
        (b"ism", b""),
        (b"ate", b""),
        (b"iti", b""),
        (b"ous", b""),
        (b"ive", b""),
        (b"ize", b""),
    ];
    // Step 4 requires m > 1; "ion" additionally requires the stem to end in s or t.
    for (suffix, replacement) in step4 {
        if let Some(j) = ends_with(&b, k, suffix) {
            if measure(&b, j) > 1 {
                k = j;
                b.truncate(k + 1);
                b.extend_from_slice(replacement);
                k = b.len() - 1;
            }
            break;
        }
    }
    if let Some(j) = ends_with(&b, k, b"ion") {
        if measure(&b, j) > 1 && matches!(b[j], b's' | b't') {
            k = j;
        }
    }

    // ----- Step 5a -----
    if k > 0 && b[k] == b'e' {
        let m = measure(&b, k - 1);
        if m > 1 || (m == 1 && !cvc(&b, k - 1)) {
            k -= 1;
        }
    }
    // ----- Step 5b -----
    if b[k] == b'l' && ends_double_consonant(&b, k) && measure(&b, k) > 1 {
        k -= 1;
    }

    b.truncate(k + 1);
    String::from_utf8(b).expect("ASCII input remains ASCII")
}

/// Apply the first matching (suffix → replacement) rule whose stem has measure > `min_measure`.
fn apply_rule_list(
    b: &mut Vec<u8>,
    k: usize,
    rules: &[(&[u8], &[u8])],
    min_measure: usize,
) -> usize {
    for (suffix, replacement) in rules {
        if let Some(j) = ends_with(b, k, suffix) {
            if measure(b, j) > min_measure {
                b.truncate(j + 1);
                b.extend_from_slice(replacement);
                return b.len() - 1;
            }
            return k;
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_porter_examples() {
        // Examples from Porter's paper and the reference vocabulary.
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("formaliti", "formal"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(porter_stem(input), expected, "stem({input})");
        }
    }

    #[test]
    fn search_related_keywords_share_a_stem() {
        let stem = porter_stem("search");
        assert_eq!(porter_stem("searching"), stem);
        assert_eq!(porter_stem("searched"), stem);
        assert_eq!(porter_stem("searches"), stem);
    }

    #[test]
    fn short_words_are_unchanged() {
        assert_eq!(porter_stem("a"), "a");
        assert_eq!(porter_stem("is"), "is");
        assert_eq!(porter_stem("be"), "be");
    }

    #[test]
    fn non_lowercase_input_is_left_alone() {
        assert_eq!(porter_stem("Cloud"), "Cloud");
        assert_eq!(porter_stem("rsa1024"), "rsa1024");
    }

    #[test]
    fn idempotent_on_common_keywords() {
        for w in [
            "cloud", "privaci", "encrypt", "keyword", "server", "databas",
        ] {
            assert_eq!(porter_stem(&porter_stem(w)), porter_stem(w), "{w}");
        }
    }
}
