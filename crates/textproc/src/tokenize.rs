//! Tokenization: lower-casing, punctuation stripping, ASCII-alphanumeric word extraction.

/// Split raw text into lower-case alphanumeric tokens.
///
/// A token is a maximal run of ASCII letters or digits; everything else separates tokens.
/// Unicode letters outside ASCII are treated as separators — the paper's corpora are English
/// keyword sets, and keeping the rule simple makes the behaviour easy to reason about in the
/// index-generation pipeline.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_ascii_alphanumeric() {
            current.push(ch.to_ascii_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Tokenize and keep only tokens of at least `min_len` characters.
pub fn tokenize_min_len(text: &str, min_len: usize) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| t.len() >= min_len)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_whitespace_and_punctuation() {
        assert_eq!(
            tokenize("Hello, cloud-server! 42 times."),
            vec!["hello", "cloud", "server", "42", "times"]
        );
    }

    #[test]
    fn lowercases_everything() {
        assert_eq!(tokenize("PIR Protocol"), vec!["pir", "protocol"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("... !!! ---").is_empty());
    }

    #[test]
    fn non_ascii_is_a_separator() {
        assert_eq!(tokenize("naïve approach"), vec!["na", "ve", "approach"]);
    }

    #[test]
    fn numbers_are_tokens() {
        assert_eq!(tokenize("RSA-1024 modulus"), vec!["rsa", "1024", "modulus"]);
    }

    #[test]
    fn min_len_filter() {
        assert_eq!(
            tokenize_min_len("a an the keyword", 3),
            vec!["the", "keyword"]
        );
    }

    #[test]
    fn no_trailing_empty_token() {
        assert_eq!(tokenize("word"), vec!["word"]);
        assert_eq!(tokenize("word "), vec!["word"]);
    }
}
