//! # mkse-textproc — text processing and synthetic corpora
//!
//! The MKSE paper evaluates its scheme on a **synthetic database**: "a synthetic database is
//! created by assigning random keywords with random term frequencies for each document"
//! (§8.1). The paper also lists real-text evaluation as future work and keeps "analyzing a
//! document for finding the keywords in it" out of scope.
//!
//! This crate provides both sides:
//!
//! * [`corpus`] — the synthetic corpus generators used by every experiment binary (random
//!   keyword assignment with controlled overlaps, uniform or Zipf-distributed term
//!   frequencies, the §5 ranking-quality workload, and the §8.1 timing workloads).
//! * [`mod@tokenize`], [`stopwords`], [`stem`], [`document`], [`dictionary`] — a conventional
//!   keyword-extraction pipeline (tokenizer → stop-word filter → Porter stemmer → term
//!   frequencies) so the example applications can index real text through exactly the same
//!   public API that the synthetic experiments use.

pub mod corpus;
pub mod dictionary;
pub mod document;
pub mod stem;
pub mod stopwords;
pub mod tokenize;

pub use corpus::{CorpusSpec, SyntheticCorpus};
pub use dictionary::Dictionary;
pub use document::{Document, TermFrequencies};
pub use stem::porter_stem;
pub use stopwords::is_stopword;
pub use tokenize::tokenize;

/// Extract ranked keywords from raw text: tokenize, drop stop words, stem, count term
/// frequencies. This is the convenience entry point used by the examples.
///
/// ```
/// use mkse_textproc::extract_keywords;
/// let tf = extract_keywords("The cloud stores encrypted documents in the cloud.");
/// assert_eq!(tf.frequency("cloud"), 2);
/// assert_eq!(tf.frequency("the"), 0); // stop word
/// ```
pub fn extract_keywords(text: &str) -> TermFrequencies {
    let mut tf = TermFrequencies::new();
    for token in tokenize(text) {
        if is_stopword(&token) {
            continue;
        }
        let stemmed = porter_stem(&token);
        if stemmed.len() > 1 {
            tf.add(&stemmed);
        }
    }
    tf
}

/// Normalize a single query keyword the same way [`extract_keywords`] normalizes document
/// terms (lower-case, stemmed), so user queries and document indices agree on the keyword
/// vocabulary.
///
/// ```
/// use mkse_textproc::normalize_keyword;
/// assert_eq!(normalize_keyword("Privacy"), "privaci");
/// assert_eq!(normalize_keyword("searching"), "search");
/// ```
pub fn normalize_keyword(word: &str) -> String {
    let lowered = word.to_ascii_lowercase();
    porter_stem(&lowered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_keywords_filters_stopwords_and_counts() {
        let tf = extract_keywords("Privacy preserving search; the search is private.");
        assert!(tf.frequency("search") >= 2);
        assert_eq!(tf.frequency("the"), 0);
        assert_eq!(tf.frequency("is"), 0);
    }

    #[test]
    fn extract_keywords_empty_text() {
        let tf = extract_keywords("");
        assert_eq!(tf.total_terms(), 0);
    }

    #[test]
    fn extract_keywords_drops_single_letters() {
        let tf = extract_keywords("a b c keyword");
        assert_eq!(tf.distinct_terms(), 1);
    }

    #[test]
    fn normalize_keyword_matches_document_terms() {
        let tf = extract_keywords("Privacy preserving searches on encrypted clouds");
        for query_word in ["privacy", "Searching", "encrypted", "cloud"] {
            let normalized = normalize_keyword(query_word);
            assert!(
                tf.contains(&normalized),
                "query word {query_word} (normalized {normalized}) should hit an indexed term"
            );
        }
    }
}
