//! Exact equivalence of the plane-backed shard scan and the sequential reference.
//!
//! The scan plane is a pure layout change: for any document set (arbitrary bit
//! patterns, not just scheme-generated ones), any query — all-ones, all-zeros,
//! random, or a stored document's own base level — any index size `r` (multiples
//! of 64 and ragged tails alike) and any shard count, the plane-backed
//! [`SearchEngine`] must return **byte-identical** matches, ranks, order,
//! [`SearchStats`] and cache counters to the AoS reference scan of
//! [`CloudIndex`]. Inserts between queries must keep both the planes and the
//! result cache fresh, and a snapshot/restore cycle must rebuild the planes.
//!
//! This suite runs in **release mode on CI** (`cargo test --release -q -p
//! mkse-core scanplane`): the kernel is unrolled for the autovectorizer, and
//! masking/UB bugs in optimized builds must not be able to hide behind
//! debug-only testing.

use mkse_core::scanplane::CHUNK;
use mkse_core::{
    BitIndex, CacheConfig, CloudIndex, IndexStore, QueryIndex, RankedDocumentIndex, ScanPlane,
    ScanScheduler, SearchEngine, SystemParams, TelemetryLevel,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 16];

/// Minimal valid parameters for an arbitrary index size and level count — the
/// scan is a function of the stored bits alone, so nothing else matters here.
fn params_for(r: usize, eta: usize) -> SystemParams {
    SystemParams::new(r, 4, 16, 0, 0, (1..=eta as u32).collect()).expect("valid parameters")
}

fn random_bitindex(rng: &mut StdRng, len: usize, zero_prob: f64) -> BitIndex {
    let bits: Vec<bool> = (0..len)
        .map(|_| rng.gen_range(0.0..1.0) >= zero_prob)
        .collect();
    BitIndex::from_bits(&bits)
}

/// Random document indices with *dense-ones* levels so random queries genuinely
/// match some documents (an all-reject workload would not exercise rank walks).
fn random_docs(rng: &mut StdRng, n: usize, r: usize, eta: usize) -> Vec<RankedDocumentIndex> {
    (0..n)
        .map(|i| RankedDocumentIndex {
            document_id: 1000 + i as u64,
            levels: (0..eta).map(|_| random_bitindex(rng, r, 0.05)).collect(),
        })
        .collect()
}

/// A query workload covering the pruning extremes: sparse- and dense-zero random
/// queries, the all-ones query (every block pruned: zero active columns), the
/// all-zeros query (no block pruned), and one stored document's own base level
/// (guaranteed matches, deep rank walks).
fn query_workload(rng: &mut StdRng, r: usize, docs: &[RankedDocumentIndex]) -> Vec<QueryIndex> {
    let mut queries = vec![
        QueryIndex::from_bits(random_bitindex(rng, r, 0.02)),
        QueryIndex::from_bits(random_bitindex(rng, r, 0.3)),
        QueryIndex::from_bits(BitIndex::all_ones(r)),
        QueryIndex::from_bits(BitIndex::all_zeros(r)),
    ];
    if let Some(doc) = docs.first() {
        queries.push(QueryIndex::from_bits(doc.base_level().clone()));
    }
    queries
}

fn assert_engine_equals_reference<S: IndexStore>(
    engine: &SearchEngine<S>,
    reference: &CloudIndex,
    queries: &[QueryIndex],
    ctx: &str,
) {
    for (qi, query) in queries.iter().enumerate() {
        let (seq_matches, seq_stats) = reference.search_ranked_with_stats(query);
        let (par_matches, par_stats) = engine.search_ranked_with_stats(query);
        assert_eq!(
            par_matches, seq_matches,
            "ranked matches differ: {ctx}, query {qi}"
        );
        assert_eq!(par_stats, seq_stats, "stats differ: {ctx}, query {qi}");
        assert_eq!(
            engine.search_unranked(query),
            reference.search_unranked(query),
            "unranked order differs: {ctx}, query {qi}"
        );
        assert_eq!(
            engine.matching_metadata(query),
            reference.matching_metadata(query),
            "metadata differs: {ctx}, query {qi}"
        );
        assert_eq!(
            engine.search_top(query, 3),
            reference.search_top(query, 3),
            "top-k differs: {ctx}, query {qi}"
        );
    }
}

#[test]
fn scanplane_engine_is_byte_identical_to_reference_at_all_shard_counts() {
    let mut rng = StdRng::seed_from_u64(91);
    // r straddles block boundaries: 64 | r, ragged tails (r % 64 ∈ {1, 36}), and
    // the paper's 448; η covers the unranked and deep-ranking shapes.
    for &r in &[64usize, 65, 100, 448] {
        for &eta in &[1usize, 3] {
            let params = params_for(r, eta);
            let docs = random_docs(&mut rng, 61, r, eta);
            let queries = query_workload(&mut rng, r, &docs);
            let mut reference = CloudIndex::new(params.clone());
            reference.insert_all(docs.iter().cloned()).unwrap();

            for shards in SHARD_COUNTS {
                let mut engine = SearchEngine::sharded(params.clone(), shards);
                engine.insert_all(docs.iter().cloned()).unwrap();
                let ctx = format!("r={r}, eta={eta}, {shards} shards");
                assert_engine_equals_reference(&engine, &reference, &queries, &ctx);
            }
        }
    }
}

#[test]
fn scanplane_all_ones_and_all_zeros_queries_hit_pruning_extremes() {
    let mut rng = StdRng::seed_from_u64(92);
    let r = 100; // ragged tail: the phantom 28 bits must never reject or match
    let params = params_for(r, 2);
    let mut docs = random_docs(&mut rng, 33, r, 2);
    // An all-zero document is the only one the all-zeros query may match.
    docs.push(RankedDocumentIndex {
        document_id: 7,
        levels: vec![BitIndex::all_zeros(r), BitIndex::all_zeros(r)],
    });
    let mut reference = CloudIndex::new(params.clone());
    reference.insert_all(docs.iter().cloned()).unwrap();

    let all_ones = QueryIndex::from_bits(BitIndex::all_ones(r));
    let all_zeros = QueryIndex::from_bits(BitIndex::all_zeros(r));
    for shards in SHARD_COUNTS {
        let mut engine = SearchEngine::sharded(params.clone(), shards);
        engine.insert_all(docs.iter().cloned()).unwrap();

        let (matches, stats) = engine.search_ranked_with_stats(&all_ones);
        assert_eq!(
            (matches.clone(), stats),
            reference.search_ranked_with_stats(&all_ones),
            "{shards} shards, all-ones"
        );
        assert_eq!(matches.len(), docs.len(), "all-ones matches everything");
        assert!(matches.iter().all(|m| m.rank == 2), "and at the top rank");

        let (matches, stats) = engine.search_ranked_with_stats(&all_zeros);
        assert_eq!(
            (matches.clone(), stats),
            reference.search_ranked_with_stats(&all_zeros),
            "{shards} shards, all-zeros"
        );
        assert!(matches.iter().any(|m| m.document_id == 7));
    }
}

#[test]
fn scanplane_inserts_between_queries_keep_planes_and_cache_fresh() {
    let mut rng = StdRng::seed_from_u64(93);
    let r = 129; // two full blocks + 1-bit tail
    let params = params_for(r, 3);
    let docs = random_docs(&mut rng, 59, r, 3);
    let queries = query_workload(&mut rng, r, &docs);

    for shards in [1usize, 2, 7] {
        let mut reference = CloudIndex::new(params.clone());
        let mut engine =
            SearchEngine::sharded(params.clone(), shards).with_result_cache(CacheConfig::default());
        // Upload a chunk, query everything twice (cache admit + hit), repeat:
        // neither a stale plane nor a stale cache entry may survive an insert.
        for chunk in docs.chunks(13) {
            reference.insert_all(chunk.iter().cloned()).unwrap();
            engine.insert_all(chunk.iter().cloned()).unwrap();
            for pass in ["cold", "warm"] {
                let ctx = format!("{shards} shards, {} docs, {pass}", reference.len());
                assert_engine_equals_reference(&engine, &reference, &queries, &ctx);
            }
        }
        // Planes track their shards exactly.
        for shard in 0..engine.store().num_shards() {
            let plane = engine.store().scan_plane(shard).expect("plane maintained");
            assert_eq!(plane.len(), engine.store().shard_documents(shard).len());
        }
    }
}

#[test]
fn scanplane_snapshot_restore_rebuilds_planes() {
    let mut rng = StdRng::seed_from_u64(94);
    let r = 448;
    let params = params_for(r, 3);
    let docs = random_docs(&mut rng, 47, r, 3);
    let queries = query_workload(&mut rng, r, &docs);
    let mut reference = CloudIndex::new(params.clone());
    reference.insert_all(docs.iter().cloned()).unwrap();

    let mut original = SearchEngine::sharded(params.clone(), 5);
    original.insert_all(docs.iter().cloned()).unwrap();
    let bytes = original.snapshot();

    for shards in SHARD_COUNTS {
        let mut restored =
            SearchEngine::sharded(params.clone(), shards).with_result_cache(CacheConfig::default());
        assert_eq!(restored.restore_snapshot(&bytes).unwrap(), docs.len());
        // The snapshot carries no plane bytes; restore rebuilt them via insert.
        for shard in 0..restored.store().num_shards() {
            let plane = restored.store().scan_plane(shard).expect("plane rebuilt");
            let shard_docs = restored.store().shard_documents(shard);
            assert_eq!(
                plane.len(),
                shard_docs.len(),
                "{shards} shards, shard {shard}"
            );
            let ids: Vec<u64> = shard_docs.iter().map(|d| d.document_id).collect();
            assert_eq!(plane.ids(), &ids[..], "{shards} shards, shard {shard}");
        }
        let ctx = format!("restored into {shards} shards");
        assert_engine_equals_reference(&restored, &reference, &queries, &ctx);
    }
}

#[test]
fn scanplane_fused_batch_equals_sequential_engine_at_all_shard_counts() {
    // Engine-level fused-batch parity: for every shard count, with the cache off
    // and on (cold and warm), a batch containing duplicates and the pruning
    // extremes must reply exactly like the sequential reference answers each
    // query alone.
    let mut rng = StdRng::seed_from_u64(95);
    let r = 193; // three full blocks + 1-bit tail
    let params = params_for(r, 3);
    let docs = random_docs(&mut rng, 67, r, 3);
    let mut batch = query_workload(&mut rng, r, &docs);
    let dup = batch[0].clone();
    batch.push(dup); // intra-batch duplicate: deduped scan, identical reply
    let mut reference = CloudIndex::new(params.clone());
    reference.insert_all(docs.iter().cloned()).unwrap();

    for shards in SHARD_COUNTS {
        for cached in [false, true] {
            let mut engine = SearchEngine::sharded(params.clone(), shards);
            if cached {
                engine.enable_cache(CacheConfig::default());
            }
            engine.insert_all(docs.iter().cloned()).unwrap();
            for pass in ["cold", "warm"] {
                let batched = engine.search_batch_with_stats(&batch);
                for (qi, (query, (matches, stats))) in batch.iter().zip(&batched).enumerate() {
                    let (seq_matches, seq_stats) = reference.search_ranked_with_stats(query);
                    let ctx = format!("{shards} shards, cached={cached}, {pass}, query {qi}");
                    assert_eq!(matches, &seq_matches, "fused batch differs: {ctx}");
                    assert_eq!(stats, &seq_stats, "fused batch stats differ: {ctx}");
                }
            }
        }
    }
}

#[test]
fn scanplane_steal_scheduler_heavy_configs_are_byte_identical() {
    // The work-stealing scheduler's correctness oracle at scale: a corpus big
    // enough that every shard's plane splits into several chunk-range work
    // units, swept under every (shards × lanes × granularity) combination of
    // the runtime knobs, with the cache off and on — every reply, every stat
    // and every cache counter must match the sequential reference (and a
    // static-scheduler twin) byte for byte.
    let mut rng = StdRng::seed_from_u64(96);
    let r = 65; // ragged tail: 64 valid bits + 1
    let eta = 2;
    let params = params_for(r, eta);
    // ~2.3 chunks single-sharded; still multi-unit at granularity 1 after
    // sharding (and granularity 64 exceeds every plane: one unit per shard).
    let docs = random_docs(&mut rng, 2 * CHUNK + 321, r, eta);
    let queries = query_workload(&mut rng, r, &docs);
    let mut batch = queries.clone();
    batch.push(batch[0].clone()); // intra-batch duplicates ride along
    batch.push(batch[1].clone());
    let mut reference = CloudIndex::new(params.clone());
    reference.insert_all(docs.iter().cloned()).unwrap();
    let expected_batch: Vec<_> = batch
        .iter()
        .map(|q| reference.search_ranked_with_stats(q))
        .collect();

    for shards in SHARD_COUNTS {
        let mut engine = SearchEngine::sharded(params.clone(), shards);
        engine.insert_all(docs.iter().cloned()).unwrap();
        let mut cached =
            SearchEngine::sharded(params.clone(), shards).with_result_cache(CacheConfig::default());
        cached.insert_all(docs.iter().cloned()).unwrap();
        // A static-scheduler twin with the same cache config: sub-shard
        // execution must be invisible to the cache counters too.
        let mut static_cached = SearchEngine::sharded(params.clone(), shards)
            .with_scan_scheduler(ScanScheduler::Static)
            .with_result_cache(CacheConfig::default());
        static_cached.insert_all(docs.iter().cloned()).unwrap();
        assert_eq!(engine.scan_scheduler(), ScanScheduler::WorkStealing);

        for lanes in [1usize, 2, 3] {
            for granularity in [1usize, 8, 64] {
                engine.set_scan_lanes(lanes);
                engine.set_steal_granularity(granularity);
                let ctx = format!("{shards} shards, lanes={lanes}, g={granularity}");
                assert_engine_equals_reference(&engine, &reference, &queries, &ctx);
                assert_eq!(
                    engine.search_batch_with_stats(&batch),
                    expected_batch,
                    "fused batch differs: {ctx}"
                );

                cached.set_scan_lanes(lanes);
                cached.set_steal_granularity(granularity);
                cached.clear_cache();
                cached.reset_cache_stats();
                static_cached.set_scan_lanes(lanes);
                static_cached.clear_cache();
                static_cached.reset_cache_stats();
                for pass in ["cold", "warm"] {
                    assert_eq!(
                        cached.search_batch_with_stats(&batch),
                        expected_batch,
                        "cached fused batch differs: {ctx}, {pass}"
                    );
                    let _ = static_cached.search_batch_with_stats(&batch);
                }
                assert_eq!(
                    cached.cache_stats(),
                    static_cached.cache_stats(),
                    "cache counters must be scheduler-invisible: {ctx}"
                );
            }
        }
    }
}

#[test]
fn scanplane_telemetry_spans_are_invisible_to_every_reply_and_counter() {
    // The telemetry invariant (§6 note): the registry observes, it never
    // participates. An engine recording at `Spans` must return byte-identical
    // matches, ranks, stats and cache counters to an identical twin at `Off` —
    // across every shard count, lane count, cache config, and fused batches
    // with intra-batch duplicates. Only the registry itself may differ.
    let mut rng = StdRng::seed_from_u64(97);
    let r = 129; // two full blocks + 1-bit tail
    let eta = 2;
    let params = params_for(r, eta);
    let docs = random_docs(&mut rng, CHUNK + 173, r, eta);
    let queries = query_workload(&mut rng, r, &docs);
    let mut batch = queries.clone();
    batch.push(batch[0].clone()); // intra-batch duplicates ride along
    batch.push(batch[2].clone());
    let mut reference = CloudIndex::new(params.clone());
    reference.insert_all(docs.iter().cloned()).unwrap();

    for shards in SHARD_COUNTS {
        for cached in [false, true] {
            let build = || {
                let mut e = SearchEngine::sharded(params.clone(), shards);
                if cached {
                    e.enable_cache(CacheConfig::default());
                }
                e.insert_all(docs.iter().cloned()).unwrap();
                e
            };
            let mut off = build();
            let mut spans = build();
            spans.set_telemetry_level(TelemetryLevel::Spans);

            for lanes in [1usize, 2, 3] {
                off.set_scan_lanes(lanes);
                spans.set_scan_lanes(lanes);
                let ctx = format!("{shards} shards, lanes={lanes}, cached={cached}");
                // Both twins must also agree with the sequential reference —
                // "identical to each other but both wrong" is not equivalence.
                // (Run it on both so their cache states stay in lockstep.)
                assert_engine_equals_reference(&spans, &reference, &queries, &ctx);
                assert_engine_equals_reference(&off, &reference, &queries, &ctx);
                for (qi, query) in queries.iter().enumerate() {
                    assert_eq!(
                        spans.search_ranked_with_stats(query),
                        off.search_ranked_with_stats(query),
                        "spans vs off differ: {ctx}, query {qi}"
                    );
                }
                for pass in ["cold", "warm"] {
                    assert_eq!(
                        spans.search_batch_with_stats(&batch),
                        off.search_batch_with_stats(&batch),
                        "fused batch differs: {ctx}, {pass}"
                    );
                }
                if cached {
                    assert_eq!(
                        spans.cache_stats(),
                        off.cache_stats(),
                        "cache counters must be telemetry-invisible: {ctx}"
                    );
                }
            }
            // The observing twin did record: the registry is where the levels
            // are allowed to differ.
            if shards == SHARD_COUNTS[0] {
                let snap = spans.telemetry().snapshot();
                assert!(snap.counter("queries") > 0, "spans twin recorded queries");
                assert!(
                    snap.histograms.iter().any(|h| h.stage == "unit_scan"),
                    "spans twin recorded unit scans"
                );
                assert!(
                    off.telemetry().snapshot().histograms.is_empty(),
                    "off twin recorded nothing"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The core contract under arbitrary geometry and bit patterns: a plane built
    /// by incremental pushes scans exactly like the reference loop over the same
    /// slice, and the plane-backed 2-shard engine agrees with the reference
    /// index — including r values with ragged tails and degenerate stores.
    #[test]
    fn scanplane_prop_equivalence_on_arbitrary_workloads(
        seed in 0u64..1_000_000,
        r in 1usize..=200,
        eta in 1usize..=3,
        num_docs in 0usize..24,
        query_zero_prob in 0.0f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let docs: Vec<RankedDocumentIndex> = (0..num_docs)
            .map(|i| RankedDocumentIndex {
                document_id: i as u64,
                levels: (0..eta).map(|_| random_bitindex(&mut rng, r, 0.2)).collect(),
            })
            .collect();
        let query = QueryIndex::from_bits(random_bitindex(&mut rng, r, query_zero_prob));

        // Direct: plane vs the reference scan loop.
        let mut plane = ScanPlane::new();
        for d in &docs {
            plane.push(d);
        }
        let expected = mkse_core::search::scan_ranked(&docs, &query);
        prop_assert_eq!(plane.scan_ranked(query.bits()), expected);

        // Engine-level: plane-backed shards vs the AoS reference index.
        let params = params_for(r, eta);
        let mut reference = CloudIndex::new(params.clone());
        reference.insert_all(docs.iter().cloned()).unwrap();
        let mut engine = SearchEngine::sharded(params, 2);
        engine.insert_all(docs.iter().cloned()).unwrap();
        prop_assert_eq!(
            engine.search_ranked_with_stats(&query),
            reference.search_ranked_with_stats(&query)
        );
        prop_assert_eq!(engine.search_unranked(&query), reference.search_unranked(&query));
    }

    /// The fused-batch contract under arbitrary geometry: for any batch size in
    /// 1..=64 — with duplicate queries and the all-ones/all-zeros pruning
    /// extremes mixed in — `scan_ranked_batch` returns exactly what b
    /// independent `scan_ranked` calls return, and the engine's fused batch
    /// equals the reference answering each query alone, under any scheduler
    /// configuration (shard count, lane count, steal granularity, cache on or
    /// off).
    #[test]
    fn scanplane_prop_batch_equals_independent_scans(
        seed in 0u64..1_000_000,
        r in 1usize..=200,
        eta in 1usize..=3,
        num_docs in 0usize..24,
        batch_size in 1usize..=64,
        shards_idx in 0usize..4,
        lanes in 1usize..=3,
        granularity_idx in 0usize..3,
        cached in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let docs: Vec<RankedDocumentIndex> = (0..num_docs)
            .map(|i| RankedDocumentIndex {
                document_id: i as u64,
                levels: (0..eta).map(|_| random_bitindex(&mut rng, r, 0.2)).collect(),
            })
            .collect();
        let queries: Vec<BitIndex> = (0..batch_size)
            .map(|q| match q % 5 {
                // Duplicates of the first query land in the batch whenever
                // batch_size > 3, alongside both pruning extremes.
                0 => random_bitindex(&mut rng, r, 0.3),
                1 => BitIndex::all_ones(r),
                2 => BitIndex::all_zeros(r),
                _ => random_bitindex(&mut rng, r, 0.05),
            })
            .collect();
        let mut queries = queries;
        if batch_size > 3 {
            queries[3] = queries[0].clone();
        }

        let mut plane = ScanPlane::new();
        for d in &docs {
            plane.push(d);
        }
        let refs: Vec<&BitIndex> = queries.iter().collect();
        let batched = plane.scan_ranked_batch(&refs);
        prop_assert_eq!(batched.len(), queries.len());
        for (q, got) in queries.iter().zip(&batched) {
            prop_assert_eq!(got, &plane.scan_ranked(q));
        }

        // Engine-level: the fused batch vs the AoS reference, under an
        // arbitrary steal-heavy scheduler configuration.
        let shards = SHARD_COUNTS[shards_idx];
        let granularity = [1usize, 8, 64][granularity_idx];
        let params = params_for(r, eta);
        let mut reference = CloudIndex::new(params.clone());
        reference.insert_all(docs.iter().cloned()).unwrap();
        let mut engine = SearchEngine::sharded(params, shards)
            .with_scan_lanes(lanes)
            .with_steal_granularity(granularity);
        if cached {
            engine.enable_cache(CacheConfig::default());
        }
        engine.insert_all(docs.iter().cloned()).unwrap();
        let wrapped: Vec<QueryIndex> = queries.iter().cloned().map(QueryIndex::from_bits).collect();
        let engine_batch = engine.search_batch_with_stats(&wrapped);
        for (query, got) in wrapped.iter().zip(engine_batch) {
            prop_assert_eq!(got, reference.search_ranked_with_stats(query));
        }
    }
}
