//! The server-side **query-execution layer**: parallel ranked search over any
//! [`IndexStore`].
//!
//! [`SearchEngine`] executes the paper's oblivious matching (Eq. 3 + Algorithm 1)
//! shard-by-shard, scanning shards on parallel lanes (a persistent worker pool plus
//! the calling thread) when the store has more than one. Semantics are **bit-for-bit
//! identical** to the sequential reference scan ([`crate::search::CloudIndex`]):
//!
//! * per-shard scans run the exact same comparison loop (shared with the sequential
//!   path via [`crate::search::scan_ranked`]);
//! * merged ranked results are sorted by descending rank, ties broken by ascending
//!   document id — a total order, so the merged list is unique and equals the
//!   sequential sort;
//! * merged unranked results and metadata are re-ordered by insertion ordinal,
//!   reproducing the sequential "storage order" exactly;
//! * merged [`SearchStats`] are the field-wise sums of per-shard stats, which equal
//!   the sequential counts.
//!
//! Batched execution ([`SearchEngine::search_batch_with_stats`]) evaluates many
//! queries per shard-scan pass, so a multi-query round trip pays the thread fan-out
//! once instead of once per query.

use crate::bitindex::BitIndex;
use crate::document_index::RankedDocumentIndex;
use crate::params::SystemParams;
use crate::query::QueryIndex;
use crate::search::{scan_ranked, sort_matches, SearchMatch, SearchStats};
use crate::storage::{IndexStore, ShardedStore, StoreError, VecStore};

mod pool;
use pool::WorkerPool;

/// A pluggable, shard-parallel search engine over an [`IndexStore`].
///
/// Multi-shard engines keep a persistent [`WorkerPool`] (one parked thread per
/// scan lane, capped at the host's parallelism) for their whole lifetime: spawning
/// threads per query would cost more than scanning a 10⁴-document shard on some
/// hosts. Single-shard engines scan inline and carry no pool.
#[derive(Debug)]
pub struct SearchEngine<S: IndexStore> {
    store: S,
    pool: Option<WorkerPool>,
}

impl<S: IndexStore + Clone> Clone for SearchEngine<S> {
    fn clone(&self) -> Self {
        SearchEngine::new(self.store.clone())
    }
}

impl<S: IndexStore + Default> Default for SearchEngine<S> {
    fn default() -> Self {
        SearchEngine::new(S::default())
    }
}

impl SearchEngine<VecStore> {
    /// A sequential engine over a fresh single-shard store.
    pub fn sequential(params: SystemParams) -> Self {
        SearchEngine::new(VecStore::new(params))
    }
}

impl SearchEngine<ShardedStore> {
    /// A parallel engine over a fresh round-robin store with `num_shards` shards.
    pub fn sharded(params: SystemParams, num_shards: usize) -> Self {
        SearchEngine::new(ShardedStore::new(params, num_shards))
    }
}

impl<S: IndexStore> SearchEngine<S> {
    /// Run queries on an existing store. Stores with more than one shard get a
    /// persistent scan pool sized so that scan lanes (pool workers plus the calling
    /// thread, which always takes one lane) never exceed the host's cores — more
    /// busy threads than cores only adds scheduler thrash to a CPU-bound scan.
    pub fn new(store: S) -> Self {
        let shards = store.num_shards();
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let lanes = shards.min(cores);
        let pool = if lanes > 1 {
            Some(WorkerPool::new(lanes - 1))
        } else {
            None
        };
        SearchEngine { store, pool }
    }

    /// The underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the underlying store.
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Consume the engine, returning the store.
    pub fn into_store(self) -> S {
        self.store
    }

    /// The store's parameters.
    pub fn params(&self) -> &SystemParams {
        self.store.params()
    }

    /// Number of stored documents (σ).
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True if no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Upload one document index.
    pub fn insert(&mut self, index: RankedDocumentIndex) -> Result<(), StoreError> {
        self.store.insert(index)
    }

    /// Upload many document indices, stopping at the first invalid one.
    pub fn insert_all<I: IntoIterator<Item = RankedDocumentIndex>>(
        &mut self,
        indices: I,
    ) -> Result<(), StoreError> {
        self.store.insert_all(indices)
    }

    /// The stored index of one document (O(1) on map-backed stores).
    pub fn document_index(&self, document_id: u64) -> Option<&RankedDocumentIndex> {
        self.store.document_index(document_id)
    }

    /// Run `scan` once per shard — inline for single-shard stores, on the persistent
    /// worker pool otherwise. Results come back in shard order.
    fn map_shards<T, F>(&self, scan: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let shards = self.store.num_shards();
        let Some(pool) = &self.pool else {
            return (0..shards).map(scan).collect();
        };
        let lanes = (pool.workers() + 1).min(shards);
        let mut lane_results: Vec<Vec<(usize, T)>> = (0..lanes).map(|_| Vec::new()).collect();
        {
            let scan = &scan;
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = lane_results
                .iter_mut()
                .enumerate()
                .map(|(lane, out)| {
                    Box::new(move || {
                        let mut shard = lane;
                        while shard < shards {
                            out.push((shard, scan(shard)));
                            shard += lanes;
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(jobs);
        }
        let mut results: Vec<Option<T>> = (0..shards).map(|_| None).collect();
        for (shard, value) in lane_results.into_iter().flatten() {
            results[shard] = Some(value);
        }
        results
            .into_iter()
            .map(|r| r.expect("every shard was scanned"))
            .collect()
    }

    /// Scan every shard for documents whose level-1 index matches `query`, extract a
    /// value per match, and merge across shards in storage (insertion-ordinal)
    /// order. The single home of the ordinal-merge logic that makes parallel
    /// unranked results and metadata reproduce the sequential scan's order exactly.
    fn matching_in_storage_order<T, F>(&self, query: &QueryIndex, extract: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&RankedDocumentIndex) -> T + Sync,
    {
        let per_shard = self.map_shards(|shard| {
            self.store
                .shard_documents(shard)
                .iter()
                .enumerate()
                .filter(|(_, d)| d.base_level().matches_query(query.bits()))
                .map(|(slot, d)| (self.store.ordinal(shard, slot), extract(d)))
                .collect::<Vec<_>>()
        });
        let mut merged: Vec<(u64, T)> = per_shard.into_iter().flatten().collect();
        merged.sort_unstable_by_key(|(ordinal, _)| *ordinal);
        merged.into_iter().map(|(_, value)| value).collect()
    }

    /// Plain (unranked) oblivious search: ids of every document whose level-1 index
    /// matches, in storage (insertion) order — Eq. (3) across the database.
    pub fn search_unranked(&self, query: &QueryIndex) -> Vec<u64> {
        self.matching_in_storage_order(query, |d| d.document_id)
    }

    /// Ranked search (Algorithm 1) with execution statistics, merged across shards.
    pub fn search_ranked_with_stats(&self, query: &QueryIndex) -> (Vec<SearchMatch>, SearchStats) {
        let per_shard =
            self.map_shards(|shard| scan_ranked(self.store.shard_documents(shard), query));
        let mut matches = Vec::new();
        let mut stats = SearchStats::default();
        for (shard_matches, shard_stats) in per_shard {
            matches.extend(shard_matches);
            stats.merge(&shard_stats);
        }
        sort_matches(&mut matches);
        (matches, stats)
    }

    /// Ranked search without statistics.
    pub fn search(&self, query: &QueryIndex) -> Vec<SearchMatch> {
        self.search_ranked_with_stats(query).0
    }

    /// Ranked search returning only the top `tau` matches (§5).
    pub fn search_top(&self, query: &QueryIndex, tau: usize) -> Vec<SearchMatch> {
        let mut all = self.search(query);
        all.truncate(tau);
        all
    }

    /// Execute many queries in one pass: each shard is scanned once for the whole
    /// batch, and per-query results are merged exactly as in the single-query path.
    pub fn search_batch_with_stats(
        &self,
        queries: &[QueryIndex],
    ) -> Vec<(Vec<SearchMatch>, SearchStats)> {
        if queries.is_empty() {
            return Vec::new();
        }
        // per_shard[shard][query] = (matches, stats)
        let per_shard = self.map_shards(|shard| {
            let docs = self.store.shard_documents(shard);
            queries
                .iter()
                .map(|q| scan_ranked(docs, q))
                .collect::<Vec<_>>()
        });
        let mut merged: Vec<(Vec<SearchMatch>, SearchStats)> =
            (0..queries.len()).map(|_| Default::default()).collect();
        for shard_results in per_shard {
            for (q, (shard_matches, shard_stats)) in shard_results.into_iter().enumerate() {
                merged[q].0.extend(shard_matches);
                merged[q].1.merge(&shard_stats);
            }
        }
        for (matches, _) in &mut merged {
            sort_matches(matches);
        }
        merged
    }

    /// Batched ranked search without statistics.
    pub fn search_batch(&self, queries: &[QueryIndex]) -> Vec<Vec<SearchMatch>> {
        self.search_batch_with_stats(queries)
            .into_iter()
            .map(|(matches, _)| matches)
            .collect()
    }

    /// The per-level metadata of matching documents, in storage order (§4.3).
    pub fn matching_metadata(&self, query: &QueryIndex) -> Vec<(u64, Vec<BitIndex>)> {
        self.matching_in_storage_order(query, |d| (d.document_id, d.levels.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document_index::DocumentIndexer;
    use crate::keys::SchemeKeys;
    use crate::query::QueryBuilder;
    use crate::search::CloudIndex;
    use mkse_textproc::document::TermFrequencies;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        params: SystemParams,
        keys: SchemeKeys,
        rng: StdRng,
    }

    fn fixture() -> Fixture {
        let params = SystemParams::default();
        let mut rng = StdRng::seed_from_u64(123);
        let keys = SchemeKeys::generate(&params, &mut rng);
        Fixture { params, keys, rng }
    }

    fn corpus_indices(fx: &Fixture, n: u64) -> Vec<RankedDocumentIndex> {
        let indexer = DocumentIndexer::new(&fx.params, &fx.keys);
        (0..n)
            .map(|id| {
                let tf = TermFrequencies::from_pairs([
                    (format!("kw{}", id % 7), 1 + (id as u32 % 12)),
                    ("shared".to_string(), 1 + (id as u32 % 11)),
                ]);
                indexer.index_terms(id, &tf)
            })
            .collect()
    }

    fn query(fx: &mut Fixture, keywords: &[&str]) -> QueryIndex {
        let tds = fx.keys.trapdoors_for(&fx.params, keywords);
        QueryBuilder::new(&fx.params)
            .add_trapdoors(&tds)
            .build(&mut fx.rng)
    }

    #[test]
    fn sharded_engine_matches_sequential_reference() {
        let mut fx = fixture();
        let indices = corpus_indices(&fx, 40);
        let mut reference = CloudIndex::new(fx.params.clone());
        reference.insert_all(indices.iter().cloned()).unwrap();
        let q = query(&mut fx, &["shared"]);
        let (seq_matches, seq_stats) = reference.search_ranked_with_stats(&q);

        for shards in [1usize, 2, 3, 8] {
            let mut engine = SearchEngine::sharded(fx.params.clone(), shards);
            engine.insert_all(indices.iter().cloned()).unwrap();
            let (matches, stats) = engine.search_ranked_with_stats(&q);
            assert_eq!(matches, seq_matches, "ranked mismatch at {shards} shards");
            assert_eq!(stats, seq_stats, "stats mismatch at {shards} shards");
            assert_eq!(
                engine.search_unranked(&q),
                reference.search_unranked(&q),
                "unranked mismatch at {shards} shards"
            );
            assert_eq!(
                engine.matching_metadata(&q),
                reference.matching_metadata(&q),
                "metadata mismatch at {shards} shards"
            );
        }
    }

    #[test]
    fn batch_results_equal_single_query_results() {
        let mut fx = fixture();
        let indices = corpus_indices(&fx, 30);
        let mut engine = SearchEngine::sharded(fx.params.clone(), 4);
        engine.insert_all(indices).unwrap();
        let queries = vec![
            query(&mut fx, &["shared"]),
            query(&mut fx, &["kw3"]),
            query(&mut fx, &["kw5", "shared"]),
        ];
        let batched = engine.search_batch_with_stats(&queries);
        assert_eq!(batched.len(), 3);
        for (q, (matches, stats)) in queries.iter().zip(batched.iter()) {
            let (single_matches, single_stats) = engine.search_ranked_with_stats(q);
            assert_eq!(matches, &single_matches);
            assert_eq!(stats, &single_stats);
        }
        assert!(engine.search_batch(&[]).is_empty());
    }

    #[test]
    fn top_k_truncates_merged_ranking() {
        let mut fx = fixture();
        let indices = corpus_indices(&fx, 25);
        let mut engine = SearchEngine::sharded(fx.params.clone(), 3);
        engine.insert_all(indices).unwrap();
        let q = query(&mut fx, &["shared"]);
        let all = engine.search(&q);
        let top = engine.search_top(&q, 4);
        assert_eq!(top.len(), 4.min(all.len()));
        assert_eq!(&all[..top.len()], &top[..]);
        for w in all.windows(2) {
            assert!(
                w[0].rank > w[1].rank
                    || (w[0].rank == w[1].rank && w[0].document_id < w[1].document_id)
            );
        }
    }

    #[test]
    fn empty_engine_returns_nothing() {
        let mut fx = fixture();
        let engine = SearchEngine::sharded(fx.params.clone(), 4);
        assert!(engine.is_empty());
        assert_eq!(engine.len(), 0);
        let q = query(&mut fx, &["anything"]);
        assert!(engine.search(&q).is_empty());
        assert!(engine.search_unranked(&q).is_empty());
        assert!(engine.document_index(0).is_none());
    }

    #[test]
    fn sequential_constructor_runs_on_vec_store() {
        let mut fx = fixture();
        let mut engine = SearchEngine::sequential(fx.params.clone());
        let indexer = DocumentIndexer::new(&fx.params, &fx.keys);
        engine.insert(indexer.index_keywords(0, &["kw0"])).unwrap();
        assert_eq!(engine.store().num_shards(), 1);
        let q = query(&mut fx, &["kw0"]);
        assert_eq!(engine.search_unranked(&q), vec![0]);
        assert_eq!(engine.params().index_bits, 448);
        assert_eq!(engine.into_store().len(), 1);
    }
}
