//! The server-side **query-execution layer**: parallel ranked search over any
//! [`IndexStore`], with an optional per-shard result cache.
//!
//! [`SearchEngine`] executes the paper's oblivious matching (Eq. 3 + Algorithm 1)
//! shard-by-shard, scanning shards on parallel lanes (a persistent worker pool plus
//! the calling thread) when the store has more than one. Semantics are **bit-for-bit
//! identical** to the sequential reference scan ([`crate::search::CloudIndex`]):
//!
//! * per-shard scans sweep the store's block-major [`crate::scanplane::ScanPlane`]
//!   when one is maintained (both built-in stores) — contiguous, query-pruned
//!   columns instead of per-document pointer chasing — and fall back to the
//!   sequential path's [`crate::search::scan_ranked`] loop otherwise; both produce
//!   identical matches, scan order and [`SearchStats`] (r-bit comparison counts
//!   are unchanged: block pruning happens *inside* one r-bit comparison);
//! * merged ranked results are sorted by descending rank, ties broken by ascending
//!   document id — a total order, so the merged list is unique and equals the
//!   sequential sort;
//! * merged unranked results and metadata are re-ordered by insertion ordinal,
//!   reproducing the sequential "storage order" exactly;
//! * merged [`SearchStats`] are the field-wise sums of per-shard stats, which equal
//!   the sequential counts.
//!
//! ## Scheduling: work-stealing over chunk ranges
//!
//! Parallelism is a property of the **executor**, not the data layout. By
//! default the engine runs the [`ScanScheduler::WorkStealing`] scheduler: every
//! selected shard's scan plane is carved into fixed-size chunk-range work units
//! ([`SearchEngine::steal_granularity`] chunks of [`crate::scanplane::CHUNK`]
//! documents each), the units are dealt contiguously onto the engine's scan
//! lanes, and a lane that drains its own deal **steals** units from the tail of
//! another lane's — so an oversharded store (more shards than lanes) degrades
//! to the balanced schedule instead of serializing whole shards behind one
//! lane, and a host with more lanes than shards splits single shards across
//! lanes instead of idling. Stitching is deterministic: every unit writes into
//! its pre-assigned result slot, a shard's unit results concatenate in chunk
//! (slot) order and its stats sum, so replies, [`SearchStats`] and cache
//! traffic are byte-identical to sequential execution no matter which lane ran
//! which unit. [`ScanScheduler::Static`] — the original shard-per-lane fan-out
//! — remains selectable, and is the automatic fallback for stores without a
//! scan plane and for a single effective lane (with nobody to steal from,
//! unit dispatch is pure overhead — one lane scans whole shards). The cache is
//! scheduler-invisible either way: lookups and admissions happen per whole
//! shard, on the stitched per-shard results.
//!
//! Batched execution ([`SearchEngine::search_batch_with_stats`]) evaluates many
//! queries per shard-scan pass: each shard worker receives the whole (cache-missed,
//! intra-batch-deduplicated) query set and makes **one fused pass** over the
//! shard's scan plane ([`crate::scanplane::ScanPlane::scan_ranked_batch`]), so a
//! b-query round trip streams each arena once instead of b times *and* pays the
//! thread fan-out once instead of once per query. Queries with identical
//! [`QueryFingerprint`]s inside one batch are scanned once and fanned out to every
//! duplicate position; with the cache enabled the duplicates are resolved through
//! real cache lookups against what the first occurrence admitted — exactly the
//! hits sequential execution would produce, counted in the same
//! [`CacheEffect`]/[`CacheStats`] counters.
//!
//! ## The result cache
//!
//! With [`SearchEngine::enable_cache`] (or [`SearchEngine::with_result_cache`]) the
//! engine memoizes **per-shard scan results** in a [`ResultCache`], keyed by a
//! [`crate::cache::QueryFingerprint`] of the query bits. On a repeated query the
//! shard scan is skipped entirely for every shard that hits; missed shards are
//! scanned (in parallel, as usual) and admitted. Cached and uncached execution are
//! byte-identical — cached entries hold exactly what the scan returned, including
//! the per-shard [`SearchStats`], and flow through the same merge — so enabling the
//! cache changes wall-clock time and *actual* comparisons performed, never results.
//! Inserts bump only the written shard's generation (see [`crate::cache`]);
//! [`SearchEngine::store_mut`] and [`SearchEngine::restore_snapshot`] conservatively
//! invalidate every shard, so no stale entry survives a reload.

use crate::bitindex::BitIndex;
use crate::cache::{
    CacheConfig, CacheEffect, CacheStats, QueryFingerprint, RankingMode, ResultCache,
};
use crate::document_index::RankedDocumentIndex;
use crate::params::SystemParams;
use crate::persistence::PersistenceError;
use crate::query::QueryIndex;
use crate::search::{scan_ranked, sort_matches, SearchMatch, SearchStats};
use crate::storage::{IndexStore, ShardedStore, StoreError, VecStore};
use crate::telemetry::{
    Counter, Gauge, LaneStats, MetricsSnapshot, Stage, Telemetry, TelemetryLevel,
};
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

mod pool;
use pool::{StealDeques, WorkerPool};

/// One shard's ranked-scan output: scan-order matches plus the shard's stats —
/// exactly what [`scan_ranked`] returns and what the cache memoizes.
type ShardScan = (Vec<SearchMatch>, SearchStats);

/// How the engine schedules shard scans onto its lanes (see the
/// [module docs](self)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScanScheduler {
    /// Whole shards dealt round-robin onto lanes — one lane sweeps a shard end
    /// to end. Predictable, but an oversharded store serializes its surplus
    /// shards behind busy lanes, and a single-shard store can never use more
    /// than one lane.
    Static,
    /// Chunk-range work units on per-lane deques with tail stealing (the
    /// default): load-balances across lanes at [`SearchEngine::steal_granularity`]
    /// granularity while producing byte-identical results. Falls back to
    /// [`ScanScheduler::Static`] for stores without a scan plane.
    #[default]
    WorkStealing,
}

/// Default chunks per work unit: 8 × [`crate::scanplane::CHUNK`] = 8192
/// documents — a few tens of microseconds of sweeping, coarse enough that
/// deque traffic is noise yet fine enough to balance shards across lanes.
const DEFAULT_STEAL_GRANULARITY: usize = 8;

/// One work unit of the stealing scheduler: a chunk range of one selected
/// shard's plane. `pos` indexes the *selection* (result slot), not the store.
struct ChunkUnit {
    pos: usize,
    shard: usize,
    chunks: std::ops::Range<usize>,
}

/// A pluggable, shard-parallel search engine over an [`IndexStore`].
///
/// Multi-shard engines keep a persistent worker pool (one parked thread per
/// scan lane, capped at the host's parallelism) for their whole lifetime: spawning
/// threads per query would cost more than scanning a 10⁴-document shard on some
/// hosts. Single-shard engines scan inline and carry no pool.
#[derive(Debug)]
pub struct SearchEngine<S: IndexStore> {
    store: S,
    pool: Option<WorkerPool>,
    /// Scan lanes (pool workers + the calling thread). Always `1..=cores`;
    /// `pool` is `Some` iff `lanes > 1`.
    lanes: usize,
    scheduler: ScanScheduler,
    /// Chunks per work-stealing unit (≥ 1).
    steal_granularity: usize,
    /// The optional per-shard result cache. Interior mutability because searches
    /// take `&self` (and must be able to run concurrently from many sessions);
    /// all cache access happens on the calling thread, never inside scan jobs.
    cache: Option<Mutex<ResultCache>>,
    /// The lock-free metrics registry (see [`crate::telemetry`]). Observation
    /// only: nothing in the search path reads it back, so replies, stats and
    /// cache counters are byte-identical at every [`TelemetryLevel`].
    telemetry: Telemetry,
}

impl<S: IndexStore + Clone> Clone for SearchEngine<S> {
    fn clone(&self) -> Self {
        let mut engine = SearchEngine::new(self.store.clone());
        engine.set_scan_lanes(self.lanes);
        engine.scheduler = self.scheduler;
        engine.steal_granularity = self.steal_granularity;
        // The clone keeps the cache *configuration* but starts with an empty
        // cache: entries are cheap to recompute and a fresh engine should not
        // carry another engine's LRU history.
        if let Some(cache) = &self.cache {
            engine.enable_cache(cache.lock().unwrap().config());
        }
        // The clone keeps the telemetry *level* but gets a fresh registry:
        // recorded values describe the original engine's traffic, not the
        // clone's.
        engine.telemetry.set_level(self.telemetry.level());
        engine
    }
}

impl<S: IndexStore + Default> Default for SearchEngine<S> {
    fn default() -> Self {
        SearchEngine::new(S::default())
    }
}

impl SearchEngine<VecStore> {
    /// A sequential engine over a fresh single-shard store.
    pub fn sequential(params: SystemParams) -> Self {
        SearchEngine::new(VecStore::new(params))
    }
}

impl SearchEngine<ShardedStore> {
    /// A parallel engine over a fresh round-robin store with `num_shards` shards.
    pub fn sharded(params: SystemParams, num_shards: usize) -> Self {
        SearchEngine::new(ShardedStore::new(params, num_shards))
    }
}

impl<S: IndexStore> SearchEngine<S> {
    /// Run queries on an existing store. The engine starts with one scan lane
    /// per host core (pool workers plus the calling thread, which always takes
    /// one lane) — *not* per shard: the work-stealing scheduler splits shards
    /// into chunk-range units, so even a single-shard store fills every lane,
    /// and more busy threads than cores would only add scheduler thrash to a
    /// CPU-bound scan. Use [`SearchEngine::with_scan_lanes`] to pin a count.
    ///
    /// The result cache starts disabled; see [`SearchEngine::enable_cache`].
    pub fn new(store: S) -> Self {
        let mut engine = SearchEngine {
            store,
            pool: None,
            lanes: 1,
            scheduler: ScanScheduler::default(),
            steal_granularity: DEFAULT_STEAL_GRANULARITY,
            cache: None,
            telemetry: Telemetry::new(),
        };
        engine.set_scan_lanes(usize::MAX);
        engine
    }

    /// Builder-style [`SearchEngine::set_scan_lanes`].
    pub fn with_scan_lanes(mut self, lanes: usize) -> Self {
        self.set_scan_lanes(lanes);
        self
    }

    /// Set the number of parallel scan lanes at runtime, clamped to
    /// `1..=available_parallelism` (lanes beyond the host's cores only thrash a
    /// CPU-bound scan; the bench sweep and multi-node deployments pin explicit
    /// counts with this). Rebuilds the persistent worker pool when the count
    /// actually changes; results are identical at any lane count.
    pub fn set_scan_lanes(&mut self, lanes: usize) {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let lanes = lanes.clamp(1, cores);
        if lanes == self.lanes && self.pool.is_some() == (lanes > 1) {
            return;
        }
        self.pool = (lanes > 1).then(|| WorkerPool::new(lanes - 1));
        self.lanes = lanes;
        self.telemetry.set_gauge(Gauge::ScanLanes, lanes as u64);
    }

    /// Builder-style [`SearchEngine::set_telemetry_level`].
    pub fn with_telemetry_level(self, level: TelemetryLevel) -> Self {
        self.set_telemetry_level(level);
        self
    }

    /// Set how much the engine's telemetry registry records (default
    /// [`TelemetryLevel::Off`]). Takes `&self`: the level is an atomic on the
    /// shared registry, so sessions can toggle telemetry on a live engine.
    /// Telemetry is **invisible** to execution — replies, [`SearchStats`] and
    /// cache counters are byte-identical at every level.
    pub fn set_telemetry_level(&self, level: TelemetryLevel) {
        self.telemetry.set_level(level);
    }

    /// Current telemetry recording level.
    pub fn telemetry_level(&self) -> TelemetryLevel {
        self.telemetry.level()
    }

    /// The engine's telemetry registry handle (cheap to clone; shared).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Snapshot the telemetry registry, refreshing the store gauges first so a
    /// report always carries current geometry.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.telemetry
            .set_gauge(Gauge::ScanLanes, self.lanes as u64);
        self.telemetry
            .set_gauge(Gauge::StoreDocuments, self.store.len() as u64);
        self.telemetry
            .set_gauge(Gauge::StoreShards, self.store.num_shards() as u64);
        if let Some(cache) = &self.cache {
            self.telemetry
                .set_gauge(Gauge::CacheEntries, cache.lock().unwrap().len() as u64);
        }
        self.telemetry.snapshot()
    }

    /// Builder-style [`SearchEngine::set_scan_scheduler`].
    pub fn with_scan_scheduler(mut self, scheduler: ScanScheduler) -> Self {
        self.set_scan_scheduler(scheduler);
        self
    }

    /// Select how shard scans are scheduled onto lanes (see [`ScanScheduler`]).
    /// Replies are byte-identical under either scheduler.
    pub fn set_scan_scheduler(&mut self, scheduler: ScanScheduler) {
        self.scheduler = scheduler;
    }

    /// The active scan scheduler.
    pub fn scan_scheduler(&self) -> ScanScheduler {
        self.scheduler
    }

    /// Builder-style [`SearchEngine::set_steal_granularity`].
    pub fn with_steal_granularity(mut self, chunks: usize) -> Self {
        self.set_steal_granularity(chunks);
        self
    }

    /// Set the work-stealing unit size in plane chunks (clamped to ≥ 1;
    /// [`crate::scanplane::CHUNK`] documents per chunk). Smaller units balance
    /// better, larger units amortize deque traffic; results are identical at
    /// any granularity.
    pub fn set_steal_granularity(&mut self, chunks: usize) {
        self.steal_granularity = chunks.max(1);
    }

    /// Chunks per work-stealing unit.
    pub fn steal_granularity(&self) -> usize {
        self.steal_granularity
    }

    /// Builder-style cache enablement: `SearchEngine::sharded(p, 4).with_result_cache(cfg)`.
    pub fn with_result_cache(mut self, config: CacheConfig) -> Self {
        self.enable_cache(config);
        self
    }

    /// Enable (or reconfigure) the per-shard result cache. Existing entries, if
    /// any, are discarded.
    pub fn enable_cache(&mut self, config: CacheConfig) {
        self.cache = Some(Mutex::new(ResultCache::new(
            self.store.num_shards(),
            config,
        )));
    }

    /// Disable the result cache, dropping every entry.
    pub fn disable_cache(&mut self) {
        self.cache = None;
    }

    /// True if the result cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Cache effectiveness counters, or `None` when the cache is disabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.lock().unwrap().stats())
    }

    /// Zero the cache effectiveness counters (no-op when disabled).
    pub fn reset_cache_stats(&self) {
        if let Some(cache) = &self.cache {
            cache.lock().unwrap().reset_stats();
        }
    }

    /// Drop every cached entry (no-op when disabled).
    pub fn clear_cache(&self) {
        if let Some(cache) = &self.cache {
            cache.lock().unwrap().clear();
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the underlying store.
    ///
    /// The engine cannot observe what a caller does through this reference, so it
    /// conservatively bumps **every** shard's cache generation — any cached result
    /// might describe a superseded store state afterwards. Prefer
    /// [`SearchEngine::insert`] (which invalidates only the written shard) for
    /// uploads.
    pub fn store_mut(&mut self) -> &mut S {
        if let Some(cache) = &self.cache {
            cache.lock().unwrap().invalidate_all();
            self.telemetry
                .record_cache_invalidation_all(self.store.num_shards());
        }
        &mut self.store
    }

    /// Consume the engine, returning the store.
    pub fn into_store(self) -> S {
        self.store
    }

    /// The store's parameters.
    pub fn params(&self) -> &SystemParams {
        self.store.params()
    }

    /// Number of stored documents (σ).
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True if no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Upload one document index. With the cache enabled, only the shard the
    /// document landed in is invalidated; cached scans of every other shard stay
    /// live.
    pub fn insert(&mut self, index: RankedDocumentIndex) -> Result<(), StoreError> {
        let document_id = index.document_id;
        self.store.insert(index)?;
        self.telemetry.add(Counter::Inserts, 1);
        if let Some(cache) = &self.cache {
            let mut cache = cache.lock().unwrap();
            match self.store.shard_of(document_id) {
                Some(shard) => {
                    cache.note_insert(shard);
                    self.telemetry.record_cache_invalidation(shard);
                }
                // A store that cannot name the shard gets the conservative
                // treatment: every shard's generation moves.
                None => {
                    cache.invalidate_all();
                    self.telemetry
                        .record_cache_invalidation_all(self.store.num_shards());
                }
            }
        }
        Ok(())
    }

    /// Upload many document indices, stopping at the first invalid one.
    pub fn insert_all<I: IntoIterator<Item = RankedDocumentIndex>>(
        &mut self,
        indices: I,
    ) -> Result<(), StoreError> {
        for idx in indices {
            self.insert(idx)?;
        }
        Ok(())
    }

    /// Snapshot the store into the versioned binary format of
    /// [`crate::persistence`]. The cache is **never** part of a snapshot: it is
    /// derived state, rebuilt on demand.
    pub fn snapshot(&self) -> Vec<u8> {
        crate::persistence::serialize_index_store(&self.store)
    }

    /// Restore a snapshot produced by [`SearchEngine::snapshot`] (or
    /// [`crate::persistence::serialize_index_store`]), appending the decoded
    /// indices in their original insertion order. Every cache generation is bumped
    /// afterwards, so entries cached before the restore can never be served again.
    pub fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<usize, PersistenceError> {
        let count = crate::persistence::deserialize_into(&mut self.store, bytes)?;
        if let Some(cache) = &self.cache {
            cache.lock().unwrap().invalidate_all();
            self.telemetry
                .record_cache_invalidation_all(self.store.num_shards());
        }
        Ok(count)
    }

    /// The stored index of one document (O(1) on map-backed stores).
    pub fn document_index(&self, document_id: u64) -> Option<&RankedDocumentIndex> {
        self.store.document_index(document_id)
    }

    /// Run `scan(pos, shard)` once per selected shard — inline when there is no
    /// pool or a single shard is selected, statically dealt round-robin over the
    /// persistent worker pool otherwise (`pos` is the index into `shard_ids`).
    /// Results come back aligned with `shard_ids`. A panicking scan is re-raised
    /// with the failing shard named, and the pool adds the failing lane (job)
    /// index.
    fn map_selected_shards<T, F>(&self, shard_ids: &[usize], scan: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        // The static path's unit is a whole shard: time it like the stealing
        // path times its chunk ranges, so single-lane hosts still populate the
        // unit-scan histogram. The gate is captured once; `Instant::now` runs
        // on whatever lane executes the unit.
        let time_units = self.telemetry.level().spans_enabled();
        // Name the shard in any scan panic before it crosses the pool boundary.
        let scan_named = |pos: usize, shard: usize| -> T {
            let started = time_units.then(Instant::now);
            let value = match catch_unwind(AssertUnwindSafe(|| scan(pos, shard))) {
                Ok(value) => value,
                Err(payload) => {
                    let message = pool::panic_message(payload.as_ref());
                    resume_unwind(Box::new(format!("shard {shard}: {message}")));
                }
            };
            if let Some(started) = started {
                let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.telemetry.record_duration(Stage::UnitScan, ns);
            }
            value
        };
        let selected = shard_ids.len();
        let inline = |(pos, &shard): (usize, &usize)| scan_named(pos, shard);
        if self.pool.is_none() || selected <= 1 {
            let out: Vec<T> = shard_ids.iter().enumerate().map(inline).collect();
            if selected > 0 {
                self.telemetry.record_lane(
                    0,
                    &LaneStats {
                        executed: selected as u64,
                        ..LaneStats::default()
                    },
                );
            }
            return out;
        }
        let pool = self.pool.as_ref().expect("checked above");
        let lanes = (pool.workers() + 1).min(selected);
        let mut lane_results: Vec<Vec<(usize, T)>> = (0..lanes).map(|_| Vec::new()).collect();
        {
            let (scan_named, telemetry) = (&scan_named, &self.telemetry);
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = lane_results
                .iter_mut()
                .enumerate()
                .map(|(lane, out)| {
                    Box::new(move || {
                        let mut executed = 0u64;
                        let mut pos = lane;
                        while pos < selected {
                            out.push((pos, scan_named(pos, shard_ids[pos])));
                            executed += 1;
                            pos += lanes;
                        }
                        // The static deal is round-robin: no steals, no idle
                        // polls, just the lane's own share.
                        telemetry.record_lane(
                            lane,
                            &LaneStats {
                                executed,
                                ..LaneStats::default()
                            },
                        );
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(jobs);
        }
        let mut results: Vec<Option<T>> = (0..selected).map(|_| None).collect();
        for (pos, value) in lane_results.into_iter().flatten() {
            results[pos] = Some(value);
        }
        results
            .into_iter()
            .map(|r| r.expect("every selected shard was scanned"))
            .collect()
    }

    /// Run `scan(shard)` once per shard. Results come back in shard order.
    fn map_shards<T, F>(&self, scan: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let all: Vec<usize> = (0..self.store.num_shards()).collect();
        self.map_selected_shards(&all, |_, shard| scan(shard))
    }

    /// Execute `run(unit)` for units `0..total` on the work-stealing scheduler:
    /// units are dealt contiguously onto the lanes' deques, each lane drains its
    /// own deal head-first and then steals from other lanes' tails, and every
    /// unit's result lands in its own slot — so the returned vector is in unit
    /// order regardless of which lane ran what. Runs inline (in unit order) with
    /// one lane or one unit.
    fn run_units<T, F>(&self, total: usize, run: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let lanes = match &self.pool {
            Some(pool) => (pool.workers() + 1).min(total),
            None => 1,
        };
        if lanes <= 1 {
            let out: Vec<T> = (0..total).map(run).collect();
            if total > 0 {
                self.telemetry.record_lane(
                    0,
                    &LaneStats {
                        executed: total as u64,
                        ..LaneStats::default()
                    },
                );
            }
            return out;
        }
        let deques = StealDeques::new(total, lanes);
        let mut lane_results: Vec<Vec<(usize, T)>> = (0..lanes).map(|_| Vec::new()).collect();
        {
            let (deques, run, telemetry) = (&deques, &run, &self.telemetry);
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = lane_results
                .iter_mut()
                .enumerate()
                .map(|(lane, out)| {
                    Box::new(move || {
                        // Scheduler stats accumulate in lane-local plain
                        // integers and flush once after the drain: the claim
                        // loop stays free of shared-cacheline traffic.
                        let mut stats = LaneStats::default();
                        while let Some(unit) = deques.next_tracked(lane, &mut stats) {
                            out.push((unit, run(unit)));
                        }
                        telemetry.record_lane(lane, &stats);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            self.pool
                .as_ref()
                .expect("multi-lane run_units implies a pool")
                .run_scoped(jobs);
        }
        let mut results: Vec<Option<T>> = (0..total).map(|_| None).collect();
        for (unit, value) in lane_results.into_iter().flatten() {
            results[unit] = Some(value);
        }
        results
            .into_iter()
            .map(|r| r.expect("every unit claimed exactly once"))
            .collect()
    }

    /// Carve the selected shards' planes into chunk-range work units, in
    /// selection order with ascending ranges (= slot order within each shard).
    /// `None` if any selected shard has no plane — the caller falls back to the
    /// static whole-shard schedule, whose scan seam handles plane-less stores.
    fn chunk_units(&self, shard_ids: &[usize]) -> Option<Vec<ChunkUnit>> {
        let granularity = self.steal_granularity.max(1);
        let mut units = Vec::new();
        for (pos, &shard) in shard_ids.iter().enumerate() {
            let chunks = self.store.scan_plane(shard)?.num_chunks();
            let mut lo = 0;
            while lo < chunks {
                let hi = (lo + granularity).min(chunks);
                units.push(ChunkUnit {
                    pos,
                    shard,
                    chunks: lo..hi,
                });
                lo = hi;
            }
        }
        Some(units)
    }

    /// Scan the selected shards' units on the stealing scheduler and stitch the
    /// per-unit results back into per-shard rows aligned with `subsets`: within
    /// a shard, unit results concatenate in chunk (slot) order and stats sum —
    /// byte-identical to one whole-shard scan per selected shard. A shard with
    /// no units (an empty plane) yields the whole-shard scan's empty result.
    fn scan_units(&self, subsets: &[Vec<&QueryIndex>], units: &[ChunkUnit]) -> Vec<Vec<ShardScan>> {
        // Capture the span gate once per execution: `Instant::now` inside the
        // unit closure runs on worker lanes, so the drop-guard `Telemetry::span`
        // (which borrows `&self`) is replaced by an explicit timed pair here.
        let time_units = self.telemetry.level().spans_enabled();
        let unit_scans = self.run_units(units.len(), |u| {
            let unit = &units[u];
            let started = time_units.then(Instant::now);
            // Name the shard in any scan panic, like the static path does.
            let scans = match catch_unwind(AssertUnwindSafe(|| {
                let plane = self
                    .store
                    .scan_plane(unit.shard)
                    .expect("units are only built from planes");
                let bits: Vec<&BitIndex> = subsets[unit.pos].iter().map(|q| q.bits()).collect();
                plane.scan_ranked_batch_chunks(&bits, unit.chunks.clone())
            })) {
                Ok(scans) => scans,
                Err(payload) => {
                    let message = pool::panic_message(payload.as_ref());
                    resume_unwind(Box::new(format!("shard {}: {message}", unit.shard)));
                }
            };
            if let Some(started) = started {
                let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.telemetry.record_duration(Stage::UnitScan, ns);
            }
            scans
        });
        let mut out: Vec<Vec<ShardScan>> = subsets
            .iter()
            .map(|subset| vec![(Vec::new(), SearchStats::default()); subset.len()])
            .collect();
        for (unit, scans) in units.iter().zip(unit_scans) {
            for ((matches, stats), (row_matches, row_stats)) in
                scans.into_iter().zip(&mut out[unit.pos])
            {
                row_matches.extend(matches);
                row_stats.merge(&stats);
            }
        }
        out
    }

    /// The scheduling seam of every ranked execution: scan each selected shard
    /// for its query subset (`subsets[pos]` belongs to `shard_ids[pos]`),
    /// returning per-shard rows aligned with `queries` order within each subset.
    /// Work-stealing over chunk units when the scheduler (and every selected
    /// shard's plane) allows; the static whole-shard fan-out otherwise. Both
    /// produce byte-identical rows.
    ///
    /// A single effective lane short-circuits to the static path even under
    /// `WorkStealing`: with nobody to steal from, splitting shards into units
    /// buys nothing and costs per-range setup (active-block lists, result
    /// buffers), so one lane scans whole shards — still byte-identical, just
    /// without the dispatch overhead.
    fn scan_selected_shards(
        &self,
        shard_ids: &[usize],
        subsets: &[Vec<&QueryIndex>],
    ) -> Vec<Vec<ShardScan>> {
        debug_assert_eq!(shard_ids.len(), subsets.len());
        if self.scheduler == ScanScheduler::WorkStealing && self.pool.is_some() {
            if let Some(units) = self.chunk_units(shard_ids) {
                return self.scan_units(subsets, &units);
            }
        }
        self.map_selected_shards(shard_ids, |pos, shard| {
            self.scan_shard_batch(shard, &subsets[pos])
        })
    }

    /// Single-query form of [`SearchEngine::scan_selected_shards`]: one
    /// [`ShardScan`] per selected shard.
    fn scan_selected_shards_single(
        &self,
        shard_ids: &[usize],
        query: &QueryIndex,
    ) -> Vec<ShardScan> {
        if self.scheduler == ScanScheduler::WorkStealing && self.pool.is_some() {
            if let Some(units) = self.chunk_units(shard_ids) {
                let subsets: Vec<Vec<&QueryIndex>> =
                    shard_ids.iter().map(|_| vec![query]).collect();
                return self
                    .scan_units(&subsets, &units)
                    .into_iter()
                    .map(|mut row| row.pop().expect("one query per selected shard"))
                    .collect();
            }
        }
        self.map_selected_shards(shard_ids, |_, shard| self.scan_shard(shard, query))
    }

    /// One shard's ranked scan — **the** seam the layout optimization plugs into.
    /// Stores that maintain a block-major [`crate::scanplane::ScanPlane`] (both
    /// built-in stores do) are swept through it: contiguous, query-pruned,
    /// vectorizer-friendly columns instead of per-document pointer chasing.
    /// Stores without a plane fall back to the reference AoS loop. Either way the
    /// output is bit-for-bit what [`scan_ranked`] returns — same matches, same
    /// scan order, same [`SearchStats`] (the equivalence suite and
    /// `mkse-core/tests/scanplane_equivalence.rs` hold both paths to it).
    fn scan_shard(&self, shard: usize, query: &QueryIndex) -> ShardScan {
        match self.store.scan_plane(shard) {
            Some(plane) => plane.scan_ranked(query.bits()),
            None => scan_ranked(self.store.shard_documents(shard), query),
        }
    }

    /// One shard's **fused** ranked scan of a whole query set — the batch
    /// counterpart of [`SearchEngine::scan_shard`]. Plane-backed stores stream
    /// the shard's arena once for all queries
    /// ([`crate::scanplane::ScanPlane::scan_ranked_batch`]); stores without a
    /// plane fall back to one reference scan per query. Results are aligned with
    /// `queries` and byte-identical to per-query [`SearchEngine::scan_shard`]
    /// calls.
    fn scan_shard_batch(&self, shard: usize, queries: &[&QueryIndex]) -> Vec<ShardScan> {
        match self.store.scan_plane(shard) {
            Some(plane) => {
                let bits: Vec<&BitIndex> = queries.iter().map(|q| q.bits()).collect();
                plane.scan_ranked_batch(&bits)
            }
            None => queries
                .iter()
                .map(|q| scan_ranked(self.store.shard_documents(shard), q))
                .collect(),
        }
    }

    /// Number of parallel scan lanes this engine fans out to: persistent pool
    /// workers plus the calling thread (which always takes one lane). Defaults
    /// to the host's available parallelism — independent of the shard count,
    /// because the work-stealing scheduler splits and coalesces shards across
    /// lanes freely — and is always clamped to `1..=available_parallelism`
    /// (see [`SearchEngine::set_scan_lanes`]): more busy threads than cores
    /// only adds scheduler thrash to a CPU-bound scan.
    pub fn scan_lanes(&self) -> usize {
        self.lanes
    }

    /// Scan every shard for documents whose level-1 index matches `query`, extract a
    /// value per match, and merge across shards in storage (insertion-ordinal)
    /// order. The single home of the ordinal-merge logic that makes parallel
    /// unranked results and metadata reproduce the sequential scan's order exactly.
    fn matching_in_storage_order<'s, T, F>(&'s self, query: &QueryIndex, extract: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&'s RankedDocumentIndex) -> T + Sync,
    {
        let per_shard = self.map_shards(|shard| {
            let docs = self.store.shard_documents(shard);
            // The plane answers "which slots match" with a pruned column sweep;
            // the extraction still reads the authoritative AoS documents.
            match self.store.scan_plane(shard) {
                Some(plane) => plane
                    .matching_slots(query.bits())
                    .into_iter()
                    .map(|slot| (self.store.ordinal(shard, slot), extract(&docs[slot])))
                    .collect::<Vec<_>>(),
                None => docs
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| d.base_level().matches_query(query.bits()))
                    .map(|(slot, d)| (self.store.ordinal(shard, slot), extract(d)))
                    .collect::<Vec<_>>(),
            }
        });
        let mut merged: Vec<(u64, T)> = per_shard.into_iter().flatten().collect();
        merged.sort_unstable_by_key(|(ordinal, _)| *ordinal);
        merged.into_iter().map(|(_, value)| value).collect()
    }

    /// Plain (unranked) oblivious search: ids of every document whose level-1 index
    /// matches, in storage (insertion) order — Eq. (3) across the database.
    /// (Uncached: the ranked path is the hot one; see [`crate::cache`].)
    pub fn search_unranked(&self, query: &QueryIndex) -> Vec<u64> {
        self.matching_in_storage_order(query, |d| d.document_id)
    }

    /// The fingerprint keying this query's per-shard ranked-scan entries. Top-k is
    /// `None` because truncation happens *after* the cross-shard merge — one cached
    /// entry per shard serves every k.
    fn ranked_fingerprint(query: &QueryIndex) -> QueryFingerprint {
        QueryFingerprint::new(query.bits(), RankingMode::Ranked, None)
    }

    /// Ranked search (Algorithm 1) with execution statistics, merged across shards.
    pub fn search_ranked_with_stats(&self, query: &QueryIndex) -> (Vec<SearchMatch>, SearchStats) {
        let (matches, stats, _) = self.search_ranked_with_effect(query);
        (matches, stats)
    }

    /// Ranked search with statistics **and** the cache's contribution to this
    /// execution. With the cache disabled the effect is all zeros. Matches and
    /// stats are byte-identical to the uncached execution either way.
    pub fn search_ranked_with_effect(
        &self,
        query: &QueryIndex,
    ) -> (Vec<SearchMatch>, SearchStats, CacheEffect) {
        self.telemetry.add(Counter::Queries, 1);
        let _query_span = self.telemetry.span(Stage::EngineQuery);
        let shards = self.store.num_shards();
        let all: Vec<usize> = (0..shards).collect();
        let Some(cache_mutex) = &self.cache else {
            self.telemetry.add(Counter::ShardScans, shards as u64);
            let per_shard = self.scan_selected_shards_single(&all, query);
            return Self::merge_ranked(per_shard, CacheEffect::default());
        };

        let fingerprint = Self::ranked_fingerprint(query);
        let mut per_shard: Vec<Option<ShardScan>> = Vec::with_capacity(shards);
        let mut generations: Vec<u64> = Vec::with_capacity(shards);
        {
            let _lookup_span = self.telemetry.span(Stage::CacheLookup);
            let mut cache = cache_mutex.lock().unwrap();
            for shard in 0..shards {
                generations.push(cache.generation(shard));
                let found = cache.lookup(shard, &fingerprint);
                self.telemetry.record_cache_lookup(shard, found.is_some());
                per_shard.push(found);
            }
        }
        let missing: Vec<usize> = per_shard
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_none())
            .map(|(shard, _)| shard)
            .collect();
        let effect = CacheEffect {
            shard_hits: (shards - missing.len()) as u64,
            shard_misses: missing.len() as u64,
            saved_comparisons: per_shard
                .iter()
                .flatten()
                .map(|(_, stats)| stats.comparisons)
                .sum(),
        };
        if !missing.is_empty() {
            self.telemetry
                .add(Counter::ShardScans, missing.len() as u64);
            let fresh = self.scan_selected_shards_single(&missing, query);
            let _admit_span = self.telemetry.span(Stage::CacheAdmit);
            let mut cache = cache_mutex.lock().unwrap();
            for (&shard, (matches, stats)) in missing.iter().zip(fresh) {
                cache.admit(
                    shard,
                    fingerprint.clone(),
                    matches.clone(),
                    stats,
                    generations[shard],
                );
                per_shard[shard] = Some((matches, stats));
            }
        }
        Self::merge_ranked(
            per_shard.into_iter().map(|r| r.expect("shard resolved")),
            effect,
        )
    }

    /// The single merge point for ranked execution: extend in shard order, sum the
    /// stats, sort by the (rank desc, id asc) total order. Cached and fresh shard
    /// results flow through this identically.
    fn merge_ranked<I: IntoIterator<Item = (Vec<SearchMatch>, SearchStats)>>(
        per_shard: I,
        effect: CacheEffect,
    ) -> (Vec<SearchMatch>, SearchStats, CacheEffect) {
        let mut matches = Vec::new();
        let mut stats = SearchStats::default();
        for (shard_matches, shard_stats) in per_shard {
            matches.extend(shard_matches);
            stats.merge(&shard_stats);
        }
        sort_matches(&mut matches);
        (matches, stats, effect)
    }

    /// Ranked search without statistics.
    pub fn search(&self, query: &QueryIndex) -> Vec<SearchMatch> {
        self.search_ranked_with_stats(query).0
    }

    /// Ranked search returning only the top `tau` matches (§5). Cache-aware via the
    /// full ranked path: the per-shard entries are k-independent, so one cached
    /// query serves every `tau`.
    pub fn search_top(&self, query: &QueryIndex, tau: usize) -> Vec<SearchMatch> {
        let mut all = self.search(query);
        all.truncate(tau);
        all
    }

    /// Execute many queries in one pass: each shard is scanned once for the whole
    /// batch, and per-query results are merged exactly as in the single-query path.
    pub fn search_batch_with_stats(
        &self,
        queries: &[QueryIndex],
    ) -> Vec<(Vec<SearchMatch>, SearchStats)> {
        self.search_batch_with_effects(queries)
            .into_iter()
            .map(|(matches, stats, _)| (matches, stats))
            .collect()
    }

    /// Batched ranked search with per-query statistics and cache effects.
    ///
    /// Execution is **fused and deduplicated**: queries carrying identical
    /// [`QueryFingerprint`]s are scanned once (the first occurrence is the
    /// representative; every duplicate position receives a copy of its reply),
    /// and each shard worker receives its whole remaining query set in one
    /// fused [`crate::scanplane::ScanPlane::scan_ranked_batch`] pass — the
    /// shard's arena crosses the memory bus once per batch, not once per query.
    /// With the cache enabled, each shard scans exactly the unique queries that
    /// missed it (fully cached queries trigger no scan at all), and duplicates
    /// are resolved through real cache lookups against what the representative
    /// admitted — so their [`CacheEffect`]s report the same hits, and the same
    /// saved comparisons, that issuing the b queries one at a time would have
    /// produced. Replies, per-query [`SearchStats`] and merge order are
    /// byte-identical to b independent single-query executions either way.
    ///
    /// One scoped caveat on the *diagnostics*: the distinct queries' cache
    /// lookups are phased (all before the fused scans — that is what makes one
    /// plane pass per shard possible), so when the cache is under eviction
    /// pressure **within a single batch** (`capacity_per_shard` smaller than the
    /// batch's distinct working set plus the warm entries it displaces), a
    /// [`CacheEffect`]/[`CacheStats`] entry may differ from strict one-at-a-time
    /// issue order — an earlier query's admission cannot evict an entry a later
    /// distinct query already looked up. Replies and [`SearchStats`] are never
    /// affected (the cache may change work accounting, never bytes), and
    /// duplicate positions always replay sequential cache traffic exactly.
    pub fn search_batch_with_effects(
        &self,
        queries: &[QueryIndex],
    ) -> Vec<(Vec<SearchMatch>, SearchStats, CacheEffect)> {
        if queries.is_empty() {
            return Vec::new();
        }
        self.telemetry.add(Counter::Batches, 1);
        self.telemetry
            .add(Counter::BatchQueries, queries.len() as u64);
        let _batch_span = self.telemetry.span(Stage::EngineBatch);
        let shards = self.store.num_shards();
        let fingerprints: Vec<QueryFingerprint> =
            queries.iter().map(Self::ranked_fingerprint).collect();
        // Intra-batch dedup: rep[i] is the batch position of the first query with
        // fingerprints[i]; positions where rep[i] == i are the unique set.
        let mut first_of: HashMap<&QueryFingerprint, usize> = HashMap::with_capacity(queries.len());
        let mut rep: Vec<usize> = Vec::with_capacity(queries.len());
        for (i, fingerprint) in fingerprints.iter().enumerate() {
            rep.push(*first_of.entry(fingerprint).or_insert(i));
        }
        let uniques: Vec<usize> = (0..queries.len()).filter(|&i| rep[i] == i).collect();
        // unique_pos[rep[i]] is rep[i]'s row in the per-unique tables below.
        let unique_pos: HashMap<usize, usize> = uniques
            .iter()
            .enumerate()
            .map(|(pos, &u)| (u, pos))
            .collect();
        let mut out: Vec<Option<(Vec<SearchMatch>, SearchStats, CacheEffect)>> =
            (0..queries.len()).map(|_| None).collect();

        let Some(cache_mutex) = &self.cache else {
            // per_shard[shard][pos] over the unique set; transpose to per-query
            // rows so every execution path merges through merge_ranked.
            self.telemetry.add(Counter::ShardScans, shards as u64);
            let all: Vec<usize> = (0..shards).collect();
            let subsets: Vec<Vec<&QueryIndex>> = (0..shards)
                .map(|_| uniques.iter().map(|&u| &queries[u]).collect())
                .collect();
            let mut per_shard = self.scan_selected_shards(&all, &subsets);
            for (pos, &u) in uniques.iter().enumerate() {
                out[u] = Some(Self::merge_ranked(
                    per_shard
                        .iter_mut()
                        .map(|rows| std::mem::take(&mut rows[pos])),
                    CacheEffect::default(),
                ));
            }
            // Duplicates: identical reply bytes, and — matching b independent
            // cache-less executions exactly — an all-zero effect.
            return Self::fan_out_duplicates(out, &rep, |_| CacheEffect::default());
        };

        // Phase 1 — lookups for the unique queries, in batch order.
        // resolved[pos][shard], rows aligned with `uniques`.
        let mut resolved: Vec<Vec<Option<ShardScan>>> = uniques
            .iter()
            .map(|_| (0..shards).map(|_| None).collect())
            .collect();
        let mut generations: Vec<u64> = Vec::with_capacity(shards);
        {
            let _lookup_span = self.telemetry.span(Stage::CacheLookup);
            let mut cache = cache_mutex.lock().unwrap();
            for shard in 0..shards {
                generations.push(cache.generation(shard));
            }
            for (&u, rows) in uniques.iter().zip(resolved.iter_mut()) {
                for (shard, row) in rows.iter_mut().enumerate() {
                    *row = cache.lookup(shard, &fingerprints[u]);
                    self.telemetry.record_cache_lookup(shard, row.is_some());
                }
            }
        }
        let effects: Vec<CacheEffect> = resolved
            .iter()
            .map(|rows| {
                let misses = rows.iter().filter(|r| r.is_none()).count() as u64;
                CacheEffect {
                    shard_hits: shards as u64 - misses,
                    shard_misses: misses,
                    saved_comparisons: rows
                        .iter()
                        .flatten()
                        .map(|(_, stats)| stats.comparisons)
                        .sum(),
                }
            })
            .collect();

        // Phase 2 — fused scans: each shard sweeps exactly the unique queries
        // that missed it, in one plane pass. Results only fill `resolved` here;
        // admissions happen in phase 3, in batch order.
        let mut queries_for_shard: Vec<Vec<usize>> = (0..shards).map(|_| Vec::new()).collect();
        // missing_of_pos[pos] = the shards `pos` was freshly scanned on (its
        // phase-1 misses) — the shards sequential execution would admit.
        let mut missing_of_pos: Vec<Vec<usize>> = (0..uniques.len()).map(|_| Vec::new()).collect();
        for (pos, rows) in resolved.iter().enumerate() {
            for (shard, row) in rows.iter().enumerate() {
                if row.is_none() {
                    queries_for_shard[shard].push(pos);
                    missing_of_pos[pos].push(shard);
                }
            }
        }
        let shard_ids: Vec<usize> = (0..shards)
            .filter(|&s| !queries_for_shard[s].is_empty())
            .collect();
        if !shard_ids.is_empty() {
            self.telemetry
                .add(Counter::ShardScans, shard_ids.len() as u64);
            let subsets: Vec<Vec<&QueryIndex>> = shard_ids
                .iter()
                .map(|&shard| {
                    queries_for_shard[shard]
                        .iter()
                        .map(|&pos| &queries[uniques[pos]])
                        .collect()
                })
                .collect();
            let fresh = self.scan_selected_shards(&shard_ids, &subsets);
            for (&shard, shard_results) in shard_ids.iter().zip(fresh) {
                for (&pos, scan) in queries_for_shard[shard].iter().zip(shard_results) {
                    resolved[pos][shard] = Some(scan);
                }
            }
        }

        // Phase 3 — one pass over the batch in position order, replaying the
        // cache traffic sequential execution would generate: a representative
        // admits its freshly scanned shards; a duplicate resolves through real
        // lookups, hitting whatever is cached *at its position in the batch*
        // (normally what its representative just admitted — but under LRU
        // pressure an intervening admission may have evicted it, and then, like
        // sequential execution, the duplicate reports a miss and re-admits; the
        // "rescan" result is the representative's identical row). Distinct
        // queries' *lookups* stay phased (see the method docs), so only their
        // diagnostics can deviate under intra-batch eviction pressure; the
        // admission order and every duplicate's traffic match sequential
        // execution exactly.
        let mut duplicate_effects: Vec<CacheEffect> = vec![CacheEffect::default(); queries.len()];
        {
            let _admit_span = self.telemetry.span(Stage::CacheAdmit);
            let mut cache = cache_mutex.lock().unwrap();
            for (i, fingerprint) in fingerprints.iter().enumerate() {
                let pos = unique_pos[&rep[i]];
                if rep[i] == i {
                    for &shard in &missing_of_pos[pos] {
                        let (matches, stats) =
                            resolved[pos][shard].as_ref().expect("shard resolved");
                        cache.admit(
                            shard,
                            fingerprint.clone(),
                            matches.clone(),
                            *stats,
                            generations[shard],
                        );
                    }
                    continue;
                }
                let mut effect = CacheEffect::default();
                for shard in 0..shards {
                    let found = cache.lookup(shard, fingerprint);
                    self.telemetry.record_cache_lookup(shard, found.is_some());
                    match found {
                        Some((_, stats)) => {
                            effect.shard_hits += 1;
                            effect.saved_comparisons += stats.comparisons;
                        }
                        None => {
                            effect.shard_misses += 1;
                            let (matches, stats) = resolved[pos][shard]
                                .clone()
                                .expect("representative resolved");
                            cache.admit(
                                shard,
                                fingerprint.clone(),
                                matches,
                                stats,
                                generations[shard],
                            );
                        }
                    }
                }
                duplicate_effects[i] = effect;
            }
        }

        for ((rows, effect), &u) in resolved.into_iter().zip(effects).zip(&uniques) {
            out[u] = Some(Self::merge_ranked(
                rows.into_iter().map(|r| r.expect("shard resolved")),
                effect,
            ));
        }
        Self::fan_out_duplicates(out, &rep, |i| duplicate_effects[i])
    }

    /// Finish a batch execution: every representative position of `out` is
    /// filled; copy its reply into each duplicate position (pairing it with that
    /// position's own [`CacheEffect`]) and unwrap the batch-ordered result.
    fn fan_out_duplicates(
        mut out: Vec<Option<(Vec<SearchMatch>, SearchStats, CacheEffect)>>,
        rep: &[usize],
        effect_of: impl Fn(usize) -> CacheEffect,
    ) -> Vec<(Vec<SearchMatch>, SearchStats, CacheEffect)> {
        for i in 0..out.len() {
            if rep[i] != i {
                let (matches, stats) = {
                    let (matches, stats, _) =
                        out[rep[i]].as_ref().expect("representative resolved first");
                    (matches.clone(), *stats)
                };
                out[i] = Some((matches, stats, effect_of(i)));
            }
        }
        out.into_iter()
            .map(|reply| reply.expect("every batch position resolved"))
            .collect()
    }

    /// Batched ranked search without statistics.
    pub fn search_batch(&self, queries: &[QueryIndex]) -> Vec<Vec<SearchMatch>> {
        self.search_batch_with_stats(queries)
            .into_iter()
            .map(|(matches, _)| matches)
            .collect()
    }

    /// The per-level metadata of matching documents, in storage order (§4.3).
    ///
    /// Levels are **borrowed** from the store: building the reply no longer
    /// deep-clones every matching document's full η·r-bit index — callers that
    /// need owned data (e.g. to serialize onto the wire) copy exactly the bytes
    /// they send and nothing more.
    pub fn matching_metadata(&self, query: &QueryIndex) -> Vec<(u64, &[BitIndex])> {
        self.matching_in_storage_order(query, |d| (d.document_id, d.levels.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document_index::DocumentIndexer;
    use crate::keys::SchemeKeys;
    use crate::query::QueryBuilder;
    use crate::search::CloudIndex;
    use mkse_textproc::document::TermFrequencies;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        params: SystemParams,
        keys: SchemeKeys,
        rng: StdRng,
    }

    fn fixture() -> Fixture {
        let params = SystemParams::default();
        let mut rng = StdRng::seed_from_u64(123);
        let keys = SchemeKeys::generate(&params, &mut rng);
        Fixture { params, keys, rng }
    }

    fn corpus_indices(fx: &Fixture, n: u64) -> Vec<RankedDocumentIndex> {
        let indexer = DocumentIndexer::new(&fx.params, &fx.keys);
        (0..n)
            .map(|id| {
                let tf = TermFrequencies::from_pairs([
                    (format!("kw{}", id % 7), 1 + (id as u32 % 12)),
                    ("shared".to_string(), 1 + (id as u32 % 11)),
                ]);
                indexer.index_terms(id, &tf)
            })
            .collect()
    }

    fn query(fx: &mut Fixture, keywords: &[&str]) -> QueryIndex {
        let tds = fx.keys.trapdoors_for(&fx.params, keywords);
        QueryBuilder::new(&fx.params)
            .add_trapdoors(&tds)
            .build(&mut fx.rng)
    }

    #[test]
    fn sharded_engine_matches_sequential_reference() {
        let mut fx = fixture();
        let indices = corpus_indices(&fx, 40);
        let mut reference = CloudIndex::new(fx.params.clone());
        reference.insert_all(indices.iter().cloned()).unwrap();
        let q = query(&mut fx, &["shared"]);
        let (seq_matches, seq_stats) = reference.search_ranked_with_stats(&q);

        for shards in [1usize, 2, 3, 8] {
            let mut engine = SearchEngine::sharded(fx.params.clone(), shards);
            engine.insert_all(indices.iter().cloned()).unwrap();
            let (matches, stats) = engine.search_ranked_with_stats(&q);
            assert_eq!(matches, seq_matches, "ranked mismatch at {shards} shards");
            assert_eq!(stats, seq_stats, "stats mismatch at {shards} shards");
            assert_eq!(
                engine.search_unranked(&q),
                reference.search_unranked(&q),
                "unranked mismatch at {shards} shards"
            );
            assert_eq!(
                engine.matching_metadata(&q),
                reference.matching_metadata(&q),
                "metadata mismatch at {shards} shards"
            );
        }
    }

    #[test]
    fn batch_results_equal_single_query_results() {
        let mut fx = fixture();
        let indices = corpus_indices(&fx, 30);
        let mut engine = SearchEngine::sharded(fx.params.clone(), 4);
        engine.insert_all(indices).unwrap();
        let queries = vec![
            query(&mut fx, &["shared"]),
            query(&mut fx, &["kw3"]),
            query(&mut fx, &["kw5", "shared"]),
        ];
        let batched = engine.search_batch_with_stats(&queries);
        assert_eq!(batched.len(), 3);
        for (q, (matches, stats)) in queries.iter().zip(batched.iter()) {
            let (single_matches, single_stats) = engine.search_ranked_with_stats(q);
            assert_eq!(matches, &single_matches);
            assert_eq!(stats, &single_stats);
        }
        assert!(engine.search_batch(&[]).is_empty());
    }

    #[test]
    fn duplicate_batch_queries_scan_once_and_reply_like_sequential_execution() {
        let mut fx = fixture();
        let indices = corpus_indices(&fx, 30);
        let q_a = query(&mut fx, &["shared"]);
        let q_b = query(&mut fx, &["kw3"]);
        // The batch repeats q_a (positions 0, 2, 3) and q_b (positions 1, 4).
        let batch = vec![
            q_a.clone(),
            q_b.clone(),
            q_a.clone(),
            q_a.clone(),
            q_b.clone(),
        ];

        // Cache off: duplicates are scanned once and fanned out; replies and
        // effects are byte-identical to independent executions (all-zero effects).
        let mut plain = SearchEngine::sharded(fx.params.clone(), 4);
        plain.insert_all(indices.iter().cloned()).unwrap();
        let results = plain.search_batch_with_effects(&batch);
        for (query, (matches, stats, effect)) in batch.iter().zip(&results) {
            let (sm, ss) = plain.search_ranked_with_stats(query);
            assert_eq!(matches, &sm);
            assert_eq!(stats, &ss);
            assert_eq!(effect, &CacheEffect::default());
        }

        // Cache on: issuing the 5 queries one at a time admits on first sight and
        // hits on every repeat — the batch must report exactly those effects.
        let mut sequential =
            SearchEngine::sharded(fx.params.clone(), 4).with_result_cache(CacheConfig::default());
        sequential.insert_all(indices.iter().cloned()).unwrap();
        let expected: Vec<_> = batch
            .iter()
            .map(|q| sequential.search_ranked_with_effect(q))
            .collect();
        let expected_stats = sequential.cache_stats().unwrap();

        let mut cached =
            SearchEngine::sharded(fx.params.clone(), 4).with_result_cache(CacheConfig::default());
        cached.insert_all(indices.iter().cloned()).unwrap();
        let got = cached.search_batch_with_effects(&batch);
        assert_eq!(got, expected, "batched execution must equal sequential");
        assert!(got[2].2.fully_cached(), "duplicate is a pure cache hit");
        assert_eq!(got[2].2.saved_comparisons, got[2].1.comparisons);
        assert_eq!(
            cached.cache_stats().unwrap(),
            expected_stats,
            "dedup must leave the same CacheStats trail as sequential execution"
        );
    }

    #[test]
    fn duplicate_batch_queries_under_lru_pressure_match_sequential() {
        // capacity 1 with batch [A, A, B]: sequential execution admits A, hits
        // A, then B's admission evicts A — so B ends up cached and the
        // duplicate's reply reports a hit. The batched path must replay exactly
        // that cache traffic (admissions and duplicate lookups interleaved in
        // batch order), not admit everything first and let B's admission evict
        // A before the duplicate looks up.
        let mut fx = fixture();
        let indices = corpus_indices(&fx, 24);
        let q_a = query(&mut fx, &["shared"]);
        let q_b = query(&mut fx, &["kw1"]);
        let batch = vec![q_a.clone(), q_a.clone(), q_b.clone()];
        let tiny = CacheConfig {
            capacity_per_shard: 1,
        };

        let mut sequential = SearchEngine::sharded(fx.params.clone(), 3).with_result_cache(tiny);
        sequential.insert_all(indices.iter().cloned()).unwrap();
        let expected: Vec<_> = batch
            .iter()
            .map(|q| sequential.search_ranked_with_effect(q))
            .collect();
        assert!(
            expected[1].2.fully_cached(),
            "sequential duplicate must hit before B evicts A"
        );

        let mut batched = SearchEngine::sharded(fx.params.clone(), 3).with_result_cache(tiny);
        batched.insert_all(indices.iter().cloned()).unwrap();
        let got = batched.search_batch_with_effects(&batch);
        assert_eq!(got, expected);
        assert_eq!(
            batched.cache_stats().unwrap(),
            sequential.cache_stats().unwrap()
        );
        // And the surviving LRU contents match: B (the last admission) is the
        // cached entry in both worlds, so a follow-up B fully hits.
        assert_eq!(
            batched.search_ranked_with_effect(&q_b),
            sequential.search_ranked_with_effect(&q_b)
        );
        assert!(batched.search_ranked_with_effect(&q_b).2.fully_cached());
    }

    #[test]
    fn duplicate_batch_queries_with_zero_capacity_cache_match_sequential() {
        // capacity 0: nothing is ever admitted, so sequential execution rescans
        // every repeat and reports misses — the deduplicated batch must report
        // the same effects even though it physically scans once.
        let mut fx = fixture();
        let indices = corpus_indices(&fx, 20);
        let q = query(&mut fx, &["shared"]);
        let batch = vec![q.clone(), q.clone(), q.clone()];
        let mut sequential =
            SearchEngine::sharded(fx.params.clone(), 3).with_result_cache(CacheConfig {
                capacity_per_shard: 0,
            });
        sequential.insert_all(indices.iter().cloned()).unwrap();
        let expected: Vec<_> = batch
            .iter()
            .map(|q| sequential.search_ranked_with_effect(q))
            .collect();
        let mut cached =
            SearchEngine::sharded(fx.params.clone(), 3).with_result_cache(CacheConfig {
                capacity_per_shard: 0,
            });
        cached.insert_all(indices.iter().cloned()).unwrap();
        assert_eq!(cached.search_batch_with_effects(&batch), expected);
    }

    #[test]
    fn scan_lanes_never_exceed_available_parallelism() {
        let fx = fixture();
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        for shards in [1usize, 2, 3, 4, 7, 16, 32] {
            let engine = SearchEngine::sharded(fx.params.clone(), shards);
            let lanes = engine.scan_lanes();
            assert!(lanes >= 1);
            assert!(
                lanes <= cores,
                "{shards} shards fanned out to {lanes} lanes on a {cores}-core host"
            );
            // Lanes are decoupled from the shard count: the stealing scheduler
            // splits shards into chunk units, so even one shard uses them all.
            assert_eq!(lanes, cores, "default lane count is the host parallelism");
        }
    }

    #[test]
    fn scan_lanes_runtime_knob_clamps_and_rebuilds() {
        let fx = fixture();
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut engine = SearchEngine::sharded(fx.params.clone(), 4);
        // Requests are clamped to [1, cores], from either direction.
        engine.set_scan_lanes(0);
        assert_eq!(engine.scan_lanes(), 1);
        engine.set_scan_lanes(usize::MAX);
        assert_eq!(engine.scan_lanes(), cores);
        for request in [1usize, 2, 3, 4, 64] {
            engine.set_scan_lanes(request);
            assert_eq!(engine.scan_lanes(), request.clamp(1, cores));
        }
        // The builder form composes with the other scheduler knobs, and the
        // knobs survive a clone.
        let engine = SearchEngine::sharded(fx.params.clone(), 2)
            .with_scan_lanes(1)
            .with_scan_scheduler(ScanScheduler::Static)
            .with_steal_granularity(0);
        assert_eq!(engine.scan_lanes(), 1);
        assert_eq!(engine.scan_scheduler(), ScanScheduler::Static);
        assert_eq!(engine.steal_granularity(), 1, "granularity clamps to >= 1");
        let clone = engine.clone();
        assert_eq!(clone.scan_lanes(), 1);
        assert_eq!(clone.scan_scheduler(), ScanScheduler::Static);
        assert_eq!(clone.steal_granularity(), 1);
    }

    #[test]
    fn lane_knob_does_not_change_results() {
        let mut fx = fixture();
        let indices = corpus_indices(&fx, 40);
        let q = query(&mut fx, &["shared"]);
        let mut engine = SearchEngine::sharded(fx.params.clone(), 3);
        engine.insert_all(indices).unwrap();
        let baseline = engine.search_ranked_with_stats(&q);
        for lanes in [1usize, 2, 5] {
            engine.set_scan_lanes(lanes);
            assert_eq!(
                engine.search_ranked_with_stats(&q),
                baseline,
                "lanes={lanes}"
            );
        }
    }

    /// Force a multi-lane pool regardless of the host's core count (the struct
    /// literal bypasses `set_scan_lanes`' clamp) so genuine concurrent stealing
    /// runs even on single-core CI hosts.
    fn forced_lane_engine(
        store: ShardedStore,
        lanes: usize,
        scheduler: ScanScheduler,
        granularity: usize,
    ) -> SearchEngine<ShardedStore> {
        SearchEngine {
            store,
            pool: (lanes > 1).then(|| WorkerPool::new(lanes - 1)),
            lanes,
            scheduler,
            steal_granularity: granularity.max(1),
            cache: None,
            telemetry: Telemetry::new(),
        }
    }

    #[test]
    fn work_stealing_on_forced_multi_lane_pool_matches_sequential_reference() {
        use crate::scanplane::CHUNK;
        // Multi-chunk shards without the (slow) real indexer: raw pseudo-random
        // indices through the geometry-validating insert path. 3 shards × ~2.1
        // chunks at granularity 1 gives ~7 units over 3 lanes, so pops and
        // steals genuinely interleave.
        let params = SystemParams::new(64, 4, 16, 0, 0, vec![1, 2]).unwrap();
        let mut state = 0x9e37_79b9_97f4_a7c1u64;
        let mut next_bits = |n: usize| {
            let bits: Vec<bool> = (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    state >> 63 == 1
                })
                .collect();
            crate::bitindex::BitIndex::from_bits(&bits)
        };
        let mut store = ShardedStore::new(params.clone(), 3);
        for id in 0..(3 * (2 * CHUNK + 100)) as u64 {
            store
                .insert(RankedDocumentIndex {
                    document_id: id,
                    levels: vec![next_bits(64), next_bits(64)],
                })
                .unwrap();
        }
        let reference = SearchEngine::new(store.clone())
            .with_scan_lanes(1)
            .with_scan_scheduler(ScanScheduler::Static);
        let queries: Vec<QueryIndex> = (0..5)
            .map(|_| QueryIndex::from_bits(next_bits(64)))
            .collect();
        let expected: Vec<_> = queries
            .iter()
            .map(|q| reference.search_ranked_with_stats(q))
            .collect();
        let expected_batch = reference.search_batch_with_stats(&queries);
        // Aggregated across every forced work-stealing config below: the lanes
        // must record genuine steals (satellite: the deques are no longer
        // opaque), and recording them must not perturb a single reply byte.
        let mut total_steals = 0u64;
        let mut total_executed = 0u64;
        for lanes in [2usize, 3] {
            for granularity in [1usize, 2, 64] {
                let engine = forced_lane_engine(
                    store.clone(),
                    lanes,
                    ScanScheduler::WorkStealing,
                    granularity,
                );
                engine.set_telemetry_level(TelemetryLevel::Counters);
                for (q, want) in queries.iter().zip(&expected) {
                    assert_eq!(
                        &engine.search_ranked_with_stats(q),
                        want,
                        "lanes={lanes} g={granularity}"
                    );
                }
                assert_eq!(
                    engine.search_batch_with_stats(&queries),
                    expected_batch,
                    "fused batch, lanes={lanes} g={granularity}"
                );
                let snap = engine.metrics_snapshot();
                total_steals += snap.total_steals();
                total_executed += snap.lanes.iter().map(|l| l.executed).sum::<u64>();
            }
            // The static scheduler on the same forced pool agrees too.
            let engine = forced_lane_engine(store.clone(), lanes, ScanScheduler::Static, 8);
            for (q, want) in queries.iter().zip(&expected) {
                assert_eq!(&engine.search_ranked_with_stats(q), want, "static {lanes}");
            }
        }
        // Every unit execution is accounted, and at least one lane stole: the
        // caller lane drains its own deal inline and then eats from workers
        // still waking up, so a forced multi-lane run cannot finish steal-free.
        assert!(
            total_executed > 0,
            "lane counters must see the executed units"
        );
        assert!(
            total_steals > 0,
            "forced multi-lane work-stealing runs must record steals"
        );
    }

    #[test]
    fn top_k_truncates_merged_ranking() {
        let mut fx = fixture();
        let indices = corpus_indices(&fx, 25);
        let mut engine = SearchEngine::sharded(fx.params.clone(), 3);
        engine.insert_all(indices).unwrap();
        let q = query(&mut fx, &["shared"]);
        let all = engine.search(&q);
        let top = engine.search_top(&q, 4);
        assert_eq!(top.len(), 4.min(all.len()));
        assert_eq!(&all[..top.len()], &top[..]);
        for w in all.windows(2) {
            assert!(
                w[0].rank > w[1].rank
                    || (w[0].rank == w[1].rank && w[0].document_id < w[1].document_id)
            );
        }
    }

    #[test]
    fn empty_engine_returns_nothing() {
        let mut fx = fixture();
        let engine = SearchEngine::sharded(fx.params.clone(), 4);
        assert!(engine.is_empty());
        assert_eq!(engine.len(), 0);
        let q = query(&mut fx, &["anything"]);
        assert!(engine.search(&q).is_empty());
        assert!(engine.search_unranked(&q).is_empty());
        assert!(engine.document_index(0).is_none());
    }

    #[test]
    fn sequential_constructor_runs_on_vec_store() {
        let mut fx = fixture();
        let mut engine = SearchEngine::sequential(fx.params.clone());
        let indexer = DocumentIndexer::new(&fx.params, &fx.keys);
        engine.insert(indexer.index_keywords(0, &["kw0"])).unwrap();
        assert_eq!(engine.store().num_shards(), 1);
        let q = query(&mut fx, &["kw0"]);
        assert_eq!(engine.search_unranked(&q), vec![0]);
        assert_eq!(engine.params().index_bits, 448);
        assert_eq!(engine.into_store().len(), 1);
    }

    #[test]
    fn cached_engine_returns_identical_results_and_reports_hits() {
        let mut fx = fixture();
        let indices = corpus_indices(&fx, 40);
        let mut plain = SearchEngine::sharded(fx.params.clone(), 4);
        plain.insert_all(indices.iter().cloned()).unwrap();
        let mut cached =
            SearchEngine::sharded(fx.params.clone(), 4).with_result_cache(CacheConfig::default());
        cached.insert_all(indices.iter().cloned()).unwrap();
        assert!(cached.cache_enabled() && !plain.cache_enabled());

        let q = query(&mut fx, &["shared"]);
        let (m1, s1, e1) = cached.search_ranked_with_effect(&q);
        assert_eq!(e1.shard_misses, 4, "cold cache scans every shard");
        assert_eq!(e1.shard_hits, 0);
        assert!(!e1.fully_cached());
        let (m2, s2, e2) = cached.search_ranked_with_effect(&q);
        assert_eq!(e2.shard_hits, 4, "repeat is served from cache");
        assert_eq!(e2.shard_misses, 0);
        assert!(e2.fully_cached());
        assert_eq!(e2.saved_comparisons, s2.comparisons);

        let (pm, ps) = plain.search_ranked_with_stats(&q);
        assert_eq!(m1, pm);
        assert_eq!(m2, pm);
        assert_eq!(s1, ps, "first (admitting) stats identical");
        assert_eq!(s2, ps, "cached stats identical");

        let stats = cached.cache_stats().unwrap();
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.saved_comparisons, ps.comparisons);
    }

    #[test]
    fn insert_invalidates_only_the_written_shard() {
        let mut fx = fixture();
        let indices = corpus_indices(&fx, 12);
        let mut engine =
            SearchEngine::sharded(fx.params.clone(), 3).with_result_cache(CacheConfig::default());
        engine.insert_all(indices.iter().cloned()).unwrap();
        let q = query(&mut fx, &["shared"]);
        let _ = engine.search_ranked_with_effect(&q); // warm all 3 shards

        // 12 documents round-robin over 3 shards ⇒ the next insert goes to shard 0.
        let indexer = DocumentIndexer::new(&fx.params, &fx.keys);
        engine
            .insert(indexer.index_keywords(100, &["kw1"]))
            .unwrap();

        let (_, _, effect) = engine.search_ranked_with_effect(&q);
        assert_eq!(effect.shard_hits, 2, "two shards stayed cached");
        assert_eq!(effect.shard_misses, 1, "only the written shard rescans");
        assert_eq!(engine.cache_stats().unwrap().invalidations, 1);
    }

    #[test]
    fn batch_uses_cache_and_matches_uncached_batch() {
        let mut fx = fixture();
        let indices = corpus_indices(&fx, 30);
        let mut plain = SearchEngine::sharded(fx.params.clone(), 4);
        plain.insert_all(indices.iter().cloned()).unwrap();
        let mut cached =
            SearchEngine::sharded(fx.params.clone(), 4).with_result_cache(CacheConfig::default());
        cached.insert_all(indices.iter().cloned()).unwrap();

        let queries = vec![
            query(&mut fx, &["shared"]),
            query(&mut fx, &["kw3"]),
            query(&mut fx, &["kw5", "shared"]),
        ];
        // Warm only the first query through the single path.
        let _ = cached.search_ranked_with_effect(&queries[0]);

        let expected = plain.search_batch_with_stats(&queries);
        let got = cached.search_batch_with_effects(&queries);
        assert_eq!(got.len(), expected.len());
        for ((m, s, effect), (em, es)) in got.iter().zip(&expected) {
            assert_eq!(m, em);
            assert_eq!(s, es);
            assert_eq!(effect.shard_hits + effect.shard_misses, 4);
        }
        assert!(got[0].2.fully_cached(), "warmed query fully cached");
        assert_eq!(got[1].2.shard_misses, 4, "cold query scans everywhere");

        // The whole batch again: every (query, shard) pair now hits.
        let again = cached.search_batch_with_effects(&queries);
        for ((m, s, effect), (em, es)) in again.iter().zip(&expected) {
            assert_eq!(m, em);
            assert_eq!(s, es);
            assert!(effect.fully_cached());
        }
    }

    #[test]
    fn store_mut_and_restore_invalidate_everything() {
        let mut fx = fixture();
        let indices = corpus_indices(&fx, 20);
        let mut engine =
            SearchEngine::sharded(fx.params.clone(), 2).with_result_cache(CacheConfig::default());
        engine.insert_all(indices.iter().cloned()).unwrap();
        let q = query(&mut fx, &["shared"]);
        let _ = engine.search_ranked_with_effect(&q);
        assert!(engine.search_ranked_with_effect(&q).2.fully_cached());

        // Direct store access: the engine cannot know what changed, so nothing
        // cached may be served afterwards.
        let _ = engine.store_mut();
        assert_eq!(engine.search_ranked_with_effect(&q).2.shard_hits, 0);

        // A snapshot/restore cycle also invalidates (and restores content).
        let bytes = engine.snapshot();
        let mut restored =
            SearchEngine::sharded(fx.params.clone(), 5).with_result_cache(CacheConfig::default());
        assert_eq!(restored.restore_snapshot(&bytes).unwrap(), 20);
        let (rm, rs, re) = restored.search_ranked_with_effect(&q);
        let (em, es, _) = engine.search_ranked_with_effect(&q);
        assert_eq!(rm, em);
        assert_eq!(rs, es);
        assert_eq!(re.shard_hits, 0, "restored engine starts cold");
    }

    #[test]
    fn clone_keeps_cache_config_but_starts_cold() {
        let mut fx = fixture();
        let indices = corpus_indices(&fx, 10);
        let mut engine =
            SearchEngine::sharded(fx.params.clone(), 2).with_result_cache(CacheConfig {
                capacity_per_shard: 7,
            });
        engine.insert_all(indices).unwrap();
        let q = query(&mut fx, &["shared"]);
        let _ = engine.search(&q);
        let clone = engine.clone();
        assert!(clone.cache_enabled());
        assert_eq!(clone.cache_stats().unwrap(), CacheStats::default());
        let (_, _, effect) = clone.search_ranked_with_effect(&q);
        assert_eq!(effect.shard_hits, 0);
        // And disabling works.
        let mut off = clone;
        off.disable_cache();
        assert!(!off.cache_enabled());
        assert_eq!(off.cache_stats(), None);
    }

    #[test]
    fn cache_maintenance_helpers() {
        let mut fx = fixture();
        let indices = corpus_indices(&fx, 8);
        let mut engine =
            SearchEngine::sharded(fx.params.clone(), 2).with_result_cache(CacheConfig::default());
        engine.insert_all(indices).unwrap();
        let q = query(&mut fx, &["shared"]);
        let _ = engine.search(&q);
        let _ = engine.search(&q);
        assert!(engine.cache_stats().unwrap().hits > 0);
        engine.reset_cache_stats();
        assert_eq!(engine.cache_stats().unwrap(), CacheStats::default());
        engine.clear_cache();
        let (_, _, effect) = engine.search_ranked_with_effect(&q);
        assert_eq!(effect.shard_hits, 0, "cleared cache serves nothing");
    }

    /// A store whose shard 2 cannot be scanned — exercises the panic-context
    /// propagation through the worker pool.
    struct PoisonedStore {
        inner: ShardedStore,
    }

    impl IndexStore for PoisonedStore {
        fn params(&self) -> &SystemParams {
            self.inner.params()
        }
        fn insert(&mut self, index: RankedDocumentIndex) -> Result<(), StoreError> {
            self.inner.insert(index)
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn num_shards(&self) -> usize {
            self.inner.num_shards()
        }
        fn shard_documents(&self, shard: usize) -> &[RankedDocumentIndex] {
            assert_ne!(shard, 2, "shard storage corrupted");
            self.inner.shard_documents(shard)
        }
        fn ordinal(&self, shard: usize, slot: usize) -> u64 {
            self.inner.ordinal(shard, slot)
        }
        fn document_index(&self, document_id: u64) -> Option<&RankedDocumentIndex> {
            self.inner.document_index(document_id)
        }
        fn shard_of(&self, document_id: u64) -> Option<usize> {
            self.inner.shard_of(document_id)
        }
    }

    #[test]
    fn scan_panic_names_the_failing_shard() {
        let mut fx = fixture();
        let mut store = PoisonedStore {
            inner: ShardedStore::new(fx.params.clone(), 4),
        };
        store.insert_all(corpus_indices(&fx, 16)).unwrap();
        let engine = SearchEngine::new(store);
        let q = query(&mut fx, &["shared"]);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| engine.search(&q)));
        let payload = result.expect_err("poisoned shard must panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("string panic payload");
        assert!(
            message.contains("shard 2"),
            "panic must name the failing shard: {message}"
        );
        assert!(
            message.contains("shard storage corrupted"),
            "panic must forward the original message: {message}"
        );
    }
}
