//! Periodic HMAC-key rotation and trapdoor expiration (§4.3).
//!
//! "For improving the security, the data owner can change the HMAC keys periodically. Each
//! trapdoor will have an expiration time. After this time, the user needs to get a new trapdoor
//! for the keyword he previously used in his queries. This will alleviate the risk when the
//! HMAC keys are compromised."
//!
//! [`RotatingKeys`] wraps [`SchemeKeys`] with an epoch counter: each rotation draws fresh bin
//! keys and a fresh random-keyword pool, and trapdoors issued under an older epoch are reported
//! as expired. The data owner re-indexes (or lazily re-uploads) the corpus under the new epoch;
//! [`RotatingKeys::reindex`] performs that step.

use crate::document_index::{DocumentIndexer, RankedDocumentIndex};
use crate::keys::{SchemeKeys, Trapdoor};
use crate::params::SystemParams;
use mkse_textproc::document::Document;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier of a key epoch (0 at setup, incremented on every rotation).
pub type Epoch = u64;

/// A trapdoor tagged with the epoch it was issued under.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochTrapdoor {
    /// The epoch whose bin keys produced this trapdoor.
    pub epoch: Epoch,
    /// The trapdoor itself.
    pub trapdoor: Trapdoor,
}

/// The data owner's rotating key material.
pub struct RotatingKeys {
    params: SystemParams,
    current: SchemeKeys,
    epoch: Epoch,
}

impl RotatingKeys {
    /// Set up epoch 0.
    pub fn new<R: Rng + ?Sized>(params: SystemParams, rng: &mut R) -> Self {
        let current = SchemeKeys::generate(&params, rng);
        RotatingKeys {
            params,
            current,
            epoch: 0,
        }
    }

    /// The current epoch number.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The key material of the current epoch.
    pub fn keys(&self) -> &SchemeKeys {
        &self.current
    }

    /// The scheme parameters (fixed across rotations — only keys change).
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// Rotate to a fresh epoch: new bin keys, new random-keyword pool. Previously issued
    /// trapdoors become invalid ([`RotatingKeys::is_current`] returns `false` for them).
    pub fn rotate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Epoch {
        self.current = SchemeKeys::generate(&self.params, rng);
        self.epoch += 1;
        self.epoch
    }

    /// Issue a trapdoor under the current epoch.
    pub fn issue_trapdoor(&self, keyword: &str) -> EpochTrapdoor {
        EpochTrapdoor {
            epoch: self.epoch,
            trapdoor: self.current.trapdoor_for(&self.params, keyword),
        }
    }

    /// Issue the current epoch's random-pool trapdoors.
    pub fn issue_random_pool(&self) -> Vec<EpochTrapdoor> {
        self.current
            .random_pool_trapdoors(&self.params)
            .into_iter()
            .map(|trapdoor| EpochTrapdoor {
                epoch: self.epoch,
                trapdoor,
            })
            .collect()
    }

    /// `true` iff the trapdoor was issued under the current epoch (i.e. has not expired).
    pub fn is_current(&self, trapdoor: &EpochTrapdoor) -> bool {
        trapdoor.epoch == self.epoch
    }

    /// Re-index a corpus under the current epoch's keys. The server replaces its stored
    /// indices with the result; encrypted documents themselves need no re-encryption because
    /// rotation only touches the *search* keys, not the per-document symmetric keys.
    pub fn reindex(&self, documents: &[Document]) -> Vec<RankedDocumentIndex> {
        let indexer = DocumentIndexer::new(&self.params, &self.current);
        indexer.index_documents(documents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use crate::search::CloudIndex;
    use mkse_textproc::document::TermFrequencies;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn corpus() -> Vec<Document> {
        vec![
            Document::from_terms(
                0,
                TermFrequencies::from_pairs([("alpha", 3u32), ("beta", 1)]),
            ),
            Document::from_terms(1, TermFrequencies::from_pairs([("gamma", 2u32)])),
        ]
    }

    #[test]
    fn rotation_increments_epoch_and_changes_keys() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut rotating = RotatingKeys::new(SystemParams::default(), &mut rng);
        assert_eq!(rotating.epoch(), 0);
        let before = rotating.issue_trapdoor("alpha");
        let new_epoch = rotating.rotate(&mut rng);
        assert_eq!(new_epoch, 1);
        assert_eq!(rotating.epoch(), 1);
        let after = rotating.issue_trapdoor("alpha");
        // Same keyword, different epoch keys ⇒ different trapdoor bits.
        assert_ne!(before.trapdoor, after.trapdoor);
        assert_ne!(before.epoch, after.epoch);
    }

    #[test]
    fn expired_trapdoors_are_detected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut rotating = RotatingKeys::new(SystemParams::default(), &mut rng);
        let old = rotating.issue_trapdoor("alpha");
        assert!(rotating.is_current(&old));
        rotating.rotate(&mut rng);
        assert!(!rotating.is_current(&old));
        assert!(rotating.is_current(&rotating.issue_trapdoor("alpha")));
    }

    #[test]
    fn queries_with_stale_trapdoors_fail_against_the_reindexed_store() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = SystemParams::default();
        let mut rotating = RotatingKeys::new(params.clone(), &mut rng);
        let docs = corpus();

        // Epoch 0: index, query, match.
        let mut cloud = CloudIndex::new(params.clone());
        cloud.insert_all(rotating.reindex(&docs)).unwrap();
        let old_td = rotating.issue_trapdoor("alpha");
        let old_query = QueryBuilder::new(&params)
            .add_trapdoor(&old_td.trapdoor)
            .build(&mut rng);
        assert!(cloud.search_unranked(&old_query).contains(&0));

        // Rotate and re-index.
        rotating.rotate(&mut rng);
        let mut cloud = CloudIndex::new(params.clone());
        cloud.insert_all(rotating.reindex(&docs)).unwrap();

        // The stale trapdoor no longer matches (overwhelmingly likely: its zero positions are
        // unrelated to the new index), while a freshly issued one does.
        assert!(!cloud.search_unranked(&old_query).contains(&0));
        let fresh = rotating.issue_trapdoor("alpha");
        let fresh_query = QueryBuilder::new(&params)
            .add_trapdoor(&fresh.trapdoor)
            .build(&mut rng);
        assert!(cloud.search_unranked(&fresh_query).contains(&0));
    }

    #[test]
    fn random_pool_is_reissued_per_epoch() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut rotating = RotatingKeys::new(SystemParams::default(), &mut rng);
        let pool0 = rotating.issue_random_pool();
        rotating.rotate(&mut rng);
        let pool1 = rotating.issue_random_pool();
        assert_eq!(pool0.len(), pool1.len());
        assert!(pool0.iter().all(|t| t.epoch == 0));
        assert!(pool1.iter().all(|t| t.epoch == 1));
        assert_ne!(pool0[0].trapdoor, pool1[0].trapdoor);
    }

    #[test]
    fn params_are_stable_across_rotations() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut rotating = RotatingKeys::new(SystemParams::with_five_levels(), &mut rng);
        rotating.rotate(&mut rng);
        rotating.rotate(&mut rng);
        assert_eq!(rotating.params().rank_levels(), 5);
        assert_eq!(rotating.epoch(), 2);
        assert_eq!(rotating.keys().num_bins(), rotating.params().num_bins);
    }
}
