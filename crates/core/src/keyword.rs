//! Keyword index generation (§4.1).
//!
//! Each keyword `w` is mapped, under a secret bin key, to an `l = r·d`-bit PRF output
//! `x = HMAC_k(w)`, viewed as `r` digits of `d` bits each. Digit `j` collapses to index bit
//! `j` by Eq. (1): the bit is 0 iff the digit is all-zero (probability `2^-d` per digit),
//! 1 otherwise. The result is the keyword's `r`-bit index `I_w`, which doubles as the
//! keyword's *trapdoor* (footnote 3 of the paper).

use crate::bitindex::BitIndex;
use crate::params::SystemParams;
use mkse_crypto::prf::LongPrf;

/// Compute the keyword index `I_w` for `keyword` under the secret `bin_key` (Eq. 1).
///
/// The data owner calls this during index generation; an authorized user calls it after
/// receiving the bin key to build trapdoors locally (§4.2).
pub fn keyword_index(params: &SystemParams, bin_key: &[u8], keyword: &str) -> BitIndex {
    let prf = LongPrf::new(bin_key);
    keyword_index_with_prf(params, &prf, keyword)
}

/// Same as [`keyword_index`] but reuses an already-constructed PRF (saves the HMAC key
/// schedule when indexing many keywords under the same bin key).
pub fn keyword_index_with_prf(params: &SystemParams, prf: &LongPrf, keyword: &str) -> BitIndex {
    let bits = prf.evaluate_bits(keyword.as_bytes(), params.prf_output_bits());
    reduce_digits(params, &bits)
}

/// The GF(2^d) → GF(2) reduction of Eq. (1): bit `j` of the index is 0 iff digit `j`
/// (bits `j·d .. (j+1)·d` of the PRF output) is all-zero.
pub fn reduce_digits(params: &SystemParams, prf_bits: &[bool]) -> BitIndex {
    let r = params.index_bits;
    let d = params.digit_bits;
    assert!(
        prf_bits.len() >= r * d,
        "PRF output too short: {} bits for r*d = {}",
        prf_bits.len(),
        r * d
    );
    let mut idx = BitIndex::all_zeros(r);
    for j in 0..r {
        let digit = &prf_bits[j * d..(j + 1) * d];
        if digit.iter().any(|&b| b) {
            idx.set(j, true);
        }
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn params() -> SystemParams {
        SystemParams::default()
    }

    #[test]
    fn index_has_r_bits() {
        let idx = keyword_index(&params(), b"bin-key", "network");
        assert_eq!(idx.len(), 448);
    }

    #[test]
    fn deterministic_for_same_key_and_keyword() {
        let p = params();
        assert_eq!(
            keyword_index(&p, b"key", "cloud"),
            keyword_index(&p, b"key", "cloud")
        );
    }

    #[test]
    fn different_keywords_give_different_indices() {
        let p = params();
        assert_ne!(
            keyword_index(&p, b"key", "cloud"),
            keyword_index(&p, b"key", "server")
        );
    }

    #[test]
    fn different_keys_give_different_indices() {
        // This is what makes the scheme trapdoor-based: without the bin key the index cannot
        // be reproduced (contrast with the Wang et al. shared-hash baseline).
        let p = params();
        assert_ne!(
            keyword_index(&p, b"key-1", "cloud"),
            keyword_index(&p, b"key-2", "cloud")
        );
    }

    #[test]
    fn zero_fraction_is_roughly_one_over_2d() {
        // Each bit is 0 with probability 2^-d = 1/64, so a keyword index should have about
        // r/64 = 7 zero bits. Averaged over many keywords this must be close to 7.
        let p = params();
        let total_zeros: usize = (0..200)
            .map(|i| keyword_index(&p, b"bin", &format!("word{i}")).count_zeros())
            .sum();
        let avg = total_zeros as f64 / 200.0;
        assert!((avg - 7.0).abs() < 1.5, "average zeros = {avg}");
    }

    #[test]
    fn reduce_digits_known_pattern() {
        let p = SystemParams::new(4, 2, 1, 0, 0, vec![1]).unwrap();
        // Digits: 00 | 01 | 10 | 11 → bits 0,1,1,1
        let bits = [false, false, false, true, true, false, true, true];
        let idx = reduce_digits(&p, &bits);
        assert!(!idx.get(0));
        assert!(idx.get(1));
        assert!(idx.get(2));
        assert!(idx.get(3));
    }

    #[test]
    #[should_panic(expected = "PRF output too short")]
    fn reduce_digits_rejects_short_input() {
        let p = SystemParams::new(4, 2, 1, 0, 0, vec![1]).unwrap();
        let _ = reduce_digits(&p, &[false; 7]);
    }

    #[test]
    fn prf_reuse_matches_fresh_computation() {
        let p = params();
        let prf = LongPrf::new(b"bin-key-42");
        assert_eq!(
            keyword_index_with_prf(&p, &prf, "privacy"),
            keyword_index(&p, b"bin-key-42", "privacy")
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_all_zero_digits_iff_zero_bit(seed in 0u64..1000) {
            // Explicitly check Eq. (1) on small random parameters.
            let p = SystemParams::new(32, 3, 1, 0, 0, vec![1]).unwrap();
            let keyword = format!("kw{seed}");
            let prf = LongPrf::new(b"k");
            let bits = prf.evaluate_bits(keyword.as_bytes(), p.prf_output_bits());
            let idx = reduce_digits(&p, &bits);
            for j in 0..p.index_bits {
                let digit_is_zero = bits[j * 3..(j + 1) * 3].iter().all(|b| !b);
                prop_assert_eq!(idx.get(j), !digit_is_zero);
            }
        }
    }
}
