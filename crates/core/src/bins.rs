//! Keyword bins and the public `GetBin` function (§4.2).
//!
//! Keywords are partitioned into `δ` bins by a *public* uniform hash. The data owner keeps one
//! secret HMAC key per bin; when a user asks for the trapdoor of a keyword, he only reveals the
//! keyword's **bin id**, and receives that bin's key — from which he can compute the trapdoors
//! of *every* keyword in the bin, which is exactly the obfuscation the scheme wants (the data
//! owner learns the bin, not the keyword). The parameter `ϖ` (`min_bin_occupancy` here) is the
//! smallest acceptable number of keywords per bin.

use crate::params::SystemParams;
use mkse_crypto::sha256::Sha256;
use serde::{Deserialize, Serialize};

/// Identifier of a trapdoor bin, in `0..δ`.
pub type BinId = u32;

/// The public `GetBin` function: a uniform hash of the keyword reduced modulo the number of
/// bins. Everyone (data owner, users, even the server) can evaluate it; it carries no secret.
pub fn get_bin(params: &SystemParams, keyword: &str) -> BinId {
    let digest = Sha256::digest(keyword.as_bytes());
    let value = u32::from_be_bytes([digest[0], digest[1], digest[2], digest[3]]);
    value % params.num_bins as u32
}

/// The bin ids a user must request to cover the given keywords (deduplicated, sorted).
///
/// §8: "if two query keywords happen to map to the same bin, then sending only one of them
/// will be sufficient" — deduplication is part of the protocol's communication cost model.
pub fn bins_for_keywords(params: &SystemParams, keywords: &[&str]) -> Vec<BinId> {
    let mut bins: Vec<BinId> = keywords.iter().map(|k| get_bin(params, k)).collect();
    bins.sort_unstable();
    bins.dedup();
    bins
}

/// Statistics about how a keyword population distributes over the bins; used to check the
/// `ϖ` security parameter ("δ must be chosen deliberately such that there are at least ϖ
/// items in each bin").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinOccupancy {
    /// Number of keywords assigned to each bin.
    pub counts: Vec<usize>,
}

impl BinOccupancy {
    /// Compute the occupancy of every bin for a keyword universe.
    pub fn measure<'a, I>(params: &SystemParams, keywords: I) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut counts = vec![0usize; params.num_bins];
        for kw in keywords {
            counts[get_bin(params, kw) as usize] += 1;
        }
        BinOccupancy { counts }
    }

    /// The least-populated bin's size (must be ≥ ϖ for the configuration to be acceptable).
    pub fn min_occupancy(&self) -> usize {
        self.counts.iter().copied().min().unwrap_or(0)
    }

    /// The most-populated bin's size.
    pub fn max_occupancy(&self) -> usize {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Mean occupancy.
    pub fn mean_occupancy(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.counts.iter().sum::<usize>() as f64 / self.counts.len() as f64
    }

    /// True if every bin holds at least `min_required` (ϖ) keywords.
    pub fn satisfies_security_parameter(&self, min_required: usize) -> bool {
        self.min_occupancy() >= min_required
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SystemParams {
        SystemParams::default()
    }

    #[test]
    fn get_bin_is_in_range_and_deterministic() {
        let p = params();
        for kw in ["cloud", "privacy", "search", "keyword", "a", ""] {
            let bin = get_bin(&p, kw);
            assert!(bin < p.num_bins as u32, "{kw} -> {bin}");
            assert_eq!(bin, get_bin(&p, kw));
        }
    }

    #[test]
    fn different_bin_counts_change_assignment_range() {
        let mut p = params();
        p.num_bins = 7;
        for i in 0..100 {
            assert!(get_bin(&p, &format!("kw{i}")) < 7);
        }
    }

    #[test]
    fn bins_for_keywords_dedups_and_sorts() {
        let p = params();
        let kws = ["alpha", "beta", "alpha", "gamma"];
        let bins = bins_for_keywords(&p, &kws);
        let mut sorted = bins.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(bins, sorted);
        assert!(bins.len() <= 3);
    }

    #[test]
    fn occupancy_is_roughly_uniform() {
        // 10 000 keywords over 100 bins: expected 100 per bin; the public hash should keep
        // every bin within a loose band (GetBin "has uniform distribution", §4.2).
        let p = params();
        let keywords: Vec<String> = (0..10_000).map(|i| format!("keyword-{i}")).collect();
        let occ = BinOccupancy::measure(&p, keywords.iter().map(|s| s.as_str()));
        assert_eq!(occ.counts.len(), 100);
        assert_eq!(occ.counts.iter().sum::<usize>(), 10_000);
        assert!((occ.mean_occupancy() - 100.0).abs() < 1e-9);
        assert!(occ.min_occupancy() > 50, "min = {}", occ.min_occupancy());
        assert!(occ.max_occupancy() < 160, "max = {}", occ.max_occupancy());
        assert!(occ.satisfies_security_parameter(50));
        assert!(!occ.satisfies_security_parameter(1000));
    }

    #[test]
    fn occupancy_of_empty_universe() {
        let occ = BinOccupancy::measure(&params(), std::iter::empty());
        assert_eq!(occ.min_occupancy(), 0);
        assert_eq!(occ.max_occupancy(), 0);
        assert_eq!(occ.mean_occupancy(), 0.0);
    }
}
