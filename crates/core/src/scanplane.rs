//! The block-major **scan plane**: a bit-sliced, contiguous arena for the server's
//! hottest loop.
//!
//! The paper's server cost is dominated by Eq. (3)/Algorithm 1: σ r-bit comparisons
//! per query. The storage layer keeps one heap-allocated [`crate::bitindex::BitIndex`]
//! per level per document, so the reference scan ([`crate::search::scan_ranked`])
//! chases two pointers per document over scattered allocations. A [`ScanPlane`]
//! re-packs the same bits for linear sweeps:
//!
//! * **Level-1 arena** (`base`): one contiguous `Vec<u64>`, laid out block-major
//!   within fixed-size chunks of [`CHUNK`] documents — column `b` of a chunk holds
//!   64-bit block `b` of every document in the chunk, documents in slot order. A
//!   query sweeps one column at a time over memory the prefetcher can stream, and
//!   appending a document touches exactly η·⌈r/64⌉ words (no re-layout).
//! * **Upper-level arena** (`upper`): levels 2..η packed document-major, walked
//!   only for the (few) documents that matched level 1 — Algorithm 1's rank walk.
//! * **Query-aware block pruning**: the matching predicate is
//!   `doc AND NOT query == 0`. Any block where the query is all-ones contributes
//!   nothing (`NOT query == 0`), so it is skipped *for the whole shard*. Only the
//!   query's **active blocks** — those with at least one zero among the valid `r`
//!   bits — are swept.
//!
//! Semantics are **bit-for-bit identical** to the reference scan: matches come back
//! in slot (scan) order with the same ranks, and [`SearchStats`] counts whole r-bit
//! comparisons exactly as the reference does — block pruning happens *inside* one
//! r-bit comparison and never changes the count (level 1 contributes one comparison
//! per stored document; each upper level walked contributes one more, failing level
//! included).
//!
//! **Fused multi-query sweeps**: [`ScanPlane::scan_ranked_batch`] evaluates a
//! whole batch of queries against each 1024-document chunk while its columns are
//! hot. A single-query sweep is bandwidth-bound — every r-bit column word is
//! fetched from DRAM, used once, and evicted before the next query arrives — so a
//! b-query batch executed query-at-a-time pays b full passes over the same arena.
//! The fused kernel inverts the loop nest (chunk-major outside, query inside, the
//! column-at-a-time discipline of vectorized engines): chunk `c`'s columns are
//! streamed from memory once, every query's active blocks are tested against them
//! into a query-major reject-accumulator matrix (one [`CHUNK`]-word row per
//! query), and only then does the sweep advance to chunk `c + 1`. The arena
//! crosses the memory bus once per batch instead of once per query; the per-query
//! work (identical word count, identical unrolled kernels) becomes compute-bound.
//! Upper levels are still walked doc-major, per query, only on match.
//!
//! **Chunk-range entry points**: every scan has a range-restricted form
//! ([`ScanPlane::scan_ranked_chunks`], [`ScanPlane::scan_ranked_batch_chunks`])
//! that sweeps only `chunks.start..chunks.end` of the plane's [`CHUNK`]-document
//! chunks. These are the work units of the engine's work-stealing scheduler: a
//! shard's plane is carved into fixed-size chunk ranges, each range is scanned
//! independently (same active-block pruning, same fused register tiles — the
//! pruning work is per-query, not per-range, and a range's sweep is exactly the
//! full sweep's iterations over those chunks), and the per-range results
//! concatenate back — matches in slot order, [`SearchStats`] summed — to the
//! byte-identical whole-shard result, because the full scan already processes
//! chunks independently in ascending order and counts one level-1 comparison
//! per stored document (ranges partition the documents) plus one per upper
//! level walked (walks are per-matching-slot, which ranges partition too).
//!
//! **Leakage note (§6)**: pruning is a function of the query index bytes alone —
//! which the server already holds — plus the public geometry `r`. It reveals
//! nothing beyond the search-pattern observation the paper's §6 adversary is
//! already granted; the per-document work it skips is data-independent (the same
//! blocks are skipped for every document in the shard). The same holds for the
//! fused batch sweep: it reads exactly the query bytes and public geometry the
//! server already observes for b sequential queries — batching changes the
//! *order* of memory accesses, never what is observed.

use crate::bitindex::BitIndex;
use crate::document_index::RankedDocumentIndex;
use crate::search::{SearchMatch, SearchStats};
use std::cell::RefCell;

/// Documents per block-major chunk. With the paper's r = 448 (7 blocks) a chunk's
/// columns span 56 KiB — resident in L2 while its 8 KiB reject accumulator stays
/// in L1 — and appending never moves previously packed blocks.
pub const CHUNK: usize = 1024;

/// A per-shard, block-major (bit-sliced) copy of the shard's document indices,
/// maintained by the storage layer on every insert and consumed by the engine's
/// shard scans. See the [module docs](self) for the layout.
#[derive(Clone, Debug, Default)]
pub struct ScanPlane {
    /// Bits per level (r). Zero until the first document is packed.
    bits: usize,
    /// Ranking levels (η). Zero until the first document is packed.
    levels: usize,
    /// 64-bit blocks per level: ⌈r/64⌉.
    blocks: usize,
    /// Document id of every slot, in slot order.
    ids: Vec<u64>,
    /// Level-1 blocks, chunked block-major:
    /// `base[chunk·CHUNK·blocks + b·CHUNK + i]` is block `b` of slot `chunk·CHUNK + i`.
    base: Vec<u64>,
    /// Levels 2..η, document-major:
    /// `upper[(slot·(η−1) + lvl)·blocks + b]` is block `b` of level `lvl + 2` of `slot`.
    upper: Vec<u64>,
}

/// One active column of a query: the block position and the query's negated
/// (zero-selecting) word there, already masked to the valid `r` bits.
type ActiveBlock = (usize, u64);

/// Reusable per-worker scan buffers: the active-block lists (flattened, one span
/// per query) and the reject-accumulator matrix (one [`CHUNK`]-word row per
/// query). Scans used to allocate a fresh active-block `Vec` per query and —
/// in the batch path — an accumulator per query per pass; the engine's scan
/// lanes are persistent threads, so one thread-local scratch per worker turns
/// every scan after the first into an allocation-free sweep (visible on the
/// b = 1 profile too).
#[derive(Default)]
struct ScanScratch {
    /// Every query's active blocks, back to back.
    active: Vec<ActiveBlock>,
    /// Per-query spans into `active`: query `q` owns `active[ranges[q].0..ranges[q].1]`.
    ranges: Vec<(usize, usize)>,
    /// Query-major reject-accumulator matrix: row `q` is `acc[q·CHUNK..(q+1)·CHUNK]`.
    acc: Vec<u64>,
    /// Per-group fused active lists (the union of each [`GROUP`]-query group's
    /// active blocks, inactive lanes zero-padded), back to back. Each lane's
    /// negated word is stored **pre-broadcast** (four copies) so the kernel's
    /// AND folds a plain vector load instead of re-broadcasting per strip.
    unions: Vec<(usize, GroupNq)>,
    /// Per-group spans into `unions`.
    union_ranges: Vec<(usize, usize)>,
    /// Per-query match-summary bitmaps for the chunk being swept (one bit per
    /// strip), written by the kernel while the tile is register-resident.
    summaries: Vec<MatchSummary>,
}

thread_local! {
    /// One scratch per thread — i.e. one per persistent engine scan lane.
    static SCRATCH: RefCell<ScanScratch> = RefCell::new(ScanScratch::default());
}

/// Run `f` with the calling thread's scan scratch. Scans never nest (the plane
/// never calls back into itself while the scratch is borrowed), so the borrow is
/// always free.
fn with_scratch<T>(f: impl FnOnce(&mut ScanScratch) -> T) -> T {
    SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

impl ScanPlane {
    /// An empty plane. Geometry (r, η) is adopted from the first packed document,
    /// so a plane works for any store the geometry-validating insert path feeds it.
    pub fn new() -> Self {
        ScanPlane::default()
    }

    /// Number of packed documents.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if no documents are packed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of [`CHUNK`]-document chunks (the last may be partial) — the unit
    /// grid the chunk-range entry points and the engine's work-stealing
    /// scheduler carve into ranges.
    pub fn num_chunks(&self) -> usize {
        self.ids.len().div_ceil(CHUNK)
    }

    /// Clamp a chunk range to the plane's grid (empty stays empty, and
    /// `start > end` collapses to empty).
    fn clamp_chunks(&self, chunks: std::ops::Range<usize>) -> std::ops::Range<usize> {
        let n = self.num_chunks();
        let start = chunks.start.min(n);
        start..chunks.end.clamp(start, n)
    }

    /// Documents covered by an (already clamped) chunk range.
    fn docs_in(&self, chunks: &std::ops::Range<usize>) -> usize {
        if chunks.is_empty() {
            0
        } else {
            (chunks.end * CHUNK).min(self.ids.len()) - chunks.start * CHUNK
        }
    }

    /// Documents a chunk range covers, after clamping it to the plane's grid —
    /// the public form of the sizing the chunk-range scans use. Telemetry
    /// consumers divide a recorded `unit_scan` duration by this to normalize
    /// per-unit timings to documents swept (the last chunk may be partial, so
    /// `range.len() * CHUNK` over-counts at the plane's tail).
    pub fn docs_in_chunks(&self, chunks: std::ops::Range<usize>) -> usize {
        let chunks = self.clamp_chunks(chunks);
        self.docs_in(&chunks)
    }

    /// Bits per level (r); zero while the plane is empty.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Ranking levels (η); zero while the plane is empty.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Document ids in slot order (the shard's insertion order).
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Append one document's blocks to the arenas. The caller (the storage layer)
    /// has already geometry-validated the index; the assertions here guard the
    /// arena layout itself.
    pub fn push(&mut self, index: &RankedDocumentIndex) {
        if self.ids.is_empty() {
            self.bits = index.base_level().len();
            self.levels = index.num_levels();
            self.blocks = self.bits.div_ceil(64);
        }
        assert_eq!(index.num_levels(), self.levels, "level count mismatch");
        assert_eq!(index.base_level().len(), self.bits, "index size mismatch");

        let slot = self.ids.len();
        if slot.is_multiple_of(CHUNK) {
            // Open a fresh chunk: zero columns the tail slots never dirty.
            self.base.resize(self.base.len() + CHUNK * self.blocks, 0);
        }
        let chunk_off = (slot / CHUNK) * CHUNK * self.blocks;
        let i = slot % CHUNK;
        for (b, &block) in index.base_level().as_blocks().iter().enumerate() {
            self.base[chunk_off + b * CHUNK + i] = block;
        }
        for level in index.levels.iter().skip(1) {
            assert_eq!(level.len(), self.bits, "index size mismatch");
            self.upper.extend_from_slice(level.as_blocks());
        }
        self.ids.push(index.document_id);
    }

    /// Append the query's active block list to `out`: every block position where
    /// the query has at least one zero among the valid `r` bits, paired with the
    /// negated query word (masked to valid bits). A block absent from this list
    /// can never reject any document — `doc AND NOT query` is zero there for the
    /// whole shard. Appending into a caller-owned buffer keeps the hot path free
    /// of per-query allocations (see [`ScanScratch`]).
    fn active_blocks_into(&self, query: &BitIndex, out: &mut Vec<ActiveBlock>) {
        assert_eq!(query.len(), self.bits, "length mismatch");
        let tail = self.bits % 64;
        out.extend(query.as_blocks().iter().enumerate().filter_map(|(b, &q)| {
            let valid = if tail != 0 && b == self.blocks - 1 {
                (1u64 << tail) - 1
            } else {
                u64::MAX
            };
            let nq = !q & valid;
            (nq != 0).then_some((b, nq))
        }));
    }

    /// The query's active block list as an owned `Vec` (test/diagnostic helper;
    /// the scan paths use [`ScanPlane::active_blocks_into`] with reused buffers).
    #[cfg(test)]
    fn active_blocks(&self, query: &BitIndex) -> Vec<ActiveBlock> {
        let mut out = Vec::new();
        self.active_blocks_into(query, &mut out);
        out
    }

    /// Sweep one chunk's active columns into the reject accumulator: after the
    /// call, `acc[i] == 0` iff document `i` of the chunk matches the query at
    /// level 1. The first column initializes the accumulator (no pre-zeroing);
    /// with no active columns every document matches.
    fn sweep_chunk(&self, chunk: usize, docs: usize, active: &[ActiveBlock], acc: &mut [u64]) {
        let cols = &self.base[chunk * CHUNK * self.blocks..];
        match active.split_first() {
            None => acc[..docs].fill(0),
            Some((&(b0, nq0), rest)) => {
                and_into(&mut acc[..docs], &cols[b0 * CHUNK..b0 * CHUNK + docs], nq0);
                for &(b, nq) in rest {
                    or_and_into(&mut acc[..docs], &cols[b * CHUNK..b * CHUNK + docs], nq);
                }
            }
        }
    }

    /// Algorithm 1's upward walk for one matching document, on the document-major
    /// upper arena. Counts one r-bit comparison per level walked (failing level
    /// included), exactly like the reference loop.
    fn walk_upper(&self, slot: usize, active: &[ActiveBlock], stats: &mut SearchStats) -> u32 {
        let mut rank = 1u32;
        let doc_off = slot * (self.levels - 1) * self.blocks;
        for lvl in 0..self.levels - 1 {
            stats.comparisons += 1;
            let level = &self.upper[doc_off + lvl * self.blocks..doc_off + (lvl + 1) * self.blocks];
            if active.iter().all(|&(b, nq)| level[b] & nq == 0) {
                rank += 1;
            } else {
                break;
            }
        }
        rank
    }

    /// The single home of the chunk-sweep protocol: prune, sweep each chunk's
    /// active columns through the reject accumulator, and visit every matching
    /// slot in scan order (the active list is passed along for rank walks).
    /// Both public scans are thin consumers, so the iteration and accumulator
    /// scheme can never diverge between the ranked and unranked paths.
    fn for_each_matching_slot<F: FnMut(usize, &[ActiveBlock])>(&self, query: &BitIndex, visit: F) {
        self.for_each_matching_slot_in(query, 0..self.num_chunks(), visit)
    }

    /// [`ScanPlane::for_each_matching_slot`] restricted to a chunk range: the
    /// same pruned sweep over `chunks.start..chunks.end` only. Slots are global
    /// (`chunk · CHUNK + i`), so range results splice back verbatim.
    fn for_each_matching_slot_in<F: FnMut(usize, &[ActiveBlock])>(
        &self,
        query: &BitIndex,
        chunks: std::ops::Range<usize>,
        mut visit: F,
    ) {
        if self.ids.is_empty() || chunks.is_empty() {
            return;
        }
        with_scratch(|scratch| {
            scratch.active.clear();
            self.active_blocks_into(query, &mut scratch.active);
            scratch.acc.resize(CHUNK.max(scratch.acc.len()), 0);
            let (active, acc) = (&scratch.active, &mut scratch.acc[..CHUNK]);
            for chunk in chunks {
                let docs = (self.ids.len() - chunk * CHUNK).min(CHUNK);
                self.sweep_chunk(chunk, docs, active, acc);
                for (i, &a) in acc[..docs].iter().enumerate() {
                    if a == 0 {
                        visit(chunk * CHUNK + i, active);
                    }
                }
            }
        })
    }

    /// The ranked scan of Algorithm 1 over the whole plane — the plane-backed
    /// equivalent of [`crate::search::scan_ranked`] over the shard's documents.
    /// Matches come back in slot (scan) order with identical ranks and identical
    /// [`SearchStats`]; callers sort with [`crate::search::sort_matches`].
    pub fn scan_ranked(&self, query: &BitIndex) -> (Vec<SearchMatch>, SearchStats) {
        self.scan_ranked_chunks(query, 0..self.num_chunks())
    }

    /// [`ScanPlane::scan_ranked`] restricted to a chunk range — one work unit of
    /// the engine's work-stealing scheduler. The range's sweep is exactly the
    /// full scan's iterations over those chunks (pruning, accumulator, rank
    /// walks), so concatenating a partition's matches in range order and summing
    /// its [`SearchStats`] (level 1 counts one comparison per document in range)
    /// reproduces [`ScanPlane::scan_ranked`] byte for byte. Out-of-bounds ranges
    /// are clamped to the grid.
    pub fn scan_ranked_chunks(
        &self,
        query: &BitIndex,
        chunks: std::ops::Range<usize>,
    ) -> (Vec<SearchMatch>, SearchStats) {
        let chunks = self.clamp_chunks(chunks);
        let mut stats = SearchStats {
            comparisons: self.docs_in(&chunks) as u64,
            matches: 0,
        };
        let mut matches = Vec::new();
        self.for_each_matching_slot_in(query, chunks, |slot, active| {
            stats.matches += 1;
            let rank = if self.levels > 1 {
                self.walk_upper(slot, active, &mut stats)
            } else {
                1
            };
            matches.push(SearchMatch {
                document_id: self.ids[slot],
                rank,
            });
        });
        (matches, stats)
    }

    /// Slots (in scan order) whose level-1 index matches the query — the
    /// plane-backed filter behind unranked search and metadata retrieval.
    pub fn matching_slots(&self, query: &BitIndex) -> Vec<usize> {
        let mut slots = Vec::new();
        self.for_each_matching_slot(query, |slot, _| slots.push(slot));
        slots
    }

    /// The **fused multi-query sweep**: Algorithm 1 for every query of a batch in
    /// one pass over the plane, amortizing the arena's memory traffic across the
    /// whole batch (see the [module docs](self)).
    ///
    /// Each chunk's columns are streamed once; every query's active blocks are
    /// swept against them while they are cache-hot, each query rejecting into its
    /// own row of a query-major accumulator matrix; matching documents then walk
    /// the doc-major upper levels per query, in slot order. The result is
    /// **byte-identical** to `queries.len()` independent [`ScanPlane::scan_ranked`]
    /// calls — same matches, same scan order, same per-query [`SearchStats`]
    /// (the batch changes memory access order, not what is computed; the
    /// release-mode proptest in `scanplane_equivalence.rs` holds it to that).
    pub fn scan_ranked_batch(&self, queries: &[&BitIndex]) -> Vec<(Vec<SearchMatch>, SearchStats)> {
        self.scan_ranked_batch_chunks(queries, 0..self.num_chunks())
    }

    /// [`ScanPlane::scan_ranked_batch`] restricted to a chunk range — the fused
    /// work unit of the engine's work-stealing scheduler. Exactly the full fused
    /// sweep's iterations over those chunks (group unions, register tiles, match
    /// summaries, rank walks), so a partition's per-query results concatenate
    /// and sum back to [`ScanPlane::scan_ranked_batch`] byte for byte, query by
    /// query. Out-of-bounds ranges are clamped to the grid.
    pub fn scan_ranked_batch_chunks(
        &self,
        queries: &[&BitIndex],
        chunks: std::ops::Range<usize>,
    ) -> Vec<(Vec<SearchMatch>, SearchStats)> {
        let n = queries.len();
        if n == 0 {
            return Vec::new();
        }
        let chunks = self.clamp_chunks(chunks);
        if n == 1 {
            // A batch of one is exactly the single-query sweep; skip the group
            // machinery (the two paths are byte-identical, this is just faster).
            return vec![self.scan_ranked_chunks(queries[0], chunks)];
        }
        if self.ids.is_empty() || chunks.is_empty() {
            // Empty plane (geometry unknown; match the single-query contract for
            // any query length) or empty range: empty matches, zeroed stats.
            return (0..n)
                .map(|_| (Vec::new(), SearchStats::default()))
                .collect();
        }
        let mut results: Vec<(Vec<SearchMatch>, SearchStats)> = (0..n)
            .map(|_| {
                (
                    Vec::new(),
                    SearchStats {
                        comparisons: self.docs_in(&chunks) as u64,
                        matches: 0,
                    },
                )
            })
            .collect();
        with_scratch(|scratch| {
            scratch.active.clear();
            scratch.ranges.clear();
            for query in queries {
                let start = scratch.active.len();
                self.active_blocks_into(query, &mut scratch.active);
                scratch.ranges.push((start, scratch.active.len()));
            }
            // Fuse the per-query active lists into per-GROUP union lists: one
            // entry per block where any lane of the group is active, inactive
            // lanes zero-padded (`col & 0` contributes nothing, so each lane
            // still sees exactly its own active blocks).
            scratch.unions.clear();
            scratch.union_ranges.clear();
            for group in scratch.ranges.chunks(GROUP) {
                let start = scratch.unions.len();
                for b in 0..self.blocks {
                    let mut nqs: GroupNq = [[0u64; 4]; GROUP];
                    let mut any = false;
                    for (lane, &(lo, hi)) in group.iter().enumerate() {
                        if let Some(&(_, nq)) =
                            scratch.active[lo..hi].iter().find(|&&(ab, _)| ab == b)
                        {
                            nqs[lane] = [nq; 4];
                            any = true;
                        }
                    }
                    if any {
                        scratch.unions.push((b, nqs));
                    }
                }
                scratch.union_ranges.push((start, scratch.unions.len()));
            }
            scratch.acc.resize((n * CHUNK).max(scratch.acc.len()), 0);
            scratch.summaries.clear();
            scratch.summaries.resize(n, 0);
            for chunk in chunks {
                let docs = (self.ids.len() - chunk * CHUNK).min(CHUNK);
                // Sweep every query group over this chunk's columns while they
                // are resident: one column load serves the whole group, the
                // group's accumulator tiles live in registers, and only the
                // first group pays the DRAM fetch — the rest hit cache.
                let cols = &self.base[chunk * CHUNK * self.blocks..];
                for (g, &(lo, hi)) in scratch.union_ranges.iter().enumerate() {
                    let lanes = GROUP.min(n - g * GROUP);
                    let union_active = &scratch.unions[lo..hi];
                    let acc = &mut scratch.acc[g * GROUP * CHUNK..];
                    let summary = &mut scratch.summaries[g * GROUP..];
                    match lanes {
                        4 => sweep_chunk_group::<4>(cols, docs, union_active, acc, summary),
                        3 => sweep_chunk_group::<3>(cols, docs, union_active, acc, summary),
                        2 => sweep_chunk_group::<2>(cols, docs, union_active, acc, summary),
                        _ => sweep_chunk_group::<1>(cols, docs, union_active, acc, summary),
                    }
                }
                // Then resolve matches per query, in slot order — identical to
                // the single-query visit. Rejections dominate (a handful of
                // matches per tens of thousands of documents), so the visit
                // skims each row's match-summary bitmap and inspects only the
                // strips that actually hold a match.
                for (q, &(lo, hi)) in scratch.ranges.iter().enumerate() {
                    let mut summary = scratch.summaries[q];
                    if summary == 0 {
                        continue;
                    }
                    let active = &scratch.active[lo..hi];
                    let (matches, stats) = &mut results[q];
                    let row = &scratch.acc[q * CHUNK..q * CHUNK + docs];
                    while summary != 0 {
                        let s = summary.trailing_zeros() as usize;
                        summary &= summary - 1;
                        for (j, &a) in row[s * STRIP..docs.min((s + 1) * STRIP)].iter().enumerate()
                        {
                            if a != 0 {
                                continue;
                            }
                            let slot = chunk * CHUNK + s * STRIP + j;
                            stats.matches += 1;
                            let rank = if self.levels > 1 {
                                self.walk_upper(slot, active, stats)
                            } else {
                                1
                            };
                            matches.push(SearchMatch {
                                document_id: self.ids[slot],
                                rank,
                            });
                        }
                    }
                }
            }
        });
        results
    }
}

/// Queries per fused sweep group: each group's accumulators live in registers
/// while a column strip is swept, so one column load serves [`GROUP`] queries.
const GROUP: usize = 4;

/// Documents per match-summary bit and per register strip of the portable fused
/// kernel: 8 docs × 4 queries is 16 vector accumulators on AVX2 (two ymm per
/// lane) plus the two-register column strip — spill-free, with the
/// pre-broadcast negated words folded from memory. The AVX-512 build widens its
/// strip to [`WIDE_STRIP`] but keeps this summary granularity.
const STRIP: usize = 8;

/// Documents per register strip of the AVX-512 kernel: a 16-doc tile is two zmm
/// registers per lane (8 of 32 total), and each negated-word broadcast is
/// reused for both halves — the per-strip fixed costs (broadcasts, summary,
/// loop) amortize over twice the documents.
const WIDE_STRIP: usize = 16;

/// One group's negated query words for one block, each lane pre-broadcast to a
/// vector-width quadruple so the kernel's AND reads it as a plain 32-byte load.
type GroupNq = [[u64; 4]; GROUP];

/// One bit per [`STRIP`] of a chunk (`CHUNK / STRIP` = 128 bits): set whenever
/// the strip **may** contain a matching document (the kernel tests once per
/// register tile, so the bits over-approximate at tile granularity; a zero bit
/// is a guaranteed miss). Computed inside the sweep while the accumulator tile
/// is register-resident, so the match-visit pass skims two words per row — and
/// verifies the flagged strips word by word — instead of re-reading the whole
/// 8 KiB row.
type MatchSummary = u128;

/// The fused group sweep over one chunk: `G ≤ GROUP` queries' reject rows
/// computed in a single pass over the chunk's columns. `acc` holds the group's
/// rows back to back with stride [`CHUNK`] (`acc[g·CHUNK + i]` is document `i`'s
/// word for lane `g`); `union_active` lists every block where **any** lane is
/// active, with inactive lanes' words zeroed (OR-ing `col & 0` is the identity,
/// so per-lane pruning semantics are preserved exactly).
///
/// The loop nest is the point: a [`STRIP`]-document accumulator tile lives in
/// registers across all blocks, so each column word is **loaded once for the
/// whole group** and the accumulators never round-trip through memory — the
/// single-query kernels pay one accumulator load *and* store per column word.
#[inline(always)]
fn sweep_chunk_group_body<const G: usize, const S: usize>(
    cols: &[u64],
    docs: usize,
    union_active: &[(usize, GroupNq)],
    acc: &mut [u64],
    summary: &mut [MatchSummary],
) {
    debug_assert!(G <= GROUP && acc.len() >= (G - 1) * CHUNK + docs);
    debug_assert!(S.is_multiple_of(STRIP) && summary.len() >= G);
    let mut found = [0 as MatchSummary; G];
    let mut i = 0;
    while i + S <= docs {
        let mut tile = [[0u64; S]; G];
        for &(b, ref nqs) in union_active {
            let col: &[u64; S] = cols[b * CHUNK + i..b * CHUNK + i + S]
                .try_into()
                .expect("strip-sized column slice");
            for (lane, nq) in tile.iter_mut().zip(nqs) {
                for (j, a) in lane.iter_mut().enumerate() {
                    *a |= col[j] & nq[j % 4];
                }
            }
        }
        for (g, lane) in tile.iter().enumerate() {
            // While the tile is still in registers, note whether this strip may
            // hold a match (a zero word): the visit pass then skims the summary
            // bitmap instead of re-reading the whole accumulator row. One test
            // covers the whole tile — the bits over-approximate at tile
            // granularity and the (rare) visit verifies word by word.
            if lane.contains(&0) {
                found[g] |= (((1 as MatchSummary) << (S / STRIP)) - 1) << (i / STRIP);
            }
            acc[g * CHUNK + i..g * CHUNK + i + S].copy_from_slice(lane);
        }
        i += S;
    }
    if i < docs {
        // Ragged tail of the last (partial) chunk — full chunks are a multiple
        // of every strip width.
        let rem = docs - i;
        let mut tile = [[0u64; S]; G];
        for &(b, ref nqs) in union_active {
            let col = &cols[b * CHUNK + i..b * CHUNK + i + rem];
            for (lane, nq) in tile.iter_mut().zip(nqs) {
                for (j, (a, &c)) in lane.iter_mut().zip(col).enumerate() {
                    *a |= c & nq[j % 4];
                }
            }
        }
        for (g, lane) in tile.iter().enumerate() {
            if lane[..rem].contains(&0) {
                found[g] |= (((1 as MatchSummary) << rem.div_ceil(STRIP)) - 1) << (i / STRIP);
            }
            acc[g * CHUNK + i..g * CHUNK + docs].copy_from_slice(&lane[..rem]);
        }
    }
    summary[..G].copy_from_slice(&found);
}

/// [`sweep_chunk_group_body`] compiled for the baseline target (SSE2 on x86-64).
fn sweep_chunk_group_generic<const G: usize>(
    cols: &[u64],
    docs: usize,
    union_active: &[(usize, GroupNq)],
    acc: &mut [u64],
    summary: &mut [MatchSummary],
) {
    sweep_chunk_group_body::<G, STRIP>(cols, docs, union_active, acc, summary);
}

/// [`sweep_chunk_group_body`] compiled with AVX2 enabled: the strip tile fits in
/// ymm registers (two per lane plus the column strip), doubling the
/// per-instruction width over the portable build. Selected at runtime by
/// [`sweep_chunk_group`]; never called unless the CPU reports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn sweep_chunk_group_avx2<const G: usize>(
    cols: &[u64],
    docs: usize,
    union_active: &[(usize, GroupNq)],
    acc: &mut [u64],
    summary: &mut [MatchSummary],
) {
    sweep_chunk_group_body::<G, STRIP>(cols, docs, union_active, acc, summary);
}

/// [`sweep_chunk_group_body`] compiled with AVX-512F enabled: a lane's whole
/// [`STRIP`]-document tile is one zmm register, halving the instruction count
/// again over AVX2. Selected at runtime by [`sweep_chunk_group`]; never called
/// unless the CPU reports the feature.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
fn sweep_chunk_group_avx512<const G: usize>(
    cols: &[u64],
    docs: usize,
    union_active: &[(usize, GroupNq)],
    acc: &mut [u64],
    summary: &mut [MatchSummary],
) {
    sweep_chunk_group_body::<G, WIDE_STRIP>(cols, docs, union_active, acc, summary);
}

/// Runtime-dispatched fused group sweep (see [`sweep_chunk_group_body`]).
#[inline]
fn sweep_chunk_group<const G: usize>(
    cols: &[u64],
    docs: usize,
    union_active: &[(usize, GroupNq)],
    acc: &mut [u64],
    summary: &mut [MatchSummary],
) {
    // SAFETY (both arms): the feature requirement is checked right above each
    // call; the detection macro caches, so the branch costs one predictable
    // load per call.
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx512f") {
        unsafe {
            return sweep_chunk_group_avx512::<G>(cols, docs, union_active, acc, summary);
        }
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        unsafe {
            return sweep_chunk_group_avx2::<G>(cols, docs, union_active, acc, summary);
        }
    }
    sweep_chunk_group_generic::<G>(cols, docs, union_active, acc, summary);
}

/// `acc[i] = col[i] & nq`, 4-wide unrolled so the autovectorizer stays on the
/// packed-SIMD path even without profile information.
fn and_into(acc: &mut [u64], col: &[u64], nq: u64) {
    debug_assert_eq!(acc.len(), col.len());
    let mut a = acc.chunks_exact_mut(4);
    let mut c = col.chunks_exact(4);
    for (a4, c4) in (&mut a).zip(&mut c) {
        a4[0] = c4[0] & nq;
        a4[1] = c4[1] & nq;
        a4[2] = c4[2] & nq;
        a4[3] = c4[3] & nq;
    }
    for (ai, &ci) in a.into_remainder().iter_mut().zip(c.remainder()) {
        *ai = ci & nq;
    }
}

/// `acc[i] |= col[i] & nq`, unrolled like [`and_into`].
fn or_and_into(acc: &mut [u64], col: &[u64], nq: u64) {
    debug_assert_eq!(acc.len(), col.len());
    let mut a = acc.chunks_exact_mut(4);
    let mut c = col.chunks_exact(4);
    for (a4, c4) in (&mut a).zip(&mut c) {
        a4[0] |= c4[0] & nq;
        a4[1] |= c4[1] & nq;
        a4[2] |= c4[2] & nq;
        a4[3] |= c4[3] & nq;
    }
    for (ai, &ci) in a.into_remainder().iter_mut().zip(c.remainder()) {
        *ai |= ci & nq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryIndex;
    use crate::search::scan_ranked;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The reference scan takes the query wrapper; the plane takes raw bits.
    fn qi(bits: &BitIndex) -> QueryIndex {
        QueryIndex::from_bits(bits.clone())
    }

    fn random_bitindex(rng: &mut StdRng, len: usize, zero_prob: f64) -> BitIndex {
        let bits: Vec<bool> = (0..len)
            .map(|_| rng.gen_range(0.0..1.0) >= zero_prob)
            .collect();
        BitIndex::from_bits(&bits)
    }

    fn random_docs(rng: &mut StdRng, n: usize, r: usize, eta: usize) -> Vec<RankedDocumentIndex> {
        (0..n)
            .map(|id| RankedDocumentIndex {
                document_id: id as u64 * 3 + 1,
                levels: (0..eta).map(|_| random_bitindex(rng, r, 0.5)).collect(),
            })
            .collect()
    }

    fn plane_of(docs: &[RankedDocumentIndex]) -> ScanPlane {
        let mut plane = ScanPlane::new();
        for d in docs {
            plane.push(d);
        }
        plane
    }

    #[test]
    fn scanplane_empty_plane_matches_reference() {
        let plane = ScanPlane::new();
        assert!(plane.is_empty());
        assert_eq!(plane.len(), 0);
        assert_eq!(plane.bits(), 0);
        assert_eq!(plane.levels(), 0);
        let q = BitIndex::all_ones(64);
        let (matches, stats) = plane.scan_ranked(&q);
        assert!(matches.is_empty());
        assert_eq!(stats, SearchStats::default());
        assert!(plane.matching_slots(&q).is_empty());
    }

    #[test]
    fn scanplane_scan_equals_reference_scan_on_random_workloads() {
        let mut rng = StdRng::seed_from_u64(17);
        // Lengths straddle block boundaries (tail masking) and chunk boundaries
        // would need 1024+ docs — covered by the dedicated test below.
        for &r in &[1usize, 63, 64, 65, 127, 129, 448] {
            for &eta in &[1usize, 3, 5] {
                let docs = random_docs(&mut rng, 37, r, eta);
                let plane = plane_of(&docs);
                assert_eq!(plane.len(), docs.len());
                assert_eq!(plane.bits(), r);
                assert_eq!(plane.levels(), eta);
                for zero_prob in [0.0, 0.02, 0.3, 1.0] {
                    let q = random_bitindex(&mut rng, r, zero_prob);
                    let (expected, expected_stats) = scan_ranked(&docs, &qi(&q));
                    let (got, got_stats) = plane.scan_ranked(&q);
                    assert_eq!(got, expected, "r={r} eta={eta} zp={zero_prob}");
                    assert_eq!(got_stats, expected_stats, "r={r} eta={eta} zp={zero_prob}");
                    let slots: Vec<usize> = docs
                        .iter()
                        .enumerate()
                        .filter(|(_, d)| d.base_level().matches_query(&q))
                        .map(|(i, _)| i)
                        .collect();
                    assert_eq!(plane.matching_slots(&q), slots);
                }
            }
        }
    }

    #[test]
    fn scanplane_docs_in_chunks_sizes_clamped_ranges() {
        let mut rng = StdRng::seed_from_u64(23);
        // One full chunk plus a 7-document tail chunk.
        let docs = random_docs(&mut rng, CHUNK + 7, 32, 1);
        let plane = plane_of(&docs);
        assert_eq!(plane.num_chunks(), 2);
        assert_eq!(plane.docs_in_chunks(0..1), CHUNK);
        assert_eq!(plane.docs_in_chunks(1..2), 7, "tail chunk is partial");
        assert_eq!(plane.docs_in_chunks(0..2), CHUNK + 7);
        assert_eq!(plane.docs_in_chunks(0..99), CHUNK + 7, "end clamps");
        assert_eq!(plane.docs_in_chunks(5..9), 0, "past-the-end is empty");
        #[allow(clippy::reversed_empty_ranges)]
        {
            assert_eq!(plane.docs_in_chunks(2..1), 0, "inverted collapses");
        }
        assert_eq!(ScanPlane::new().docs_in_chunks(0..1), 0);
    }

    #[test]
    fn scanplane_all_ones_query_prunes_every_block_and_matches_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let docs = random_docs(&mut rng, 20, 100, 3);
        let plane = plane_of(&docs);
        let q = BitIndex::all_ones(100);
        assert!(
            plane.active_blocks(&q).is_empty(),
            "no zeros, no active blocks"
        );
        let (matches, stats) = plane.scan_ranked(&q);
        let (expected, expected_stats) = scan_ranked(&docs, &qi(&q));
        assert_eq!(matches, expected);
        assert_eq!(stats, expected_stats);
        assert_eq!(stats.matches, 20, "all-ones query matches every document");
        // Every document reaches the top rank: all levels match a zero-free query.
        assert!(matches.iter().all(|m| m.rank == 3));
    }

    #[test]
    fn scanplane_all_zeros_query_only_matches_all_zero_documents() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut docs = random_docs(&mut rng, 10, 70, 2);
        docs.push(RankedDocumentIndex {
            document_id: 999,
            levels: vec![BitIndex::all_zeros(70), BitIndex::all_zeros(70)],
        });
        let plane = plane_of(&docs);
        let q = BitIndex::all_zeros(70);
        let (matches, stats) = plane.scan_ranked(&q);
        let (expected, expected_stats) = scan_ranked(&docs, &qi(&q));
        assert_eq!(matches, expected);
        assert_eq!(stats, expected_stats);
        assert!(matches.iter().any(|m| m.document_id == 999));
    }

    #[test]
    fn scanplane_phantom_tail_bits_never_reject() {
        // r = 70: the query's tail block has 58 phantom positions. An active-block
        // computation that forgot to mask them would sweep a block whose only
        // "zeros" are phantom, and a document could never be rejected by it — but
        // an unmasked negated word would also corrupt the accumulator if document
        // tails were dirty. The invariant test: a query that is all-ones on the
        // valid bits has NO active blocks, tail included.
        let q = BitIndex::all_ones(70);
        let docs = vec![RankedDocumentIndex {
            document_id: 1,
            levels: vec![BitIndex::all_ones(70)],
        }];
        let plane = plane_of(&docs);
        assert!(plane.active_blocks(&q).is_empty());
        let (matches, _) = plane.scan_ranked(&q);
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn scanplane_crosses_chunk_boundaries() {
        let mut rng = StdRng::seed_from_u64(23);
        // > 2 chunks, with a partial tail chunk.
        let docs = random_docs(&mut rng, 2 * CHUNK + 321, 65, 2);
        let plane = plane_of(&docs);
        for zero_prob in [0.01, 0.5] {
            let q = random_bitindex(&mut rng, 65, zero_prob);
            let (expected, expected_stats) = scan_ranked(&docs, &qi(&q));
            let (got, got_stats) = plane.scan_ranked(&q);
            assert_eq!(got, expected, "zp={zero_prob}");
            assert_eq!(got_stats, expected_stats, "zp={zero_prob}");
        }
    }

    #[test]
    fn scanplane_incremental_pushes_equal_bulk_build() {
        let mut rng = StdRng::seed_from_u64(31);
        let docs = random_docs(&mut rng, 50, 129, 3);
        let bulk = plane_of(&docs);
        let mut incremental = ScanPlane::new();
        let q = random_bitindex(&mut rng, 129, 0.1);
        for (n, d) in docs.iter().enumerate() {
            incremental.push(d);
            let (expected, expected_stats) = scan_ranked(&docs[..n + 1], &qi(&q));
            let (got, got_stats) = incremental.scan_ranked(&q);
            assert_eq!(got, expected, "after {} pushes", n + 1);
            assert_eq!(got_stats, expected_stats);
        }
        assert_eq!(incremental.ids(), bulk.ids());
        assert_eq!(incremental.scan_ranked(&q), bulk.scan_ranked(&q));
    }

    #[test]
    #[should_panic(expected = "level count mismatch")]
    fn scanplane_rejects_mismatched_level_count() {
        let mut plane = ScanPlane::new();
        plane.push(&RankedDocumentIndex {
            document_id: 0,
            levels: vec![BitIndex::all_ones(64); 2],
        });
        plane.push(&RankedDocumentIndex {
            document_id: 1,
            levels: vec![BitIndex::all_ones(64); 3],
        });
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn scanplane_rejects_mismatched_query_length() {
        let mut plane = ScanPlane::new();
        plane.push(&RankedDocumentIndex {
            document_id: 0,
            levels: vec![BitIndex::all_ones(64)],
        });
        let _ = plane.scan_ranked(&BitIndex::all_ones(65));
    }

    #[test]
    fn scanplane_batch_sweep_equals_independent_scans() {
        let mut rng = StdRng::seed_from_u64(47);
        // Straddle block and chunk boundaries; include duplicate queries and the
        // pruning extremes in one batch.
        for &(n_docs, r, eta) in &[(37usize, 65usize, 3usize), (2 * CHUNK + 321, 448, 3)] {
            let docs = random_docs(&mut rng, n_docs, r, eta);
            let plane = plane_of(&docs);
            let mut queries: Vec<BitIndex> = (0..5)
                .map(|i| random_bitindex(&mut rng, r, [0.0, 0.02, 0.3, 0.9, 1.0][i]))
                .collect();
            queries.push(queries[1].clone()); // exact duplicate
            queries.push(BitIndex::all_ones(r));
            queries.push(BitIndex::all_zeros(r));
            let refs: Vec<&BitIndex> = queries.iter().collect();
            let batched = plane.scan_ranked_batch(&refs);
            assert_eq!(batched.len(), queries.len());
            for (qi, (q, got)) in queries.iter().zip(&batched).enumerate() {
                assert_eq!(got, &plane.scan_ranked(q), "n={n_docs} r={r} query {qi}");
            }
        }
    }

    #[test]
    fn scanplane_batch_sweep_edge_batches() {
        let mut rng = StdRng::seed_from_u64(53);
        let docs = random_docs(&mut rng, 30, 129, 2);
        let plane = plane_of(&docs);
        // Empty batch.
        assert!(plane.scan_ranked_batch(&[]).is_empty());
        // Batch of one equals the single scan.
        let q = random_bitindex(&mut rng, 129, 0.1);
        assert_eq!(plane.scan_ranked_batch(&[&q]), vec![plane.scan_ranked(&q)]);
        // Empty plane: zeroed stats for every query, any length.
        let empty = ScanPlane::new();
        let out = empty.scan_ranked_batch(&[&q, &q]);
        assert_eq!(out, vec![(Vec::new(), SearchStats::default()); 2]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn scanplane_batch_rejects_mismatched_query_length() {
        let mut plane = ScanPlane::new();
        plane.push(&RankedDocumentIndex {
            document_id: 0,
            levels: vec![BitIndex::all_ones(64)],
        });
        let good = BitIndex::all_ones(64);
        let bad = BitIndex::all_ones(65);
        let _ = plane.scan_ranked_batch(&[&good, &bad]);
    }

    #[test]
    fn scanplane_chunk_range_scans_stitch_to_the_full_scan() {
        let mut rng = StdRng::seed_from_u64(71);
        // > 2 chunks with a partial tail, straddling a block boundary.
        let docs = random_docs(&mut rng, 2 * CHUNK + 321, 65, 3);
        let plane = plane_of(&docs);
        assert_eq!(plane.num_chunks(), 3);
        let queries: Vec<BitIndex> = [0.02, 0.3, 1.0, 0.3]
            .iter()
            .map(|&zp| random_bitindex(&mut rng, 65, zp))
            .collect();
        let refs: Vec<&BitIndex> = queries.iter().collect();
        let full = plane.scan_ranked_batch(&refs);
        // Every partition granularity must stitch back byte-identically: matches
        // concatenated in range order, stats summed per query.
        for granularity in [1usize, 2, 3, 7] {
            let mut stitched: Vec<(Vec<SearchMatch>, SearchStats)> =
                vec![(Vec::new(), SearchStats::default()); queries.len()];
            let mut lo = 0;
            while lo < plane.num_chunks() {
                let range = lo..(lo + granularity).min(plane.num_chunks());
                let ranged = plane.scan_ranked_batch_chunks(&refs, range.clone());
                for (q, (matches, stats)) in ranged.into_iter().enumerate() {
                    // The batch range equals the single-query range, per query.
                    assert_eq!(
                        plane.scan_ranked_chunks(&queries[q], range.clone()),
                        (matches.clone(), stats),
                        "g={granularity} range={range:?} q={q}"
                    );
                    stitched[q].0.extend(matches);
                    stitched[q].1.merge(&stats);
                }
                lo = range.end;
            }
            assert_eq!(stitched, full, "granularity {granularity}");
        }
        // Out-of-bounds ranges clamp; inverted and empty ranges are empty.
        let q = &queries[0];
        assert_eq!(
            plane.scan_ranked_chunks(q, 0..usize::MAX),
            plane.scan_ranked(q)
        );
        let (matches, stats) = plane.scan_ranked_chunks(q, 5..7);
        assert!(matches.is_empty());
        assert_eq!(stats, SearchStats::default());
        #[allow(clippy::reversed_empty_ranges)] // inverted range IS the case under test
        let (matches, stats) = plane.scan_ranked_chunks(q, 2..1);
        assert!(matches.is_empty());
        assert_eq!(stats, SearchStats::default());
        for got in plane.scan_ranked_batch_chunks(&refs, 3..3) {
            assert_eq!(got, (Vec::new(), SearchStats::default()));
        }
        // A range's level-1 comparison count is exactly the documents it covers
        // (an all-zeros query matches no random document, so no rank walks).
        let (_, tail_stats) = plane.scan_ranked_chunks(&BitIndex::all_zeros(65), 2..3);
        assert_eq!(tail_stats.comparisons, 321);
    }

    #[test]
    fn scanplane_unrolled_kernels_match_scalar_semantics() {
        // Exercise every remainder length of the 4-wide unroll.
        for len in 0..9usize {
            let col: Vec<u64> = (0..len as u64)
                .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .collect();
            let nq = 0x0f0f_0f0f_0f0f_0f0fu64;
            let mut acc = vec![u64::MAX; len];
            and_into(&mut acc, &col, nq);
            assert_eq!(acc, col.iter().map(|&c| c & nq).collect::<Vec<_>>());
            let mut acc2 = vec![1u64; len];
            or_and_into(&mut acc2, &col, nq);
            assert_eq!(acc2, col.iter().map(|&c| 1 | (c & nq)).collect::<Vec<_>>());
        }
    }
}
