//! The block-major **scan plane**: a bit-sliced, contiguous arena for the server's
//! hottest loop.
//!
//! The paper's server cost is dominated by Eq. (3)/Algorithm 1: σ r-bit comparisons
//! per query. The storage layer keeps one heap-allocated [`crate::bitindex::BitIndex`]
//! per level per document, so the reference scan ([`crate::search::scan_ranked`])
//! chases two pointers per document over scattered allocations. A [`ScanPlane`]
//! re-packs the same bits for linear sweeps:
//!
//! * **Level-1 arena** (`base`): one contiguous `Vec<u64>`, laid out block-major
//!   within fixed-size chunks of [`CHUNK`] documents — column `b` of a chunk holds
//!   64-bit block `b` of every document in the chunk, documents in slot order. A
//!   query sweeps one column at a time over memory the prefetcher can stream, and
//!   appending a document touches exactly η·⌈r/64⌉ words (no re-layout).
//! * **Upper-level arena** (`upper`): levels 2..η packed document-major, walked
//!   only for the (few) documents that matched level 1 — Algorithm 1's rank walk.
//! * **Query-aware block pruning**: the matching predicate is
//!   `doc AND NOT query == 0`. Any block where the query is all-ones contributes
//!   nothing (`NOT query == 0`), so it is skipped *for the whole shard*. Only the
//!   query's **active blocks** — those with at least one zero among the valid `r`
//!   bits — are swept.
//!
//! Semantics are **bit-for-bit identical** to the reference scan: matches come back
//! in slot (scan) order with the same ranks, and [`SearchStats`] counts whole r-bit
//! comparisons exactly as the reference does — block pruning happens *inside* one
//! r-bit comparison and never changes the count (level 1 contributes one comparison
//! per stored document; each upper level walked contributes one more, failing level
//! included).
//!
//! **Leakage note (§6)**: pruning is a function of the query index bytes alone —
//! which the server already holds — plus the public geometry `r`. It reveals
//! nothing beyond the search-pattern observation the paper's §6 adversary is
//! already granted; the per-document work it skips is data-independent (the same
//! blocks are skipped for every document in the shard).

use crate::bitindex::BitIndex;
use crate::document_index::RankedDocumentIndex;
use crate::search::{SearchMatch, SearchStats};

/// Documents per block-major chunk. With the paper's r = 448 (7 blocks) a chunk's
/// columns span 56 KiB — resident in L2 while its 8 KiB reject accumulator stays
/// in L1 — and appending never moves previously packed blocks.
pub const CHUNK: usize = 1024;

/// A per-shard, block-major (bit-sliced) copy of the shard's document indices,
/// maintained by the storage layer on every insert and consumed by the engine's
/// shard scans. See the [module docs](self) for the layout.
#[derive(Clone, Debug, Default)]
pub struct ScanPlane {
    /// Bits per level (r). Zero until the first document is packed.
    bits: usize,
    /// Ranking levels (η). Zero until the first document is packed.
    levels: usize,
    /// 64-bit blocks per level: ⌈r/64⌉.
    blocks: usize,
    /// Document id of every slot, in slot order.
    ids: Vec<u64>,
    /// Level-1 blocks, chunked block-major:
    /// `base[chunk·CHUNK·blocks + b·CHUNK + i]` is block `b` of slot `chunk·CHUNK + i`.
    base: Vec<u64>,
    /// Levels 2..η, document-major:
    /// `upper[(slot·(η−1) + lvl)·blocks + b]` is block `b` of level `lvl + 2` of `slot`.
    upper: Vec<u64>,
}

/// One active column of a query: the block position and the query's negated
/// (zero-selecting) word there, already masked to the valid `r` bits.
type ActiveBlock = (usize, u64);

impl ScanPlane {
    /// An empty plane. Geometry (r, η) is adopted from the first packed document,
    /// so a plane works for any store the geometry-validating insert path feeds it.
    pub fn new() -> Self {
        ScanPlane::default()
    }

    /// Number of packed documents.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if no documents are packed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Bits per level (r); zero while the plane is empty.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Ranking levels (η); zero while the plane is empty.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Document ids in slot order (the shard's insertion order).
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Append one document's blocks to the arenas. The caller (the storage layer)
    /// has already geometry-validated the index; the assertions here guard the
    /// arena layout itself.
    pub fn push(&mut self, index: &RankedDocumentIndex) {
        if self.ids.is_empty() {
            self.bits = index.base_level().len();
            self.levels = index.num_levels();
            self.blocks = self.bits.div_ceil(64);
        }
        assert_eq!(index.num_levels(), self.levels, "level count mismatch");
        assert_eq!(index.base_level().len(), self.bits, "index size mismatch");

        let slot = self.ids.len();
        if slot.is_multiple_of(CHUNK) {
            // Open a fresh chunk: zero columns the tail slots never dirty.
            self.base.resize(self.base.len() + CHUNK * self.blocks, 0);
        }
        let chunk_off = (slot / CHUNK) * CHUNK * self.blocks;
        let i = slot % CHUNK;
        for (b, &block) in index.base_level().as_blocks().iter().enumerate() {
            self.base[chunk_off + b * CHUNK + i] = block;
        }
        for level in index.levels.iter().skip(1) {
            assert_eq!(level.len(), self.bits, "index size mismatch");
            self.upper.extend_from_slice(level.as_blocks());
        }
        self.ids.push(index.document_id);
    }

    /// The query's active block list: every block position where the query has at
    /// least one zero among the valid `r` bits, paired with the negated query word
    /// (masked to valid bits). A block absent from this list can never reject any
    /// document — `doc AND NOT query` is zero there for the whole shard.
    fn active_blocks(&self, query: &BitIndex) -> Vec<ActiveBlock> {
        assert_eq!(query.len(), self.bits, "length mismatch");
        let tail = self.bits % 64;
        query
            .as_blocks()
            .iter()
            .enumerate()
            .filter_map(|(b, &q)| {
                let valid = if tail != 0 && b == self.blocks - 1 {
                    (1u64 << tail) - 1
                } else {
                    u64::MAX
                };
                let nq = !q & valid;
                (nq != 0).then_some((b, nq))
            })
            .collect()
    }

    /// Sweep one chunk's active columns into the reject accumulator: after the
    /// call, `acc[i] == 0` iff document `i` of the chunk matches the query at
    /// level 1. The first column initializes the accumulator (no pre-zeroing);
    /// with no active columns every document matches.
    fn sweep_chunk(&self, chunk: usize, docs: usize, active: &[ActiveBlock], acc: &mut [u64]) {
        let cols = &self.base[chunk * CHUNK * self.blocks..];
        match active.split_first() {
            None => acc[..docs].fill(0),
            Some((&(b0, nq0), rest)) => {
                and_into(&mut acc[..docs], &cols[b0 * CHUNK..b0 * CHUNK + docs], nq0);
                for &(b, nq) in rest {
                    or_and_into(&mut acc[..docs], &cols[b * CHUNK..b * CHUNK + docs], nq);
                }
            }
        }
    }

    /// Algorithm 1's upward walk for one matching document, on the document-major
    /// upper arena. Counts one r-bit comparison per level walked (failing level
    /// included), exactly like the reference loop.
    fn walk_upper(&self, slot: usize, active: &[ActiveBlock], stats: &mut SearchStats) -> u32 {
        let mut rank = 1u32;
        let doc_off = slot * (self.levels - 1) * self.blocks;
        for lvl in 0..self.levels - 1 {
            stats.comparisons += 1;
            let level = &self.upper[doc_off + lvl * self.blocks..doc_off + (lvl + 1) * self.blocks];
            if active.iter().all(|&(b, nq)| level[b] & nq == 0) {
                rank += 1;
            } else {
                break;
            }
        }
        rank
    }

    /// The single home of the chunk-sweep protocol: prune, sweep each chunk's
    /// active columns through the reject accumulator, and visit every matching
    /// slot in scan order (the active list is passed along for rank walks).
    /// Both public scans are thin consumers, so the iteration and accumulator
    /// scheme can never diverge between the ranked and unranked paths.
    fn for_each_matching_slot<F: FnMut(usize, &[ActiveBlock])>(
        &self,
        query: &BitIndex,
        mut visit: F,
    ) {
        if self.ids.is_empty() {
            return;
        }
        let active = self.active_blocks(query);
        let mut acc = [0u64; CHUNK];
        for (chunk, chunk_ids) in self.ids.chunks(CHUNK).enumerate() {
            self.sweep_chunk(chunk, chunk_ids.len(), &active, &mut acc);
            for (i, &a) in acc[..chunk_ids.len()].iter().enumerate() {
                if a == 0 {
                    visit(chunk * CHUNK + i, &active);
                }
            }
        }
    }

    /// The ranked scan of Algorithm 1 over the whole plane — the plane-backed
    /// equivalent of [`crate::search::scan_ranked`] over the shard's documents.
    /// Matches come back in slot (scan) order with identical ranks and identical
    /// [`SearchStats`]; callers sort with [`crate::search::sort_matches`].
    pub fn scan_ranked(&self, query: &BitIndex) -> (Vec<SearchMatch>, SearchStats) {
        let mut stats = SearchStats {
            comparisons: self.ids.len() as u64,
            matches: 0,
        };
        let mut matches = Vec::new();
        self.for_each_matching_slot(query, |slot, active| {
            stats.matches += 1;
            let rank = if self.levels > 1 {
                self.walk_upper(slot, active, &mut stats)
            } else {
                1
            };
            matches.push(SearchMatch {
                document_id: self.ids[slot],
                rank,
            });
        });
        (matches, stats)
    }

    /// Slots (in scan order) whose level-1 index matches the query — the
    /// plane-backed filter behind unranked search and metadata retrieval.
    pub fn matching_slots(&self, query: &BitIndex) -> Vec<usize> {
        let mut slots = Vec::new();
        self.for_each_matching_slot(query, |slot, _| slots.push(slot));
        slots
    }
}

/// `acc[i] = col[i] & nq`, 4-wide unrolled so the autovectorizer stays on the
/// packed-SIMD path even without profile information.
fn and_into(acc: &mut [u64], col: &[u64], nq: u64) {
    debug_assert_eq!(acc.len(), col.len());
    let mut a = acc.chunks_exact_mut(4);
    let mut c = col.chunks_exact(4);
    for (a4, c4) in (&mut a).zip(&mut c) {
        a4[0] = c4[0] & nq;
        a4[1] = c4[1] & nq;
        a4[2] = c4[2] & nq;
        a4[3] = c4[3] & nq;
    }
    for (ai, &ci) in a.into_remainder().iter_mut().zip(c.remainder()) {
        *ai = ci & nq;
    }
}

/// `acc[i] |= col[i] & nq`, unrolled like [`and_into`].
fn or_and_into(acc: &mut [u64], col: &[u64], nq: u64) {
    debug_assert_eq!(acc.len(), col.len());
    let mut a = acc.chunks_exact_mut(4);
    let mut c = col.chunks_exact(4);
    for (a4, c4) in (&mut a).zip(&mut c) {
        a4[0] |= c4[0] & nq;
        a4[1] |= c4[1] & nq;
        a4[2] |= c4[2] & nq;
        a4[3] |= c4[3] & nq;
    }
    for (ai, &ci) in a.into_remainder().iter_mut().zip(c.remainder()) {
        *ai |= ci & nq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryIndex;
    use crate::search::scan_ranked;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The reference scan takes the query wrapper; the plane takes raw bits.
    fn qi(bits: &BitIndex) -> QueryIndex {
        QueryIndex::from_bits(bits.clone())
    }

    fn random_bitindex(rng: &mut StdRng, len: usize, zero_prob: f64) -> BitIndex {
        let bits: Vec<bool> = (0..len)
            .map(|_| rng.gen_range(0.0..1.0) >= zero_prob)
            .collect();
        BitIndex::from_bits(&bits)
    }

    fn random_docs(rng: &mut StdRng, n: usize, r: usize, eta: usize) -> Vec<RankedDocumentIndex> {
        (0..n)
            .map(|id| RankedDocumentIndex {
                document_id: id as u64 * 3 + 1,
                levels: (0..eta).map(|_| random_bitindex(rng, r, 0.5)).collect(),
            })
            .collect()
    }

    fn plane_of(docs: &[RankedDocumentIndex]) -> ScanPlane {
        let mut plane = ScanPlane::new();
        for d in docs {
            plane.push(d);
        }
        plane
    }

    #[test]
    fn scanplane_empty_plane_matches_reference() {
        let plane = ScanPlane::new();
        assert!(plane.is_empty());
        assert_eq!(plane.len(), 0);
        assert_eq!(plane.bits(), 0);
        assert_eq!(plane.levels(), 0);
        let q = BitIndex::all_ones(64);
        let (matches, stats) = plane.scan_ranked(&q);
        assert!(matches.is_empty());
        assert_eq!(stats, SearchStats::default());
        assert!(plane.matching_slots(&q).is_empty());
    }

    #[test]
    fn scanplane_scan_equals_reference_scan_on_random_workloads() {
        let mut rng = StdRng::seed_from_u64(17);
        // Lengths straddle block boundaries (tail masking) and chunk boundaries
        // would need 1024+ docs — covered by the dedicated test below.
        for &r in &[1usize, 63, 64, 65, 127, 129, 448] {
            for &eta in &[1usize, 3, 5] {
                let docs = random_docs(&mut rng, 37, r, eta);
                let plane = plane_of(&docs);
                assert_eq!(plane.len(), docs.len());
                assert_eq!(plane.bits(), r);
                assert_eq!(plane.levels(), eta);
                for zero_prob in [0.0, 0.02, 0.3, 1.0] {
                    let q = random_bitindex(&mut rng, r, zero_prob);
                    let (expected, expected_stats) = scan_ranked(&docs, &qi(&q));
                    let (got, got_stats) = plane.scan_ranked(&q);
                    assert_eq!(got, expected, "r={r} eta={eta} zp={zero_prob}");
                    assert_eq!(got_stats, expected_stats, "r={r} eta={eta} zp={zero_prob}");
                    let slots: Vec<usize> = docs
                        .iter()
                        .enumerate()
                        .filter(|(_, d)| d.base_level().matches_query(&q))
                        .map(|(i, _)| i)
                        .collect();
                    assert_eq!(plane.matching_slots(&q), slots);
                }
            }
        }
    }

    #[test]
    fn scanplane_all_ones_query_prunes_every_block_and_matches_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let docs = random_docs(&mut rng, 20, 100, 3);
        let plane = plane_of(&docs);
        let q = BitIndex::all_ones(100);
        assert!(
            plane.active_blocks(&q).is_empty(),
            "no zeros, no active blocks"
        );
        let (matches, stats) = plane.scan_ranked(&q);
        let (expected, expected_stats) = scan_ranked(&docs, &qi(&q));
        assert_eq!(matches, expected);
        assert_eq!(stats, expected_stats);
        assert_eq!(stats.matches, 20, "all-ones query matches every document");
        // Every document reaches the top rank: all levels match a zero-free query.
        assert!(matches.iter().all(|m| m.rank == 3));
    }

    #[test]
    fn scanplane_all_zeros_query_only_matches_all_zero_documents() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut docs = random_docs(&mut rng, 10, 70, 2);
        docs.push(RankedDocumentIndex {
            document_id: 999,
            levels: vec![BitIndex::all_zeros(70), BitIndex::all_zeros(70)],
        });
        let plane = plane_of(&docs);
        let q = BitIndex::all_zeros(70);
        let (matches, stats) = plane.scan_ranked(&q);
        let (expected, expected_stats) = scan_ranked(&docs, &qi(&q));
        assert_eq!(matches, expected);
        assert_eq!(stats, expected_stats);
        assert!(matches.iter().any(|m| m.document_id == 999));
    }

    #[test]
    fn scanplane_phantom_tail_bits_never_reject() {
        // r = 70: the query's tail block has 58 phantom positions. An active-block
        // computation that forgot to mask them would sweep a block whose only
        // "zeros" are phantom, and a document could never be rejected by it — but
        // an unmasked negated word would also corrupt the accumulator if document
        // tails were dirty. The invariant test: a query that is all-ones on the
        // valid bits has NO active blocks, tail included.
        let q = BitIndex::all_ones(70);
        let docs = vec![RankedDocumentIndex {
            document_id: 1,
            levels: vec![BitIndex::all_ones(70)],
        }];
        let plane = plane_of(&docs);
        assert!(plane.active_blocks(&q).is_empty());
        let (matches, _) = plane.scan_ranked(&q);
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn scanplane_crosses_chunk_boundaries() {
        let mut rng = StdRng::seed_from_u64(23);
        // > 2 chunks, with a partial tail chunk.
        let docs = random_docs(&mut rng, 2 * CHUNK + 321, 65, 2);
        let plane = plane_of(&docs);
        for zero_prob in [0.01, 0.5] {
            let q = random_bitindex(&mut rng, 65, zero_prob);
            let (expected, expected_stats) = scan_ranked(&docs, &qi(&q));
            let (got, got_stats) = plane.scan_ranked(&q);
            assert_eq!(got, expected, "zp={zero_prob}");
            assert_eq!(got_stats, expected_stats, "zp={zero_prob}");
        }
    }

    #[test]
    fn scanplane_incremental_pushes_equal_bulk_build() {
        let mut rng = StdRng::seed_from_u64(31);
        let docs = random_docs(&mut rng, 50, 129, 3);
        let bulk = plane_of(&docs);
        let mut incremental = ScanPlane::new();
        let q = random_bitindex(&mut rng, 129, 0.1);
        for (n, d) in docs.iter().enumerate() {
            incremental.push(d);
            let (expected, expected_stats) = scan_ranked(&docs[..n + 1], &qi(&q));
            let (got, got_stats) = incremental.scan_ranked(&q);
            assert_eq!(got, expected, "after {} pushes", n + 1);
            assert_eq!(got_stats, expected_stats);
        }
        assert_eq!(incremental.ids(), bulk.ids());
        assert_eq!(incremental.scan_ranked(&q), bulk.scan_ranked(&q));
    }

    #[test]
    #[should_panic(expected = "level count mismatch")]
    fn scanplane_rejects_mismatched_level_count() {
        let mut plane = ScanPlane::new();
        plane.push(&RankedDocumentIndex {
            document_id: 0,
            levels: vec![BitIndex::all_ones(64); 2],
        });
        plane.push(&RankedDocumentIndex {
            document_id: 1,
            levels: vec![BitIndex::all_ones(64); 3],
        });
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn scanplane_rejects_mismatched_query_length() {
        let mut plane = ScanPlane::new();
        plane.push(&RankedDocumentIndex {
            document_id: 0,
            levels: vec![BitIndex::all_ones(64)],
        });
        let _ = plane.scan_ranked(&BitIndex::all_ones(65));
    }

    #[test]
    fn scanplane_unrolled_kernels_match_scalar_semantics() {
        // Exercise every remainder length of the 4-wide unroll.
        for len in 0..9usize {
            let col: Vec<u64> = (0..len as u64)
                .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .collect();
            let nq = 0x0f0f_0f0f_0f0f_0f0fu64;
            let mut acc = vec![u64::MAX; len];
            and_into(&mut acc, &col, nq);
            assert_eq!(acc, col.iter().map(|&c| c & nq).collect::<Vec<_>>());
            let mut acc2 = vec![1u64; len];
            or_and_into(&mut acc2, &col, nq);
            assert_eq!(acc2, col.iter().map(|&c| 1 | (c & nq)).collect::<Vec<_>>());
        }
    }
}
