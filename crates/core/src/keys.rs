//! The data owner's secret key material and trapdoor issuance (§4.2).
//!
//! * One secret HMAC key per bin ([`SchemeKeys::bin_key`]); the same key is used for every
//!   keyword that `GetBin` maps to that bin.
//! * The pool of `U` random (fake) keywords used for query randomization (§6). The fake
//!   keywords are random strings outside the dictionary; their trapdoors are shared with
//!   authorized users so that each query can blend in a fresh random `V`-subset.
//! * Trapdoor issuance: given a keyword (data-owner side) or a bin key (user side), compute
//!   the keyword's trapdoor, which is simply its keyword index `I_w` (footnote 3).

use crate::bins::{get_bin, BinId};
use crate::bitindex::BitIndex;
use crate::keyword::keyword_index;
use crate::params::SystemParams;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Length of each bin's HMAC key in bytes. The paper's Theorem 2 proof assumes "a randomly
/// chosen 128 bit key", so 16 bytes.
pub const BIN_KEY_LEN: usize = 16;

/// A trapdoor: the `r`-bit keyword index of one keyword, usable directly as a query factor.
///
/// The trapdoor deliberately does **not** carry the keyword string: once issued, it reveals
/// nothing about which keyword it encodes (Theorem 3).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trapdoor {
    index: BitIndex,
}

impl Trapdoor {
    /// Wrap a keyword index as a trapdoor.
    pub fn new(index: BitIndex) -> Self {
        Trapdoor { index }
    }

    /// The underlying `r`-bit index.
    pub fn index(&self) -> &BitIndex {
        &self.index
    }

    /// Number of zero bits (relevant to the Theorem 3 forgery analysis).
    pub fn zero_bits(&self) -> usize {
        self.index.count_zeros()
    }
}

/// The pool of `U` random keywords the data owner mixes into every document index (§6).
///
/// The pool is derived deterministically from a secret seed so the data owner can regenerate
/// it, but the strings themselves are "simply random strings" that no genuine dictionary
/// contains.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomKeywordPool {
    keywords: Vec<String>,
}

impl RandomKeywordPool {
    /// Generate a pool of `size` random keywords.
    pub fn generate<R: Rng + ?Sized>(size: usize, rng: &mut R) -> Self {
        let keywords = (0..size)
            .map(|i| {
                let tag: u128 = rng.gen();
                format!("~random~{i}~{tag:032x}")
            })
            .collect();
        RandomKeywordPool { keywords }
    }

    /// Number of random keywords (`U`).
    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    /// True if the pool is empty (randomization disabled).
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }

    /// Iterate over the pool's keyword strings.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.keywords.iter().map(|s| s.as_str())
    }

    /// Choose a random `V`-subset of pool positions (used by the query builder).
    pub fn choose_subset<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<usize> {
        assert!(count <= self.len(), "subset larger than pool");
        rand::seq::index::sample(rng, self.len(), count).into_vec()
    }
}

/// The data owner's complete secret key material.
#[derive(Clone, Serialize, Deserialize)]
pub struct SchemeKeys {
    bin_keys: Vec<Vec<u8>>,
    random_pool: RandomKeywordPool,
}

impl SchemeKeys {
    /// Generate fresh key material for the given parameters.
    pub fn generate<R: Rng + ?Sized>(params: &SystemParams, rng: &mut R) -> Self {
        let bin_keys = (0..params.num_bins)
            .map(|_| {
                let mut key = vec![0u8; BIN_KEY_LEN];
                rng.fill(&mut key[..]);
                key
            })
            .collect();
        let random_pool = RandomKeywordPool::generate(params.doc_random_keywords, rng);
        SchemeKeys {
            bin_keys,
            random_pool,
        }
    }

    /// The secret HMAC key of bin `bin`.
    ///
    /// Panics if the bin id is out of range for the parameters the keys were generated with.
    pub fn bin_key(&self, bin: BinId) -> &[u8] {
        &self.bin_keys[bin as usize]
    }

    /// Number of bins this key set covers.
    pub fn num_bins(&self) -> usize {
        self.bin_keys.len()
    }

    /// The random-keyword pool used for query randomization.
    pub fn random_pool(&self) -> &RandomKeywordPool {
        &self.random_pool
    }

    /// Compute the trapdoor (keyword index) of a single keyword. Data-owner-side operation:
    /// it looks up the keyword's bin key internally.
    pub fn trapdoor_for(&self, params: &SystemParams, keyword: &str) -> Trapdoor {
        let bin = get_bin(params, keyword);
        Trapdoor::new(keyword_index(params, self.bin_key(bin), keyword))
    }

    /// Compute trapdoors for several keywords (preserving order).
    pub fn trapdoors_for(&self, params: &SystemParams, keywords: &[&str]) -> Vec<Trapdoor> {
        keywords
            .iter()
            .map(|kw| self.trapdoor_for(params, kw))
            .collect()
    }

    /// Trapdoors of the whole random-keyword pool, in pool order. The data owner hands these
    /// to authorized users so they can randomize their queries (§6).
    pub fn random_pool_trapdoors(&self, params: &SystemParams) -> Vec<Trapdoor> {
        self.random_pool
            .iter()
            .map(|kw| self.trapdoor_for(params, kw))
            .collect()
    }

    /// The bin keys for a set of requested bins — the data owner's reply to a trapdoor
    /// request (§4.2: "The data owner then returns the secret keys of the bins requested
    /// for").
    pub fn keys_for_bins(&self, bins: &[BinId]) -> Vec<(BinId, Vec<u8>)> {
        bins.iter()
            .map(|&b| (b, self.bin_keys[b as usize].clone()))
            .collect()
    }
}

impl std::fmt::Debug for SchemeKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(
            f,
            "SchemeKeys({} bins, {} random keywords)",
            self.bin_keys.len(),
            self.random_pool.len()
        )
    }
}

/// User-side trapdoor computation from a received bin key (§4.2: "the secret keys of the
/// bins … can be used by the user to generate the trapdoors for all keywords in these bins").
pub fn trapdoor_from_bin_key(params: &SystemParams, bin_key: &[u8], keyword: &str) -> Trapdoor {
    Trapdoor::new(keyword_index(params, bin_key, keyword))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SystemParams, SchemeKeys) {
        let params = SystemParams::default();
        let keys = SchemeKeys::generate(&params, &mut StdRng::seed_from_u64(42));
        (params, keys)
    }

    #[test]
    fn generate_creates_one_key_per_bin() {
        let (params, keys) = setup();
        assert_eq!(keys.num_bins(), params.num_bins);
        assert_eq!(keys.random_pool().len(), params.doc_random_keywords);
        // Keys are distinct (overwhelmingly likely; equality would indicate a broken RNG path).
        assert_ne!(keys.bin_key(0), keys.bin_key(1));
    }

    #[test]
    fn trapdoor_is_deterministic_and_key_dependent() {
        let (params, keys) = setup();
        let t1 = keys.trapdoor_for(&params, "cloud");
        let t2 = keys.trapdoor_for(&params, "cloud");
        assert_eq!(t1, t2);
        let other_keys = SchemeKeys::generate(&params, &mut StdRng::seed_from_u64(43));
        assert_ne!(t1, other_keys.trapdoor_for(&params, "cloud"));
    }

    #[test]
    fn user_side_trapdoor_matches_owner_side() {
        // The §4.2 flow: the user learns the bin key and computes the same trapdoor the data
        // owner would have used in the document indices.
        let (params, keys) = setup();
        let keyword = "privacy";
        let bin = get_bin(&params, keyword);
        let reply = keys.keys_for_bins(&[bin]);
        assert_eq!(reply.len(), 1);
        let user_td = trapdoor_from_bin_key(&params, &reply[0].1, keyword);
        assert_eq!(user_td, keys.trapdoor_for(&params, keyword));
    }

    #[test]
    fn trapdoors_for_preserves_order() {
        let (params, keys) = setup();
        let tds = keys.trapdoors_for(&params, &["alpha", "beta"]);
        assert_eq!(tds.len(), 2);
        assert_eq!(tds[0], keys.trapdoor_for(&params, "alpha"));
        assert_eq!(tds[1], keys.trapdoor_for(&params, "beta"));
    }

    #[test]
    fn random_pool_trapdoors_cover_the_pool() {
        let (params, keys) = setup();
        let tds = keys.random_pool_trapdoors(&params);
        assert_eq!(tds.len(), params.doc_random_keywords);
        // Each pool trapdoor should be reproducible from the pool keyword itself.
        let first_kw = keys.random_pool().iter().next().unwrap();
        assert_eq!(tds[0], keys.trapdoor_for(&params, first_kw));
    }

    #[test]
    fn random_pool_subset_selection() {
        let (_, keys) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        let subset = keys.random_pool().choose_subset(30, &mut rng);
        assert_eq!(subset.len(), 30);
        let mut sorted = subset.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30, "subset indices must be distinct");
        assert!(sorted.iter().all(|&i| i < 60));
    }

    #[test]
    #[should_panic(expected = "subset larger than pool")]
    fn subset_larger_than_pool_panics() {
        let (_, keys) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        let _ = keys.random_pool().choose_subset(61, &mut rng);
    }

    #[test]
    fn pool_keywords_are_outside_any_plausible_dictionary() {
        let (_, keys) = setup();
        for kw in keys.random_pool().iter() {
            assert!(kw.starts_with("~random~"));
        }
    }

    #[test]
    fn debug_does_not_leak_key_bytes() {
        let (_, keys) = setup();
        let rendered = format!("{keys:?}");
        assert!(rendered.contains("100 bins"));
        // No hex dump of key material.
        assert!(rendered.len() < 100);
    }

    #[test]
    fn trapdoor_zero_bits_is_small() {
        let (params, keys) = setup();
        let td = keys.trapdoor_for(&params, "network");
        // Expected r/2^d = 7 zeros; allow a generous band for a single sample.
        assert!(td.zero_bits() < 30, "zeros = {}", td.zero_bits());
        assert_eq!(td.index().len(), 448);
    }

    #[test]
    fn empty_random_pool_when_randomization_disabled() {
        let params = SystemParams::default().without_randomization();
        let keys = SchemeKeys::generate(&params, &mut StdRng::seed_from_u64(1));
        assert!(keys.random_pool().is_empty());
        assert!(keys.random_pool_trapdoors(&params).is_empty());
    }
}
