//! The server-side **query-result cache**: per-shard, generation-invalidated
//! memoization of shard scans.
//!
//! The paper's server answers every query with a fresh linear pass of r-bit
//! comparisons over all σ stored indices (Eq. 3). Real workloads repeat queries —
//! the very "search pattern" §6 analyzes is the server observing identical query
//! indices arriving again — so re-paying the full scan for a repeated trapdoor is
//! pure waste. This module memoizes **per-shard scan results** keyed by a
//! [`QueryFingerprint`] of the bytes the server already sees:
//!
//! * [`QueryFingerprint`] — a cheap digest of the query index bits plus the ranking
//!   mode and top-k limit, **collision-checked**: equality compares the digest first
//!   and then the full key material, so a digest collision can never surface another
//!   query's results.
//! * [`ResultCache`] — one LRU map per shard with a configurable per-shard capacity
//!   ([`CacheConfig`]), plus a per-shard **write generation**: every insert into a
//!   shard bumps only that shard's generation, so cached scans of the other shards
//!   stay valid. Stale entries (admitted under an older generation) are discarded
//!   lazily at lookup time.
//! * [`CacheStats`] — hits, misses, evictions, invalidations and the r-bit
//!   comparisons the hits saved, for the Table-2-style accounting in
//!   `mkse-protocol`.
//!
//! ## What the cache may never change
//!
//! A cached entry stores exactly what [`crate::search::scan_ranked`] returned for
//! `(shard, query)` — scan-order matches and the per-shard [`SearchStats`]. The
//! engine merges cached and freshly scanned shards through the same sort/merge code
//! path, so cached and uncached execution are **byte-identical** (matches, ranks,
//! order, merged stats); only wall-clock time and the *actual* number of
//! comparisons performed differ. `tests/sharded_engine_equivalence.rs` enforces
//! this.
//!
//! ## Search-pattern note (why this leaks nothing new)
//!
//! The fingerprint is a function of the query index bytes the server receives
//! anyway. Recognizing "these bytes arrived before" is precisely the search
//! pattern the server already observes by storing past queries (§6 builds its
//! attack model on exactly this); the cache adds no new information, it only stops
//! re-paying for scans whose outcome the server could already predict. Query
//! randomization (§6) makes repeated searches produce *different* bits — and,
//! correctly, such queries never hit the cache.

use crate::bitindex::BitIndex;
use crate::search::{SearchMatch, SearchStats};
use std::collections::HashMap;

/// How the cached execution ranked its results — part of the cache key, because an
/// unranked id scan and a ranked scan of the same query bits are different answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RankingMode {
    /// Plain Eq. (3) matching in storage order.
    Unranked,
    /// Algorithm 1 level-walking (the engine's default execution).
    Ranked,
}

/// A cheap, collision-checked cache key over everything that determines a reply:
/// the query index bits, the ranking mode, and the top-k limit.
///
/// The 128-bit FNV-1a-style digest makes hashing and map probing cheap; the full
/// key material is retained so `Eq` can verify candidates byte-for-byte. A digest
/// collision therefore costs one extra comparison — it can never alias results.
#[derive(Clone, Debug)]
pub struct QueryFingerprint {
    digest: u128,
    bits: BitIndex,
    mode: RankingMode,
    top_k: Option<u32>,
}

impl QueryFingerprint {
    /// Fingerprint a query. `top_k` is the τ limit of §5 (`None` = all matches);
    /// the engine's per-shard entries always use `None` because truncation happens
    /// after the cross-shard merge, but protocol-level caches may key on it.
    pub fn new(bits: &BitIndex, mode: RankingMode, top_k: Option<u32>) -> Self {
        // FNV-1a over the serialized bits, split into two 64-bit lanes with
        // different offset bases, then the mode/k folded in. Cheap (one pass over
        // ~r/8 bytes) and well-spread; collisions are handled by Eq anyway.
        let bytes = bits.to_bytes();
        let mut lo: u64 = 0xcbf2_9ce4_8422_2325;
        let mut hi: u64 = 0x6c62_272e_07bb_0142;
        for &b in &bytes {
            lo = (lo ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            hi = (hi ^ (b.rotate_left(3)) as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        lo ^= bits.len() as u64;
        hi ^= match mode {
            RankingMode::Unranked => 0x5bd1_e995,
            RankingMode::Ranked => 0x9e37_79b9,
        };
        hi = hi.wrapping_mul(0x0000_0100_0000_01b3) ^ top_k.map_or(u64::MAX, |k| k as u64);
        QueryFingerprint {
            digest: ((hi as u128) << 64) | lo as u128,
            bits: bits.clone(),
            mode,
            top_k,
        }
    }

    /// The digest value (exposed for diagnostics and tests).
    pub fn digest(&self) -> u128 {
        self.digest
    }

    /// The ranking mode this fingerprint keys.
    pub fn mode(&self) -> RankingMode {
        self.mode
    }

    /// The top-k limit this fingerprint keys.
    pub fn top_k(&self) -> Option<u32> {
        self.top_k
    }
}

impl PartialEq for QueryFingerprint {
    fn eq(&self, other: &Self) -> bool {
        // Digest first (cheap reject), then the collision check over the full key.
        self.digest == other.digest
            && self.mode == other.mode
            && self.top_k == other.top_k
            && self.bits == other.bits
    }
}

impl Eq for QueryFingerprint {}

impl std::hash::Hash for QueryFingerprint {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Only the digest feeds the hasher; Eq does the collision checking.
        self.digest.hash(state);
    }
}

/// Cache tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of entries **per shard**; the oldest (least recently used)
    /// entry of a full shard is evicted on admission.
    pub capacity_per_shard: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        // A few hundred distinct hot queries per shard covers the skewed
        // (Zipf-like) workloads the bench sweeps; entries are small (matches are
        // 12-byte pairs), so this is kilobytes, not megabytes, per shard.
        CacheConfig {
            capacity_per_shard: 256,
        }
    }
}

/// Counters describing cache effectiveness (monotonic until reset).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (per shard: one query over N shards makes N
    /// lookups).
    pub hits: u64,
    /// Lookups that had to fall through to a shard scan.
    pub misses: u64,
    /// Entries displaced by the per-shard LRU capacity limit.
    pub evictions: u64,
    /// Stale entries discarded because their shard's write generation moved on.
    pub invalidations: u64,
    /// r-bit comparisons that cache hits made unnecessary.
    pub saved_comparisons: u64,
}

/// What the cache contributed to **one** query execution (as opposed to the
/// cumulative [`CacheStats`]): how many shards were served from cache, how many
/// had to be scanned, and the r-bit comparisons the hits avoided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheEffect {
    /// Shards answered from the cache.
    pub shard_hits: u64,
    /// Shards that had to be scanned.
    pub shard_misses: u64,
    /// r-bit comparisons skipped thanks to the hits.
    pub saved_comparisons: u64,
}

impl CacheEffect {
    /// True if the whole reply came from the cache (every shard hit, none scanned).
    pub fn fully_cached(&self) -> bool {
        self.shard_hits > 0 && self.shard_misses == 0
    }

    /// Accumulate another execution's effect (used when summing over a batch).
    pub fn merge(&mut self, other: &CacheEffect) {
        self.shard_hits += other.shard_hits;
        self.shard_misses += other.shard_misses;
        self.saved_comparisons += other.saved_comparisons;
    }
}

/// One memoized shard scan.
struct CacheEntry {
    /// Shard write generation at admission; a lookup under a newer generation
    /// discards the entry.
    generation: u64,
    /// LRU clock value of the last touch.
    last_used: u64,
    matches: Vec<SearchMatch>,
    stats: SearchStats,
}

/// Per-shard entry map plus its write generation.
struct ShardCache {
    /// Strictly monotonic: bumped on every insert into the shard (and on restore),
    /// never reset — so an entry admitted under any older generation is provably
    /// stale.
    generation: u64,
    entries: HashMap<QueryFingerprint, CacheEntry>,
}

/// A sharded, LRU, generation-invalidated result cache.
///
/// The cache never answers with stale data: every entry records the shard write
/// generation it was computed under, and any insert into a shard bumps that shard's
/// generation (only that shard's — scans of the other shards remain valid). Lookups
/// discard entries from older generations.
pub struct ResultCache {
    shards: Vec<ShardCache>,
    config: CacheConfig,
    stats: CacheStats,
    /// Monotonic LRU clock (one tick per touch).
    clock: u64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("shards", &self.shards.len())
            .field("entries", &self.len())
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

impl ResultCache {
    /// An empty cache for a store with `num_shards` shards.
    pub fn new(num_shards: usize, config: CacheConfig) -> Self {
        ResultCache {
            shards: (0..num_shards.max(1))
                .map(|_| ShardCache {
                    generation: 0,
                    entries: HashMap::new(),
                })
                .collect(),
            config,
            stats: CacheStats::default(),
            clock: 0,
        }
    }

    /// The configuration this cache runs with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Number of shards this cache mirrors.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total live entries across all shards (stale entries count until a lookup
    /// discards them).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.entries.len()).sum()
    }

    /// True if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live entries cached for one shard (stale entries count until a lookup
    /// discards them). The telemetry plane samples this per shard for its
    /// cache-occupancy gauges; like [`ResultCache::len`] it is a pure
    /// observation and never touches generations, LRU order or counters.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].entries.len()
    }

    /// The current write generation of `shard`.
    pub fn generation(&self, shard: usize) -> u64 {
        self.shards[shard].generation
    }

    /// Effectiveness counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zero the effectiveness counters (entries and generations are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Record one insert into `shard`: bumps that shard's write generation, which
    /// lazily invalidates every entry previously cached for it. Other shards'
    /// entries are untouched — that is the point of per-shard generations.
    pub fn note_insert(&mut self, shard: usize) {
        self.shards[shard].generation += 1;
    }

    /// Bump **every** shard's generation. Used after operations whose shard
    /// placement the cache cannot observe (snapshot restore, direct store
    /// mutation), so no stale entry can ever survive them.
    pub fn invalidate_all(&mut self) {
        for shard in &mut self.shards {
            shard.generation += 1;
        }
    }

    /// Drop every entry (generations and stats are untouched).
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.entries.clear();
        }
    }

    /// Look up the memoized scan of `fingerprint` over `shard`.
    ///
    /// Returns the scan-order matches and per-shard stats exactly as
    /// [`crate::search::scan_ranked`] produced them. A stale entry (older write
    /// generation) is discarded, counted as an invalidation *and* a miss.
    pub fn lookup(
        &mut self,
        shard: usize,
        fingerprint: &QueryFingerprint,
    ) -> Option<(Vec<SearchMatch>, SearchStats)> {
        self.clock += 1;
        let clock = self.clock;
        let shard_cache = &mut self.shards[shard];
        match shard_cache.entries.get_mut(fingerprint) {
            Some(entry) if entry.generation == shard_cache.generation => {
                entry.last_used = clock;
                self.stats.hits += 1;
                self.stats.saved_comparisons += entry.stats.comparisons;
                Some((entry.matches.clone(), entry.stats))
            }
            Some(_) => {
                shard_cache.entries.remove(fingerprint);
                self.stats.invalidations += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Admit a freshly scanned result for `(shard, fingerprint)`, evicting the
    /// least recently used entry if the shard is at capacity.
    ///
    /// `generation` must be the shard's write generation **observed before the
    /// scan** (the engine captures it at lookup time); if the shard has moved on
    /// since, the result is silently not admitted — it describes a superseded
    /// store state.
    pub fn admit(
        &mut self,
        shard: usize,
        fingerprint: QueryFingerprint,
        matches: Vec<SearchMatch>,
        stats: SearchStats,
        generation: u64,
    ) {
        if self.config.capacity_per_shard == 0 {
            return;
        }
        self.clock += 1;
        let clock = self.clock;
        let shard_cache = &mut self.shards[shard];
        if generation != shard_cache.generation {
            return;
        }
        if !shard_cache.entries.contains_key(&fingerprint)
            && shard_cache.entries.len() >= self.config.capacity_per_shard
        {
            // Evict the least recently used entry of this shard. Linear scan:
            // capacities are small (hundreds) and admissions happen at most once
            // per (query, shard) miss, which just paid for a full shard scan.
            if let Some(oldest) = shard_cache
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard_cache.entries.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
        shard_cache.entries.insert(
            fingerprint,
            CacheEntry {
                generation,
                last_used: clock,
                matches,
                stats,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bits_from_seed(len: usize, seed: u64) -> BitIndex {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx = BitIndex::all_ones(len);
        for i in 0..len {
            if rng.gen_bool(0.5) {
                idx.set(i, false);
            }
        }
        idx
    }

    fn sample_matches(n: u64) -> Vec<SearchMatch> {
        (0..n)
            .map(|i| SearchMatch {
                document_id: i,
                rank: 1 + (i % 3) as u32,
            })
            .collect()
    }

    fn sample_stats(comparisons: u64) -> SearchStats {
        SearchStats {
            comparisons,
            matches: comparisons / 2,
        }
    }

    #[test]
    fn hit_returns_admitted_value_and_counts_saved_comparisons() {
        let mut cache = ResultCache::new(2, CacheConfig::default());
        let fp = QueryFingerprint::new(&bits_from_seed(128, 1), RankingMode::Ranked, None);
        assert!(cache.lookup(0, &fp).is_none());
        cache.admit(0, fp.clone(), sample_matches(3), sample_stats(10), 0);
        let (matches, stats) = cache.lookup(0, &fp).expect("hit");
        assert_eq!(matches, sample_matches(3));
        assert_eq!(stats, sample_stats(10));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.saved_comparisons), (1, 1, 10));
        // The same fingerprint on the other shard is independent.
        assert!(cache.lookup(1, &fp).is_none());
    }

    #[test]
    fn insert_invalidates_only_that_shard() {
        let mut cache = ResultCache::new(3, CacheConfig::default());
        let fp = QueryFingerprint::new(&bits_from_seed(128, 2), RankingMode::Ranked, None);
        for shard in 0..3 {
            cache.admit(shard, fp.clone(), sample_matches(1), sample_stats(4), 0);
        }
        cache.note_insert(1);
        assert!(cache.lookup(0, &fp).is_some());
        assert!(cache.lookup(1, &fp).is_none(), "shard 1 must be stale");
        assert!(cache.lookup(2, &fp).is_some());
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.generation(1), 1);
        assert_eq!(cache.generation(0), 0);
    }

    #[test]
    fn invalidate_all_bumps_every_generation() {
        let mut cache = ResultCache::new(4, CacheConfig::default());
        let before: Vec<u64> = (0..4).map(|s| cache.generation(s)).collect();
        cache.invalidate_all();
        for (s, b) in before.iter().enumerate() {
            assert_eq!(cache.generation(s), b + 1);
        }
    }

    #[test]
    fn stale_admission_is_rejected() {
        let mut cache = ResultCache::new(1, CacheConfig::default());
        let fp = QueryFingerprint::new(&bits_from_seed(128, 3), RankingMode::Ranked, None);
        let old_generation = cache.generation(0);
        cache.note_insert(0); // the store moved on while the scan ran
        cache.admit(
            0,
            fp.clone(),
            sample_matches(2),
            sample_stats(6),
            old_generation,
        );
        assert!(cache.lookup(0, &fp).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_evicts_least_recently_used_at_capacity() {
        let mut cache = ResultCache::new(
            1,
            CacheConfig {
                capacity_per_shard: 2,
            },
        );
        let fps: Vec<QueryFingerprint> = (0..3)
            .map(|i| QueryFingerprint::new(&bits_from_seed(128, 10 + i), RankingMode::Ranked, None))
            .collect();
        cache.admit(0, fps[0].clone(), sample_matches(1), sample_stats(1), 0);
        cache.admit(0, fps[1].clone(), sample_matches(1), sample_stats(1), 0);
        // Touch fps[0] so fps[1] becomes the LRU victim.
        assert!(cache.lookup(0, &fps[0]).is_some());
        cache.admit(0, fps[2].clone(), sample_matches(1), sample_stats(1), 0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.shard_len(0), 2, "per-shard count agrees with total");
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(0, &fps[0]).is_some());
        assert!(cache.lookup(0, &fps[1]).is_none(), "LRU entry evicted");
        assert!(cache.lookup(0, &fps[2]).is_some());
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut cache = ResultCache::new(
            2,
            CacheConfig {
                capacity_per_shard: 0,
            },
        );
        let fp = QueryFingerprint::new(&bits_from_seed(128, 4), RankingMode::Ranked, None);
        cache.admit(0, fp.clone(), sample_matches(1), sample_stats(1), 0);
        assert!(cache.is_empty());
        assert!(cache.lookup(0, &fp).is_none());
    }

    #[test]
    fn clear_and_reset_stats() {
        let mut cache = ResultCache::new(1, CacheConfig::default());
        let fp = QueryFingerprint::new(&bits_from_seed(128, 5), RankingMode::Ranked, None);
        cache.admit(0, fp.clone(), sample_matches(1), sample_stats(1), 0);
        assert!(cache.lookup(0, &fp).is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.lookup(0, &fp).is_none());
        cache.reset_stats();
        assert_eq!(cache.stats(), CacheStats::default());
        assert!(format!("{cache:?}").contains("ResultCache"));
    }

    #[test]
    fn fingerprint_distinguishes_mode_and_k_and_bits() {
        let bits = bits_from_seed(256, 6);
        let ranked = QueryFingerprint::new(&bits, RankingMode::Ranked, None);
        let unranked = QueryFingerprint::new(&bits, RankingMode::Unranked, None);
        let top5 = QueryFingerprint::new(&bits, RankingMode::Ranked, Some(5));
        let other_bits = QueryFingerprint::new(&bits_from_seed(256, 7), RankingMode::Ranked, None);
        assert_ne!(ranked, unranked);
        assert_ne!(ranked, top5);
        assert_ne!(ranked, other_bits);
        assert_eq!(
            ranked,
            QueryFingerprint::new(&bits, RankingMode::Ranked, None)
        );
        assert_eq!(ranked.mode(), RankingMode::Ranked);
        assert_eq!(top5.top_k(), Some(5));
        assert_ne!(ranked.digest(), 0);
    }

    #[test]
    fn digest_collisions_cannot_alias_results() {
        // Forge a fingerprint with the digest of another query but different bits:
        // the collision check (full-key Eq) must keep them distinct map keys.
        let a = QueryFingerprint::new(&bits_from_seed(128, 8), RankingMode::Ranked, None);
        let mut forged = QueryFingerprint::new(&bits_from_seed(128, 9), RankingMode::Ranked, None);
        forged.digest = a.digest;
        assert_ne!(a, forged, "equal digests must not imply equal fingerprints");
        let mut cache = ResultCache::new(1, CacheConfig::default());
        cache.admit(0, a.clone(), sample_matches(5), sample_stats(9), 0);
        assert!(
            cache.lookup(0, &forged).is_none(),
            "forged digest must miss"
        );
        assert!(cache.lookup(0, &a).is_some());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Equal query indices (same bits, mode, k) ⇒ equal fingerprints.
        #[test]
        fn prop_equal_queries_have_equal_fingerprints(seed in 0u64..1000, len in 64usize..300) {
            let bits = bits_from_seed(len, seed);
            let a = QueryFingerprint::new(&bits, RankingMode::Ranked, Some(3));
            let b = QueryFingerprint::new(&bits.clone(), RankingMode::Ranked, Some(3));
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(a.digest(), b.digest());
        }

        /// Differing bits, mode or k ⇒ differing fingerprints.
        #[test]
        fn prop_differing_keys_have_differing_fingerprints(
            seed in 0u64..1000,
            k in 0u32..64,
        ) {
            let bits = bits_from_seed(256, seed);
            let other = bits_from_seed(256, seed + 1);
            let base = QueryFingerprint::new(&bits, RankingMode::Ranked, Some(k));
            if bits != other {
                prop_assert_ne!(
                    &base,
                    &QueryFingerprint::new(&other, RankingMode::Ranked, Some(k))
                );
            }
            prop_assert_ne!(
                &base,
                &QueryFingerprint::new(&bits, RankingMode::Unranked, Some(k))
            );
            prop_assert_ne!(
                &base,
                &QueryFingerprint::new(&bits, RankingMode::Ranked, Some(k + 1))
            );
            prop_assert_ne!(&base, &QueryFingerprint::new(&bits, RankingMode::Ranked, None));
        }

        /// Write generations are strictly monotonic across arbitrary interleavings
        /// of inserts and lookups, and lookups never move a generation.
        #[test]
        fn prop_generations_strictly_monotonic(ops in proptest::collection::vec(0u8..4, 1..60)) {
            let mut cache = ResultCache::new(3, CacheConfig { capacity_per_shard: 4 });
            let fp = QueryFingerprint::new(&bits_from_seed(128, 42), RankingMode::Ranked, None);
            let mut expected = [0u64; 3];
            for op in ops {
                let shard = (op % 3) as usize;
                if op < 3 {
                    let before = cache.generation(shard);
                    cache.note_insert(shard);
                    prop_assert!(cache.generation(shard) > before, "insert must advance");
                    expected[shard] += 1;
                } else {
                    // Lookups (hit, miss or invalidation) never move generations.
                    let generation = cache.generation(0);
                    cache.admit(0, fp.clone(), vec![], SearchStats::default(), generation);
                    let _ = cache.lookup(0, &fp);
                    let _ = cache.lookup(1, &fp);
                }
                for (s, &e) in expected.iter().enumerate() {
                    prop_assert_eq!(cache.generation(s), e);
                }
            }
        }
    }
}
