//! System parameters of the MKSE scheme.
//!
//! The reference values follow §8.1 of the paper: the HMAC produces `l = 2688` bits
//! (336 bytes), the reduction parameter is `d = 6`, so the index size is `r = l/d = 448` bits;
//! query randomization uses `U = 60` fake keywords per document and `V = 30` per query
//! (`U = 2V` maximizes the number of query variants, §6); ranking uses `η = 3` or `η = 5`
//! levels.

use serde::{Deserialize, Serialize};

/// Parameters shared by the data owner, the users and the server.
///
/// All of them are public; the security of the scheme rests on the secrecy of the per-bin
/// HMAC keys held by the data owner (see [`crate::keys::SchemeKeys`]).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemParams {
    /// Index size `r` in bits (448 in the paper).
    pub index_bits: usize,
    /// Reduction parameter `d`: each base-`2^d` digit of the HMAC output collapses to one
    /// index bit (6 in the paper).
    pub digit_bits: usize,
    /// Number of trapdoor bins `δ` the keyword space is partitioned into (§4.2).
    pub num_bins: usize,
    /// Number of random (fake) keywords `U` inserted into every document index (§6).
    pub doc_random_keywords: usize,
    /// Number of random keywords `V ≤ U` added to every query index (§6).
    pub query_random_keywords: usize,
    /// Term-frequency thresholds of the ranking levels (§5), in ascending order. The first
    /// entry must be 1 (level 1 indexes every keyword); the number of entries is `η`.
    pub level_thresholds: Vec<u32>,
}

impl Default for SystemParams {
    /// The paper's reference configuration with 3 ranking levels (thresholds 1, 5, 10 as in
    /// the §5 example).
    fn default() -> Self {
        SystemParams {
            index_bits: 448,
            digit_bits: 6,
            num_bins: 100,
            doc_random_keywords: 60,
            query_random_keywords: 30,
            level_thresholds: vec![1, 5, 10],
        }
    }
}

impl SystemParams {
    /// Build a parameter set, validating the invariants.
    pub fn new(
        index_bits: usize,
        digit_bits: usize,
        num_bins: usize,
        doc_random_keywords: usize,
        query_random_keywords: usize,
        level_thresholds: Vec<u32>,
    ) -> Result<Self, ParamError> {
        let p = SystemParams {
            index_bits,
            digit_bits,
            num_bins,
            doc_random_keywords,
            query_random_keywords,
            level_thresholds,
        };
        p.validate()?;
        Ok(p)
    }

    /// The paper's configuration without ranking (a single level).
    pub fn without_ranking() -> Self {
        SystemParams {
            level_thresholds: vec![1],
            ..Self::default()
        }
    }

    /// The paper's configuration with `η = 5` ranking levels.
    pub fn with_five_levels() -> Self {
        SystemParams {
            level_thresholds: vec![1, 3, 5, 8, 10],
            ..Self::default()
        }
    }

    /// Disable query randomization (used by a few analytic experiments).
    pub fn without_randomization(mut self) -> Self {
        self.doc_random_keywords = 0;
        self.query_random_keywords = 0;
        self
    }

    /// HMAC output length `l = r·d` in bits (§4.1).
    pub fn prf_output_bits(&self) -> usize {
        self.index_bits * self.digit_bits
    }

    /// HMAC output length in bytes (336 for the reference parameters).
    pub fn prf_output_bytes(&self) -> usize {
        self.prf_output_bits().div_ceil(8)
    }

    /// Number of ranking levels `η`.
    pub fn rank_levels(&self) -> usize {
        self.level_thresholds.len()
    }

    /// Probability that a single index bit is 0 for one keyword: `1 / 2^d`.
    pub fn zero_bit_probability(&self) -> f64 {
        1.0 / (1u64 << self.digit_bits) as f64
    }

    /// Check the structural invariants.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.index_bits == 0 {
            return Err(ParamError::ZeroIndexBits);
        }
        if self.digit_bits == 0 || self.digit_bits > 32 {
            return Err(ParamError::InvalidDigitBits(self.digit_bits));
        }
        if self.num_bins == 0 {
            return Err(ParamError::ZeroBins);
        }
        if self.query_random_keywords > self.doc_random_keywords {
            return Err(ParamError::QueryRandomExceedsPool {
                query: self.query_random_keywords,
                pool: self.doc_random_keywords,
            });
        }
        if self.level_thresholds.is_empty() {
            return Err(ParamError::NoLevels);
        }
        if self.level_thresholds[0] != 1 {
            return Err(ParamError::FirstLevelMustBeOne(self.level_thresholds[0]));
        }
        if self.level_thresholds.windows(2).any(|w| w[0] >= w[1]) {
            return Err(ParamError::LevelsNotIncreasing);
        }
        Ok(())
    }
}

/// Parameter-validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// `r` must be positive.
    ZeroIndexBits,
    /// `d` must be in `1..=32`.
    InvalidDigitBits(usize),
    /// `δ` must be positive.
    ZeroBins,
    /// `V` must not exceed `U`.
    QueryRandomExceedsPool { query: usize, pool: usize },
    /// At least one ranking level is required.
    NoLevels,
    /// Level 1 must index every keyword (threshold 1).
    FirstLevelMustBeOne(u32),
    /// Level thresholds must be strictly increasing.
    LevelsNotIncreasing,
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::ZeroIndexBits => write!(f, "index size r must be positive"),
            ParamError::InvalidDigitBits(d) => write!(f, "digit size d={d} must be in 1..=32"),
            ParamError::ZeroBins => write!(f, "number of bins must be positive"),
            ParamError::QueryRandomExceedsPool { query, pool } => {
                write!(
                    f,
                    "V={query} random query keywords exceed the pool U={pool}"
                )
            }
            ParamError::NoLevels => write!(f, "at least one ranking level is required"),
            ParamError::FirstLevelMustBeOne(t) => {
                write!(f, "level 1 threshold must be 1, got {t}")
            }
            ParamError::LevelsNotIncreasing => {
                write!(f, "level thresholds must be strictly increasing")
            }
        }
    }
}

impl std::error::Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_reference_values() {
        let p = SystemParams::default();
        assert_eq!(p.index_bits, 448);
        assert_eq!(p.digit_bits, 6);
        assert_eq!(p.prf_output_bits(), 2688);
        assert_eq!(p.prf_output_bytes(), 336);
        assert_eq!(p.doc_random_keywords, 60);
        assert_eq!(p.query_random_keywords, 30);
        assert_eq!(p.rank_levels(), 3);
        assert!(p.validate().is_ok());
        assert!((p.zero_bit_probability() - 1.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn preset_variants_validate() {
        assert!(SystemParams::without_ranking().validate().is_ok());
        assert_eq!(SystemParams::without_ranking().rank_levels(), 1);
        assert!(SystemParams::with_five_levels().validate().is_ok());
        assert_eq!(SystemParams::with_five_levels().rank_levels(), 5);
        let nr = SystemParams::default().without_randomization();
        assert!(nr.validate().is_ok());
        assert_eq!(nr.doc_random_keywords, 0);
    }

    #[test]
    fn new_rejects_invalid_parameters() {
        assert_eq!(
            SystemParams::new(0, 6, 10, 0, 0, vec![1]).unwrap_err(),
            ParamError::ZeroIndexBits
        );
        assert_eq!(
            SystemParams::new(448, 0, 10, 0, 0, vec![1]).unwrap_err(),
            ParamError::InvalidDigitBits(0)
        );
        assert_eq!(
            SystemParams::new(448, 40, 10, 0, 0, vec![1]).unwrap_err(),
            ParamError::InvalidDigitBits(40)
        );
        assert_eq!(
            SystemParams::new(448, 6, 0, 0, 0, vec![1]).unwrap_err(),
            ParamError::ZeroBins
        );
        assert_eq!(
            SystemParams::new(448, 6, 10, 10, 20, vec![1]).unwrap_err(),
            ParamError::QueryRandomExceedsPool {
                query: 20,
                pool: 10
            }
        );
        assert_eq!(
            SystemParams::new(448, 6, 10, 0, 0, vec![]).unwrap_err(),
            ParamError::NoLevels
        );
        assert_eq!(
            SystemParams::new(448, 6, 10, 0, 0, vec![2, 5]).unwrap_err(),
            ParamError::FirstLevelMustBeOne(2)
        );
        assert_eq!(
            SystemParams::new(448, 6, 10, 0, 0, vec![1, 5, 5]).unwrap_err(),
            ParamError::LevelsNotIncreasing
        );
    }

    #[test]
    fn valid_custom_parameters_are_accepted() {
        let p = SystemParams::new(128, 4, 16, 10, 5, vec![1, 2, 4]).unwrap();
        assert_eq!(p.prf_output_bits(), 512);
        assert_eq!(p.rank_levels(), 3);
    }

    #[test]
    fn error_display_is_informative() {
        for e in [
            ParamError::ZeroIndexBits,
            ParamError::InvalidDigitBits(99),
            ParamError::ZeroBins,
            ParamError::QueryRandomExceedsPool { query: 9, pool: 3 },
            ParamError::NoLevels,
            ParamError::FirstLevelMustBeOne(7),
            ParamError::LevelsNotIncreasing,
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
