//! The server-side index **storage layer**.
//!
//! The paper's server holds one [`RankedDocumentIndex`] per document and scans all of
//! them per query (Eq. 3 over σ documents). This module separates *how the indices are
//! laid out* from *how queries execute* (the [`crate::engine`] layer):
//!
//! * [`IndexStore`] — the storage abstraction: geometry-validated inserts, O(1) lookup
//!   by document id, and shard-wise access for parallel scans.
//! * [`VecStore`] — the single-shard, contiguous layout (the original `CloudIndex`
//!   representation), still the reference for sequential scans.
//! * [`ShardedStore`] — partitions documents round-robin across N shards so the
//!   engine can scan them on N threads; an id → (shard, slot) map replaces the old
//!   O(σ) `iter().find()` lookup.
//!
//! Every store tracks the **insertion ordinal** of each document, so unranked results
//! and persisted snapshots keep the exact storage order of the sequential reference
//! regardless of the physical layout.
//!
//! Both built-in stores additionally maintain one block-major
//! [`crate::scanplane::ScanPlane`] per shard — a bit-sliced mirror of the shard's
//! indices appended inside [`IndexStore::insert`], exposed through
//! [`IndexStore::scan_plane`]. Because *every* mutation path (uploads, `insert_all`,
//! snapshot restores) funnels through `insert`, a plane can never go stale; and
//! because [`IndexStore::shard_of`] still names the written shard, the cache layer's
//! per-shard invalidation semantics are untouched by the new layout.

use crate::document_index::RankedDocumentIndex;
use crate::params::SystemParams;
use crate::scanplane::ScanPlane;
use std::collections::HashMap;

/// Errors produced when uploading a document index into a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The index was built with a different number of ranking levels (η) than the store.
    LevelCountMismatch {
        /// η of the store's parameters.
        expected: usize,
        /// η of the rejected index.
        found: usize,
    },
    /// Some level of the index has a different bit length (r) than the store.
    IndexSizeMismatch {
        /// r of the store's parameters.
        expected: usize,
        /// Offending level length of the rejected index.
        found: usize,
    },
    /// A document with this id is already stored.
    DuplicateDocument(u64),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::LevelCountMismatch { expected, found } => {
                write!(
                    f,
                    "index has {found} ranking levels, store expects {expected}"
                )
            }
            StoreError::IndexSizeMismatch { expected, found } => {
                write!(
                    f,
                    "index level is {found} bits long, store expects {expected}"
                )
            }
            StoreError::DuplicateDocument(id) => {
                write!(f, "document {id} is already stored")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Check an index against a store's parameters (the invariant every store upholds:
/// mixing parameter sets is a protocol violation).
pub fn check_geometry(
    params: &SystemParams,
    index: &RankedDocumentIndex,
) -> Result<(), StoreError> {
    if index.num_levels() != params.rank_levels() {
        return Err(StoreError::LevelCountMismatch {
            expected: params.rank_levels(),
            found: index.num_levels(),
        });
    }
    for level in &index.levels {
        if level.len() != params.index_bits {
            return Err(StoreError::IndexSizeMismatch {
                expected: params.index_bits,
                found: level.len(),
            });
        }
    }
    Ok(())
}

/// Storage abstraction the query-execution engine runs on.
///
/// A store is a set of shards, each a contiguous slice of document indices. The
/// engine scans shards independently (possibly in parallel); the store guarantees
/// that [`IndexStore::ordinal`] recovers the global insertion order so merged results
/// can reproduce the sequential scan's output exactly.
pub trait IndexStore: Send + Sync {
    /// The parameters every stored index was validated against.
    fn params(&self) -> &SystemParams;

    /// Upload one document index, validating its geometry and id uniqueness.
    fn insert(&mut self, index: RankedDocumentIndex) -> Result<(), StoreError>;

    /// Number of stored documents (σ).
    fn len(&self) -> usize;

    /// Number of shards the documents are partitioned into.
    fn num_shards(&self) -> usize;

    /// The documents of one shard, in slot order.
    fn shard_documents(&self, shard: usize) -> &[RankedDocumentIndex];

    /// Global insertion ordinal of the document at `(shard, slot)`; ordinals are the
    /// positions the documents would occupy in a single sequential store.
    fn ordinal(&self, shard: usize, slot: usize) -> u64;

    /// The stored index of one document, or `None` if unknown.
    fn document_index(&self, document_id: u64) -> Option<&RankedDocumentIndex>;

    /// The shard holding `document_id`, or `None` if unknown. The cache layer uses
    /// this after an insert to invalidate exactly the shard that changed.
    fn shard_of(&self, document_id: u64) -> Option<usize>;

    /// The shard's block-major [`ScanPlane`], if this store maintains one.
    ///
    /// A plane is a bit-sliced copy of the shard's indices that the engine sweeps
    /// instead of pointer-chasing `shard_documents`; stores that return `Some`
    /// **must** keep it in lockstep with every insert (both built-in stores do —
    /// their planes are appended inside [`IndexStore::insert`], so restores and
    /// `insert_all` rebuild them for free). The default `None` falls back to the
    /// reference AoS scan.
    fn scan_plane(&self, shard: usize) -> Option<&ScanPlane> {
        let _ = shard;
        None
    }

    /// True if no documents are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Upload many document indices, stopping at the first invalid one.
    fn insert_all<I: IntoIterator<Item = RankedDocumentIndex>>(
        &mut self,
        indices: I,
    ) -> Result<(), StoreError>
    where
        Self: Sized,
    {
        for idx in indices {
            self.insert(idx)?;
        }
        Ok(())
    }

    /// All stored indices in insertion order (used by persistence snapshots).
    fn documents_in_insertion_order(&self) -> Vec<&RankedDocumentIndex> {
        let mut ordered: Vec<(u64, &RankedDocumentIndex)> = Vec::with_capacity(self.len());
        for shard in 0..self.num_shards() {
            for (slot, doc) in self.shard_documents(shard).iter().enumerate() {
                ordered.push((self.ordinal(shard, slot), doc));
            }
        }
        ordered.sort_by_key(|(ordinal, _)| *ordinal);
        ordered.into_iter().map(|(_, doc)| doc).collect()
    }
}

/// The single-shard contiguous store — the layout of the original `CloudIndex`, kept
/// as the sequential reference implementation.
#[derive(Clone, Debug, Default)]
pub struct VecStore {
    params: SystemParams,
    documents: Vec<RankedDocumentIndex>,
    by_id: HashMap<u64, usize>,
    /// Block-major mirror of `documents`, appended on every insert.
    plane: ScanPlane,
}

impl VecStore {
    /// An empty store for the given parameters.
    pub fn new(params: SystemParams) -> Self {
        VecStore {
            params,
            documents: Vec::new(),
            by_id: HashMap::new(),
            plane: ScanPlane::new(),
        }
    }

    /// The stored indices in insertion order, as a contiguous slice.
    pub fn documents(&self) -> &[RankedDocumentIndex] {
        &self.documents
    }
}

impl IndexStore for VecStore {
    fn params(&self) -> &SystemParams {
        &self.params
    }

    fn insert(&mut self, index: RankedDocumentIndex) -> Result<(), StoreError> {
        check_geometry(&self.params, &index)?;
        if self.by_id.contains_key(&index.document_id) {
            return Err(StoreError::DuplicateDocument(index.document_id));
        }
        self.by_id.insert(index.document_id, self.documents.len());
        self.plane.push(&index);
        self.documents.push(index);
        Ok(())
    }

    fn len(&self) -> usize {
        self.documents.len()
    }

    fn num_shards(&self) -> usize {
        1
    }

    fn shard_documents(&self, shard: usize) -> &[RankedDocumentIndex] {
        assert_eq!(shard, 0, "VecStore has a single shard");
        &self.documents
    }

    fn ordinal(&self, shard: usize, slot: usize) -> u64 {
        assert_eq!(shard, 0, "VecStore has a single shard");
        slot as u64
    }

    fn document_index(&self, document_id: u64) -> Option<&RankedDocumentIndex> {
        self.by_id.get(&document_id).map(|&i| &self.documents[i])
    }

    fn shard_of(&self, document_id: u64) -> Option<usize> {
        self.by_id.get(&document_id).map(|_| 0)
    }

    fn scan_plane(&self, shard: usize) -> Option<&ScanPlane> {
        assert_eq!(shard, 0, "VecStore has a single shard");
        Some(&self.plane)
    }
}

/// A store that partitions documents **round-robin** across `num_shards` shards.
///
/// Round-robin keeps shards balanced within one document of each other for any
/// insertion pattern, and makes the insertion ordinal recoverable arithmetically:
/// the document at `(shard, slot)` was insertion number `slot · N + shard`.
#[derive(Clone, Debug)]
pub struct ShardedStore {
    params: SystemParams,
    shards: Vec<Vec<RankedDocumentIndex>>,
    /// Per-shard block-major mirrors, appended in lockstep with `shards`.
    planes: Vec<ScanPlane>,
    /// document id → (shard, slot): O(1) metadata lookup instead of a linear scan.
    by_id: HashMap<u64, (u32, u32)>,
    total: usize,
}

impl ShardedStore {
    /// An empty store with `num_shards` shards (clamped to at least 1).
    pub fn new(params: SystemParams, num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        ShardedStore {
            params,
            shards: vec![Vec::new(); num_shards],
            planes: vec![ScanPlane::new(); num_shards],
            by_id: HashMap::new(),
            total: 0,
        }
    }

    /// Shard sizes, for observability and tests.
    pub fn shard_lengths(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }
}

impl IndexStore for ShardedStore {
    fn params(&self) -> &SystemParams {
        &self.params
    }

    fn insert(&mut self, index: RankedDocumentIndex) -> Result<(), StoreError> {
        check_geometry(&self.params, &index)?;
        if self.by_id.contains_key(&index.document_id) {
            return Err(StoreError::DuplicateDocument(index.document_id));
        }
        let shard = self.total % self.shards.len();
        let slot = self.shards[shard].len();
        self.by_id
            .insert(index.document_id, (shard as u32, slot as u32));
        self.planes[shard].push(&index);
        self.shards[shard].push(index);
        self.total += 1;
        Ok(())
    }

    fn len(&self) -> usize {
        self.total
    }

    fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_documents(&self, shard: usize) -> &[RankedDocumentIndex] {
        &self.shards[shard]
    }

    fn ordinal(&self, shard: usize, slot: usize) -> u64 {
        (slot * self.shards.len() + shard) as u64
    }

    fn document_index(&self, document_id: u64) -> Option<&RankedDocumentIndex> {
        self.by_id
            .get(&document_id)
            .map(|&(shard, slot)| &self.shards[shard as usize][slot as usize])
    }

    fn shard_of(&self, document_id: u64) -> Option<usize> {
        self.by_id
            .get(&document_id)
            .map(|&(shard, _)| shard as usize)
    }

    fn scan_plane(&self, shard: usize) -> Option<&ScanPlane> {
        Some(&self.planes[shard])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document_index::DocumentIndexer;
    use crate::keys::SchemeKeys;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn indexer_fixture(params: &SystemParams) -> SchemeKeys {
        SchemeKeys::generate(params, &mut StdRng::seed_from_u64(71))
    }

    #[test]
    fn vec_store_preserves_insertion_order_and_lookup() {
        let params = SystemParams::default();
        let keys = indexer_fixture(&params);
        let indexer = DocumentIndexer::new(&params, &keys);
        let mut store = VecStore::new(params.clone());
        for id in [5u64, 3, 9] {
            store.insert(indexer.index_keywords(id, &["kw"])).unwrap();
        }
        assert_eq!(store.len(), 3);
        assert_eq!(store.num_shards(), 1);
        assert_eq!(store.shard_documents(0)[1].document_id, 3);
        assert_eq!(store.ordinal(0, 2), 2);
        assert_eq!(store.document_index(9).unwrap().document_id, 9);
        assert!(store.document_index(4).is_none());
        assert_eq!(store.shard_of(9), Some(0));
        assert_eq!(store.shard_of(4), None);
        let ordered: Vec<u64> = store
            .documents_in_insertion_order()
            .iter()
            .map(|d| d.document_id)
            .collect();
        assert_eq!(ordered, vec![5, 3, 9]);
    }

    #[test]
    fn sharded_store_round_robins_and_recovers_order() {
        let params = SystemParams::default();
        let keys = indexer_fixture(&params);
        let indexer = DocumentIndexer::new(&params, &keys);
        let mut store = ShardedStore::new(params.clone(), 3);
        store
            .insert_all((0..10u64).map(|id| indexer.index_keywords(id, &["kw"])))
            .unwrap();
        assert_eq!(store.len(), 10);
        assert_eq!(store.shard_lengths(), vec![4, 3, 3]);
        // Document 7 went to shard 7 % 3 = 1, slot 7 / 3 = 2.
        assert_eq!(store.shard_documents(1)[2].document_id, 7);
        assert_eq!(store.ordinal(1, 2), 7);
        assert_eq!(store.document_index(7).unwrap().document_id, 7);
        assert_eq!(store.shard_of(7), Some(1));
        assert_eq!(store.shard_of(99), None);
        let ordered: Vec<u64> = store
            .documents_in_insertion_order()
            .iter()
            .map(|d| d.document_id)
            .collect();
        assert_eq!(ordered, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn scan_planes_stay_in_lockstep_with_shard_documents() {
        let params = SystemParams::default();
        let keys = indexer_fixture(&params);
        let indexer = DocumentIndexer::new(&params, &keys);

        let mut vec_store = VecStore::new(params.clone());
        let mut sharded = ShardedStore::new(params.clone(), 3);
        for id in 0..10u64 {
            let idx = indexer.index_keywords(id, &["kw", &format!("kw{id}")]);
            vec_store.insert(idx.clone()).unwrap();
            sharded.insert(idx).unwrap();
        }
        // A rejected insert must not dirty any plane.
        assert!(sharded.insert(indexer.index_keywords(3, &["dup"])).is_err());

        let plane = vec_store.scan_plane(0).expect("VecStore maintains a plane");
        assert_eq!(plane.len(), vec_store.len());
        let ids: Vec<u64> = vec_store
            .documents()
            .iter()
            .map(|d| d.document_id)
            .collect();
        assert_eq!(plane.ids(), &ids[..]);

        for shard in 0..sharded.num_shards() {
            let plane = sharded.scan_plane(shard).expect("per-shard plane");
            let docs = sharded.shard_documents(shard);
            assert_eq!(plane.len(), docs.len(), "shard {shard}");
            let ids: Vec<u64> = docs.iter().map(|d| d.document_id).collect();
            assert_eq!(plane.ids(), &ids[..], "shard {shard}");
            assert_eq!(plane.bits(), params.index_bits);
            assert_eq!(plane.levels(), params.rank_levels());
        }
    }

    #[test]
    fn zero_shards_is_clamped_to_one() {
        let store = ShardedStore::new(SystemParams::default(), 0);
        assert_eq!(store.num_shards(), 1);
        assert!(store.is_empty());
    }

    #[test]
    fn geometry_violations_are_rejected() {
        let params3 = SystemParams::default();
        let params1 = SystemParams::without_ranking();
        let keys1 = indexer_fixture(&params1);
        let indexer1 = DocumentIndexer::new(&params1, &keys1);
        let mut store = ShardedStore::new(params3.clone(), 2);
        assert_eq!(
            store.insert(indexer1.index_keywords(0, &["kw"])),
            Err(StoreError::LevelCountMismatch {
                expected: 3,
                found: 1
            })
        );

        let params_small = SystemParams::new(64, 4, 16, 0, 0, vec![1]).unwrap();
        let keys_small = indexer_fixture(&params_small);
        let indexer_small = DocumentIndexer::new(&params_small, &keys_small);
        let mut store1 = VecStore::new(params1.clone());
        assert_eq!(
            store1.insert(indexer_small.index_keywords(0, &["kw"])),
            Err(StoreError::IndexSizeMismatch {
                expected: 448,
                found: 64
            })
        );
    }

    #[test]
    fn duplicate_ids_are_rejected_in_both_stores() {
        let params = SystemParams::default();
        let keys = indexer_fixture(&params);
        let indexer = DocumentIndexer::new(&params, &keys);
        let mut vec_store = VecStore::new(params.clone());
        vec_store.insert(indexer.index_keywords(1, &["a"])).unwrap();
        assert_eq!(
            vec_store.insert(indexer.index_keywords(1, &["b"])),
            Err(StoreError::DuplicateDocument(1))
        );
        let mut sharded = ShardedStore::new(params.clone(), 4);
        sharded.insert(indexer.index_keywords(1, &["a"])).unwrap();
        assert_eq!(
            sharded.insert(indexer.index_keywords(1, &["b"])),
            Err(StoreError::DuplicateDocument(1))
        );
        // A failed insert must not consume a round-robin position.
        sharded.insert(indexer.index_keywords(2, &["c"])).unwrap();
        assert_eq!(sharded.shard_lengths(), vec![1, 1, 0, 0]);
    }

    #[test]
    fn error_display_is_informative() {
        for e in [
            StoreError::LevelCountMismatch {
                expected: 3,
                found: 1,
            },
            StoreError::IndexSizeMismatch {
                expected: 448,
                found: 64,
            },
            StoreError::DuplicateDocument(42),
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
