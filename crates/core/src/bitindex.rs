//! The `r`-bit index type underlying every keyword index, document index and query index.
//!
//! §4.1: a keyword index is an `r`-bit string; a document's searchable index is the *bitwise
//! product* (AND) of its keyword indices; §4.3: a query matches a document iff every zero bit
//! of the query is also zero in the document index.

use serde::{Deserialize, Serialize};

/// A fixed-length bit string of `len` bits stored in 64-bit blocks.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitIndex {
    len: usize,
    blocks: Vec<u64>,
}

impl BitIndex {
    /// An index of `len` bits, all set to 1 (the identity of the bitwise product: AND-ing it
    /// with any keyword index leaves the keyword index unchanged).
    pub fn all_ones(len: usize) -> Self {
        assert!(len > 0, "index length must be positive");
        let blocks = len.div_ceil(64);
        let mut idx = BitIndex {
            len,
            blocks: vec![u64::MAX; blocks],
        };
        idx.mask_tail();
        idx
    }

    /// An index of `len` bits, all set to 0.
    pub fn all_zeros(len: usize) -> Self {
        assert!(len > 0, "index length must be positive");
        BitIndex {
            len,
            blocks: vec![0u64; len.div_ceil(64)],
        }
    }

    /// Build from a boolean slice (bit `i` of the index = `bits[i]`).
    ///
    /// Assembles each 64-bit block directly instead of issuing one `set()` per
    /// bit; the tail block is built from fewer than 64 bits and therefore
    /// satisfies the masked-tail invariant by construction.
    pub fn from_bits(bits: &[bool]) -> Self {
        assert!(!bits.is_empty(), "index length must be positive");
        let blocks = bits
            .chunks(64)
            .map(|chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .fold(0u64, |block, (i, &b)| block | ((b as u64) << i))
            })
            .collect();
        BitIndex {
            len: bits.len(),
            blocks,
        }
    }

    /// The raw 64-bit blocks backing the index, little-endian bit order within a
    /// block. Bits beyond [`BitIndex::len`] in the last block are guaranteed zero
    /// (the masked-tail invariant) — the scan plane relies on this to compare
    /// whole blocks without re-masking documents.
    pub fn as_blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Rebuild an index from raw blocks produced by [`BitIndex::as_blocks`] (or
    /// any block source) and the bit length. Stray bits beyond `len` in the last
    /// block are masked off, re-establishing the tail invariant.
    pub fn from_blocks(blocks: Vec<u64>, len: usize) -> Self {
        assert!(len > 0, "index length must be positive");
        assert_eq!(blocks.len(), len.div_ceil(64), "block count mismatch");
        let mut idx = BitIndex { len, blocks };
        idx.mask_tail();
        idx
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the index has length zero (never constructible; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        if value {
            self.blocks[i / 64] |= 1 << (i % 64);
        } else {
            self.blocks[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Bitwise product (AND) with another index of the same length — Eq. (2) of the paper.
    pub fn bitwise_product(&self, other: &BitIndex) -> BitIndex {
        assert_eq!(self.len, other.len, "length mismatch");
        BitIndex {
            len: self.len,
            blocks: self
                .blocks
                .iter()
                .zip(other.blocks.iter())
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// In-place bitwise product.
    pub fn bitwise_product_assign(&mut self, other: &BitIndex) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *a &= b;
        }
    }

    /// The matching predicate of Eq. (3): `self` (a document index) matches `query` iff every
    /// zero bit of `query` is also zero in `self`, i.e. `self AND NOT query == 0`.
    ///
    /// This is the innermost loop of every server-side scan. The explicit loop makes
    /// the block-level short-circuit visible: evaluation stops at the first 64-bit
    /// block that violates the predicate, so on random non-matching indices the
    /// expected number of block comparisons is barely above one.
    pub fn matches_query(&self, query: &BitIndex) -> bool {
        assert_eq!(self.len, query.len, "length mismatch");
        for (doc, q) in self.blocks.iter().zip(query.blocks.iter()) {
            if doc & !q != 0 {
                return false; // block-level early exit
            }
        }
        true
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Number of zero bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Hamming distance to another index of the same length (§6 uses this to quantify query
    /// unlinkability).
    pub fn hamming_distance(&self, other: &BitIndex) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Number of positions where both indices are zero (the overlap statistic `C` of §6).
    pub fn common_zeros(&self, other: &BitIndex) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        let full_blocks = self.len / 64;
        let mut count = 0usize;
        for i in 0..self.blocks.len() {
            let both_zero = !(self.blocks[i] | other.blocks[i]);
            if i < full_blocks {
                count += both_zero.count_ones() as usize;
            } else {
                let tail_bits = self.len - full_blocks * 64;
                let mask = (1u64 << tail_bits) - 1;
                count += (both_zero & mask).count_ones() as usize;
            }
        }
        count
    }

    /// Serialize to bytes (little-endian blocks, exactly `ceil(len/8)` bytes). Used for
    /// message size accounting: a 448-bit index serializes to 56 bytes, as Table 1 expects.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len.div_ceil(8));
        for block in &self.blocks {
            out.extend_from_slice(&block.to_le_bytes());
        }
        out.truncate(self.len.div_ceil(8));
        out
    }

    /// Deserialize from bytes produced by [`BitIndex::to_bytes`] with the original length.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(len > 0 && bytes.len() == len.div_ceil(8), "length mismatch");
        let mut idx = BitIndex::all_zeros(len);
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            idx.blocks[i] = u64::from_le_bytes(buf);
        }
        idx.mask_tail();
        idx
    }

    /// Size of the serialized index in bits (`r`, rounded up to whole bytes for transport).
    pub fn serialized_bits(&self) -> usize {
        self.len.div_ceil(8) * 8
    }

    /// Clear any bits beyond `len` in the last block.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            let mask = (1u64 << tail) - 1;
            if let Some(last) = self.blocks.last_mut() {
                *last &= mask;
            }
        }
    }
}

impl std::fmt::Debug for BitIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BitIndex({} bits, {} zeros)",
            self.len,
            self.count_zeros()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_ones_and_all_zeros() {
        let ones = BitIndex::all_ones(448);
        assert_eq!(ones.len(), 448);
        assert_eq!(ones.count_ones(), 448);
        assert_eq!(ones.count_zeros(), 0);
        let zeros = BitIndex::all_zeros(448);
        assert_eq!(zeros.count_zeros(), 448);
        assert!(!ones.is_empty());
    }

    #[test]
    fn tail_bits_are_masked() {
        // 70 bits: the second block has only 6 valid bits.
        let ones = BitIndex::all_ones(70);
        assert_eq!(ones.count_ones(), 70);
        let round = BitIndex::from_bytes(&ones.to_bytes(), 70);
        assert_eq!(round.count_ones(), 70);
    }

    #[test]
    fn get_set_round_trip() {
        let mut idx = BitIndex::all_zeros(100);
        idx.set(0, true);
        idx.set(63, true);
        idx.set(64, true);
        idx.set(99, true);
        assert!(idx.get(0) && idx.get(63) && idx.get(64) && idx.get(99));
        assert!(!idx.get(1));
        assert_eq!(idx.count_ones(), 4);
        idx.set(63, false);
        assert!(!idx.get(63));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let idx = BitIndex::all_zeros(10);
        let _ = idx.get(10);
    }

    /// For every length that is not a multiple of 64, the bits beyond `len` in the
    /// last block must stay zero — `count_ones`, `common_zeros` and serialization
    /// all rely on it.
    fn assert_tail_is_masked(idx: &BitIndex) {
        let tail = idx.len() % 64;
        if tail != 0 {
            let last = *idx.blocks.last().unwrap();
            assert_eq!(last >> tail, 0, "tail bits set beyond len {}", idx.len());
        }
    }

    #[test]
    fn non_multiple_of_64_lengths_keep_tail_invariants() {
        for len in [1usize, 63, 64, 65, 127, 129, 448, 449] {
            let ones = BitIndex::all_ones(len);
            assert_eq!(ones.count_ones(), len, "all_ones({len})");
            assert_tail_is_masked(&ones);

            let from_bits = BitIndex::from_bits(&vec![true; len]);
            assert_eq!(from_bits, ones, "from_bits({len})");
            assert_tail_is_masked(&from_bits);

            // Setting the last valid bit must not touch the tail.
            let mut idx = BitIndex::all_zeros(len);
            idx.set(len - 1, true);
            assert_tail_is_masked(&idx);
            assert_eq!(idx.count_ones(), 1);
            idx.set(len - 1, false);
            assert_eq!(idx.count_ones(), 0);

            // Byte round-trips preserve the masked tail.
            let round = BitIndex::from_bytes(&ones.to_bytes(), len);
            assert_eq!(round, ones);
            assert_tail_is_masked(&round);

            // count_zeros/common_zeros must not count phantom tail positions.
            let zeros = BitIndex::all_zeros(len);
            assert_eq!(zeros.count_zeros(), len);
            assert_eq!(zeros.common_zeros(&zeros), len);
            assert_eq!(ones.common_zeros(&zeros), 0);
            assert_eq!(ones.hamming_distance(&zeros), len);
        }
    }

    #[test]
    fn block_accessors_round_trip_and_keep_tail_invariants() {
        for len in [1usize, 63, 64, 65, 127, 129, 448, 449] {
            let ones = BitIndex::all_ones(len);
            assert_eq!(ones.as_blocks().len(), len.div_ceil(64));
            // as_blocks → from_blocks is the identity.
            let round = BitIndex::from_blocks(ones.as_blocks().to_vec(), len);
            assert_eq!(round, ones, "round trip at len {len}");
            assert_tail_is_masked(&round);
            // from_blocks must mask stray tail bits (e.g. blocks sourced from a
            // raw arena or an adversarial buffer).
            let dirty = vec![u64::MAX; len.div_ceil(64)];
            let cleaned = BitIndex::from_blocks(dirty, len);
            assert_eq!(cleaned, ones, "stray tail bits masked at len {len}");
            assert_tail_is_masked(&cleaned);
            assert_eq!(cleaned.count_ones(), len);
        }
    }

    #[test]
    #[should_panic(expected = "block count mismatch")]
    fn from_blocks_wrong_block_count_panics() {
        let _ = BitIndex::from_blocks(vec![0u64; 1], 70); // 70 bits need 2 blocks
    }

    #[test]
    fn from_bits_builds_blocks_directly() {
        // A pattern spanning a block boundary with a non-multiple-of-64 tail.
        let mut bits = vec![false; 70];
        for i in [0usize, 1, 63, 64, 69] {
            bits[i] = true;
        }
        let idx = BitIndex::from_bits(&bits);
        assert_eq!(idx.len(), 70);
        assert_eq!(idx.count_ones(), 5);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(idx.get(i), b, "bit {i}");
        }
        assert_tail_is_masked(&idx);
        assert_eq!(idx.as_blocks()[0], (1 << 0) | (1 << 1) | (1 << 63));
        assert_eq!(idx.as_blocks()[1], (1 << 0) | (1 << 5));
    }

    #[test]
    fn from_bytes_masks_stray_tail_bits() {
        // A corrupt (or adversarial) byte buffer with bits beyond `len` set must be
        // normalized on load, or equality and zero-counts would diverge.
        let bytes = vec![0xffu8; 9]; // 72 bits of ones
        let idx = BitIndex::from_bytes(&bytes, 70);
        assert_eq!(idx.count_ones(), 70);
        assert_eq!(idx, BitIndex::all_ones(70));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bitwise_product_length_mismatch_panics() {
        let a = BitIndex::all_ones(64);
        let b = BitIndex::all_ones(65);
        let _ = a.bitwise_product(&b);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bitwise_product_assign_length_mismatch_panics() {
        let mut a = BitIndex::all_ones(448);
        let b = BitIndex::all_ones(447);
        a.bitwise_product_assign(&b);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn matches_query_length_mismatch_panics() {
        let doc = BitIndex::all_ones(128);
        let query = BitIndex::all_ones(64);
        let _ = doc.matches_query(&query);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_bytes_wrong_buffer_size_panics() {
        let _ = BitIndex::from_bytes(&[0u8; 8], 70); // 70 bits need 9 bytes
    }

    #[test]
    fn bitwise_product_is_and() {
        let a = BitIndex::from_bits(&[true, true, false, false]);
        let b = BitIndex::from_bits(&[true, false, true, false]);
        let p = a.bitwise_product(&b);
        assert_eq!(
            (0..4).map(|i| p.get(i)).collect::<Vec<_>>(),
            vec![true, false, false, false]
        );
        let mut c = a.clone();
        c.bitwise_product_assign(&b);
        assert_eq!(c, p);
    }

    #[test]
    fn matching_predicate_follows_eq3() {
        // Query zeros must be a subset of document zeros.
        let doc = BitIndex::from_bits(&[false, false, true, true]);
        let query_subset = BitIndex::from_bits(&[false, true, true, true]);
        let query_equal = BitIndex::from_bits(&[false, false, true, true]);
        let query_extra_zero = BitIndex::from_bits(&[false, false, false, true]);
        assert!(doc.matches_query(&query_subset));
        assert!(doc.matches_query(&query_equal));
        assert!(!doc.matches_query(&query_extra_zero));
        // The all-ones query matches everything.
        assert!(doc.matches_query(&BitIndex::all_ones(4)));
        // The all-zeros query only matches the all-zeros document.
        assert!(!doc.matches_query(&BitIndex::all_zeros(4)));
        assert!(BitIndex::all_zeros(4).matches_query(&BitIndex::all_zeros(4)));
    }

    #[test]
    fn hamming_distance_and_common_zeros() {
        let a = BitIndex::from_bits(&[true, false, true, false]);
        let b = BitIndex::from_bits(&[true, true, false, false]);
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
        assert_eq!(a.common_zeros(&b), 1);
        assert_eq!(a.common_zeros(&a), 2);
    }

    #[test]
    fn serialization_sizes_match_table1() {
        // The paper's r = 448-bit index is 56 bytes on the wire.
        let idx = BitIndex::all_ones(448);
        assert_eq!(idx.to_bytes().len(), 56);
        assert_eq!(idx.serialized_bits(), 448);
    }

    #[test]
    fn debug_format_mentions_zero_count() {
        let idx = BitIndex::all_zeros(16);
        assert!(format!("{idx:?}").contains("16 zeros"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_product_commutative_associative_idempotent(
            a in proptest::collection::vec(any::<bool>(), 96),
            b in proptest::collection::vec(any::<bool>(), 96),
            c in proptest::collection::vec(any::<bool>(), 96),
        ) {
            let x = BitIndex::from_bits(&a);
            let y = BitIndex::from_bits(&b);
            let z = BitIndex::from_bits(&c);
            prop_assert_eq!(x.bitwise_product(&y), y.bitwise_product(&x));
            prop_assert_eq!(
                x.bitwise_product(&y).bitwise_product(&z),
                x.bitwise_product(&y.bitwise_product(&z))
            );
            prop_assert_eq!(x.bitwise_product(&x), x.clone());
            prop_assert_eq!(x.bitwise_product(&BitIndex::all_ones(96)), x);
        }

        #[test]
        fn prop_product_matches_both_factors(
            a in proptest::collection::vec(any::<bool>(), 80),
            b in proptest::collection::vec(any::<bool>(), 80),
        ) {
            // A document whose index is the AND of two keyword indices matches each keyword's
            // single-keyword query — the core soundness property of the scheme.
            let ka = BitIndex::from_bits(&a);
            let kb = BitIndex::from_bits(&b);
            let doc = ka.bitwise_product(&kb);
            prop_assert!(doc.matches_query(&ka));
            prop_assert!(doc.matches_query(&kb));
            prop_assert!(doc.matches_query(&ka.bitwise_product(&kb)));
        }

        #[test]
        fn prop_adding_keywords_to_query_only_shrinks_matches(
            doc_bits in proptest::collection::vec(any::<bool>(), 64),
            q1_bits in proptest::collection::vec(any::<bool>(), 64),
            q2_bits in proptest::collection::vec(any::<bool>(), 64),
        ) {
            // Conjunction monotonicity: failing one conjunct implies failing the conjunction,
            // so adding keywords to a query can only shrink the match set.
            let doc = BitIndex::from_bits(&doc_bits);
            let q1 = BitIndex::from_bits(&q1_bits);
            let q2 = BitIndex::from_bits(&q2_bits);
            let conj = q1.bitwise_product(&q2);
            if !doc.matches_query(&q1) {
                prop_assert!(!doc.matches_query(&conj));
            }
        }

        #[test]
        fn prop_bytes_round_trip(bits in proptest::collection::vec(any::<bool>(), 1..300)) {
            let idx = BitIndex::from_bits(&bits);
            let round = BitIndex::from_bytes(&idx.to_bytes(), bits.len());
            prop_assert_eq!(idx, round);
        }

        #[test]
        fn prop_hamming_distance_is_a_metric(
            a in proptest::collection::vec(any::<bool>(), 64),
            b in proptest::collection::vec(any::<bool>(), 64),
            c in proptest::collection::vec(any::<bool>(), 64),
        ) {
            let x = BitIndex::from_bits(&a);
            let y = BitIndex::from_bits(&b);
            let z = BitIndex::from_bits(&c);
            prop_assert_eq!(x.hamming_distance(&y), y.hamming_distance(&x));
            prop_assert_eq!(x.hamming_distance(&x), 0);
            prop_assert!(x.hamming_distance(&z) <= x.hamming_distance(&y) + y.hamming_distance(&z));
        }
    }
}
